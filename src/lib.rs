//! # gae — Resource Management Services for a Grid Analysis Environment
//!
//! A full Rust reproduction of the ICPPW'05 paper *"Resource
//! Management Services for a Grid Analysis Environment"* (Ali et
//! al.): the Steering Service, Job Monitoring Service and Estimator
//! Service, together with every substrate they need — a Clarens-style
//! XML-RPC web-service framework, a Condor-style execution service, a
//! Sphinx-style scheduler, a MonALISA-style monitoring repository, a
//! discrete-event grid simulator, and a synthetic SDSC-Paragon
//! accounting-trace generator.
//!
//! This crate is the facade: it re-exports the whole workspace under
//! stable module names and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! ## Layout
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`types`] | `gae-types` | ids, time base, jobs, plans, sites, errors |
//! | [`wire`] | `gae-wire` | from-scratch XML-RPC codec |
//! | [`gate`] | `gae-gate` | admission control: rate limits, shed queue, breakers |
//! | [`rpc`] | `gae-rpc` | Clarens substitute: hosts, auth, transports, discovery |
//! | [`sim`] | `gae-sim` | discrete-event engine, load traces, network model |
//! | [`exec`] | `gae-exec` | Condor substitute: queues, accrual, job control |
//! | [`monitor`] | `gae-monitor` | MonALISA substitute: metrics + job events |
//! | [`obs`] | `gae-obs` | traces, latency histograms, job timelines |
//! | [`sched`] | `gae-sched` | Sphinx substitute: site selection, replanning |
//! | [`trace`] | `gae-trace` | Paragon records, Downey workload, similarity |
//! | [`durable`] | `gae-durable` | checksummed WAL + snapshots, crash recovery |
//! | [`repl`] | `gae-repl` | replicated log: leader append, follower replay, failover |
//! | [`core`] | `gae-core` | **the paper's services**: steering, jobmon, estimators |
//!
//! ## Five-minute tour
//!
//! ```
//! use gae::prelude::*;
//!
//! // A two-site grid: site 1 is busy, site 2 is free.
//! let grid = GridBuilder::new()
//!     .site_with_load(SiteDescription::new(SiteId::new(1), "busy", 4, 1), 3.0)
//!     .site(SiteDescription::new(SiteId::new(2), "free", 4, 1))
//!     .build();
//! let stack = ServiceStack::over(grid);
//!
//! // A one-task job needing 60 s of CPU.
//! let mut job = JobSpec::new(JobId::new(1), "tour", UserId::new(1));
//! job.add_task(
//!     TaskSpec::new(TaskId::new(1), "analysis", "prime")
//!         .with_cpu_demand(SimDuration::from_secs(60)),
//! );
//! let plan = stack.submit_job(job).unwrap();
//! assert_eq!(plan.site_of(TaskId::new(1)), Some(SiteId::new(2)));
//!
//! // Run the grid for two minutes of virtual time and check on it.
//! stack.run_until(SimTime::from_secs(120));
//! let info = stack.jobmon.job_info(TaskId::new(1)).unwrap();
//! assert_eq!(info.status, TaskStatus::Completed);
//! ```

pub use gae_aio as aio;
pub use gae_core as core;
pub use gae_durable as durable;
pub use gae_exec as exec;
pub use gae_gate as gate;
pub use gae_hist as hist;
pub use gae_monitor as monitor;
pub use gae_obs as obs;
pub use gae_repl as repl;
pub use gae_rpc as rpc;
pub use gae_sched as sched;
pub use gae_sim as sim;
pub use gae_trace as trace;
pub use gae_types as types;
pub use gae_wire as wire;
pub use gae_xfer as xfer;

/// Everything most programs need, in one import.
pub mod prelude {
    pub use gae_core::estimator::{EstimationMethod, RuntimeEstimator};
    pub use gae_core::grid::{DriverMode, Grid, GridBuilder, ServiceStack};
    pub use gae_core::jobmon::{JobMonitoringInfo, JobMonitoringService};
    pub use gae_core::persist::{PersistenceConfig, RecoveryReport};
    pub use gae_core::steering::{Notification, SteeringCommand, SteeringPolicy, SteeringService};
    pub use gae_core::{EstimatorService, QuotaService};
    pub use gae_gate::{Gate, GateClass, GateConfig, GateStats, Principal};
    pub use gae_repl::{
        MirrorMachine, NodeId, Promotion, ReplConfig, ReplStats, ReplicatedLog, ReplicationSink,
        StateMachine,
    };
    pub use gae_types::prelude::*;
    pub use gae_xfer::{RetryPolicy, XferConfig, XferScheduler};
}
