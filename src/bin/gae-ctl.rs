//! `gae-ctl` — command-line client (and demo server) for a GAE
//! deployment.
//!
//! ```text
//! gae-ctl serve [port] [--reactor]        start a demo grid + all services
//! gae-ctl methods <addr>                  list service.method names
//! gae-ctl call <addr> <method> [args...]  invoke a method
//!     --user NAME --pass PW               log in first (steering needs it)
//! ```
//!
//! Argument literals: integers and floats are sent as numbers,
//! `true`/`false` as booleans, everything else as strings.
//!
//! Demo walk-through:
//!
//! ```text
//! $ gae-ctl serve 8042 &
//! $ gae-ctl methods 127.0.0.1:8042
//! $ gae-ctl call 127.0.0.1:8042 jobmon.job_info 1
//! $ gae-ctl call 127.0.0.1:8042 --user alice --pass analysis steering.pause 1
//! ```

use gae::core::jobmon::JobMonitoringRpc;
use gae::core::steering::SteeringRpc;
use gae::core::MonAlisaRpc;
use gae::prelude::*;
use gae::rpc::{Credentials, Rpc, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::wire::Value;
use std::net::SocketAddr;
use std::sync::Arc;

fn parse_value(raw: &str) -> Value {
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int64(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        if f.is_finite() {
            return Value::Double(f);
        }
    }
    match raw {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        "nil" => Value::Nil,
        other => Value::from(other),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  gae-ctl serve [port] [--reactor]\n  gae-ctl methods <addr>\n  \
         gae-ctl call <addr> [--user U --pass P] <service.method> [args...]\n  \
         gae-ctl submit <addr> --user U --pass P --job-id N --name NAME \
         --tasks K --cpu SECONDS [--chain]"
    );
    std::process::exit(2);
}

fn resolve(addr: &str) -> SocketAddr {
    addr.parse().unwrap_or_else(|_| {
        eprintln!("gae-ctl: cannot parse address {addr:?} (expected host:port)");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            let reactor = args.iter().any(|a| a == "--reactor");
            let port = args
                .iter()
                .skip(1)
                .find_map(|p| p.parse::<u16>().ok())
                .unwrap_or(8042);
            let transport = if reactor {
                gae::rpc::RpcTransport::Reactor
            } else {
                gae::rpc::RpcTransport::ThreadPool
            };
            serve(port, transport);
        }
        Some("methods") => {
            let addr = resolve(args.get(1).unwrap_or_else(|| usage()));
            let mut client = TcpRpcClient::connect(addr);
            match client.call("system.listMethods", vec![]) {
                Ok(v) => {
                    for m in v.as_array().unwrap_or(&[]) {
                        println!("{}", m.as_str().unwrap_or("?"));
                    }
                }
                Err(e) => {
                    eprintln!("gae-ctl: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("call") => {
            let mut rest = args[1..].iter();
            let addr = resolve(rest.next().unwrap_or_else(|| usage()));
            let mut user = None;
            let mut pass = None;
            let mut method = None;
            let mut params = Vec::new();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--user" => user = rest.next().cloned(),
                    "--pass" => pass = rest.next().cloned(),
                    _ if method.is_none() => method = Some(a.clone()),
                    _ => params.push(parse_value(a)),
                }
            }
            let method = method.unwrap_or_else(|| usage());
            let mut client = TcpRpcClient::connect(addr);
            if let (Some(u), Some(p)) = (user.as_deref(), pass.as_deref()) {
                if let Err(e) = client.login(u, p) {
                    eprintln!("gae-ctl: login failed: {e}");
                    std::process::exit(1);
                }
            }
            match client.call(&method, params) {
                Ok(v) => println!("{v}"),
                Err(e) => {
                    eprintln!("gae-ctl: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("submit") => {
            let mut rest = args[1..].iter();
            let addr = resolve(rest.next().unwrap_or_else(|| usage()));
            let (mut user, mut pass) = (None, None);
            let mut job_id = 1u64;
            let mut name = "cli-job".to_string();
            let mut tasks = 1u64;
            let mut cpu = 60.0f64;
            let mut chain = false;
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--user" => user = rest.next().cloned(),
                    "--pass" => pass = rest.next().cloned(),
                    "--job-id" => {
                        job_id = rest.next().and_then(|v| v.parse().ok()).unwrap_or(job_id)
                    }
                    "--name" => name = rest.next().cloned().unwrap_or(name),
                    "--tasks" => tasks = rest.next().and_then(|v| v.parse().ok()).unwrap_or(tasks),
                    "--cpu" => cpu = rest.next().and_then(|v| v.parse().ok()).unwrap_or(cpu),
                    "--chain" => chain = true,
                    other => {
                        eprintln!("gae-ctl: unknown flag {other:?}");
                        usage();
                    }
                }
            }
            let mut job = JobSpec::new(JobId::new(job_id), name, UserId::new(0));
            let base = job_id * 1_000;
            for i in 0..tasks {
                job.add_task(
                    TaskSpec::new(TaskId::new(base + i + 1), format!("task-{i}"), "analysis")
                        .with_cpu_demand(SimDuration::from_secs_f64(cpu)),
                );
            }
            if chain {
                for i in 1..tasks {
                    job.add_dependency(TaskId::new(base + i), TaskId::new(base + i + 1));
                }
            }
            let mut client = TcpRpcClient::connect(addr);
            match (user.as_deref(), pass.as_deref()) {
                (Some(u), Some(p)) => {
                    if let Err(e) = client.login(u, p) {
                        eprintln!("gae-ctl: login failed: {e}");
                        std::process::exit(1);
                    }
                }
                _ => {
                    eprintln!("gae-ctl: submit requires --user and --pass");
                    std::process::exit(2);
                }
            }
            match client.call(
                "scheduler.submit_job",
                vec![gae::core::submit::job_to_value(&job)],
            ) {
                Ok(plan) => println!("{plan}"),
                Err(e) => {
                    eprintln!("gae-ctl: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}

/// Demo server: a two-site grid with a running analysis job, virtual
/// time pumped in step with the wall clock.
fn serve(port: u16, transport: gae::rpc::RpcTransport) {
    let grid = GridBuilder::new()
        .site_with_load(
            SiteDescription::new(SiteId::new(1), "busy-cluster", 4, 1),
            3.0,
        )
        .site(SiteDescription::new(SiteId::new(2), "free-tier2", 4, 2))
        .rpc_transport(transport)
        .build();
    let stack = ServiceStack::over(grid.clone());

    let host = ServiceHost::open();
    host.sessions()
        .register(&Credentials::new("alice", "analysis"))
        .expect("fresh session manager");
    let alice = host.sessions().user_id("alice").expect("registered");
    host.register(Arc::new(JobMonitoringRpc::new(stack.jobmon.clone())));
    host.register(Arc::new(SteeringRpc::new(stack.steering.clone())));
    host.register(Arc::new(MonAlisaRpc::new(grid.monitor().clone())));
    host.register(Arc::new(gae::core::estimator::service::EstimatorRpc::new(
        stack.estimators.clone(),
    )));
    host.register(Arc::new(gae::core::SchedulerRpc::new(&stack)));
    host.attach_obs(stack.obs());
    host.register(Arc::new(gae::core::TraceRpc::new(stack.obs())));
    host.register(Arc::new(gae::core::StatsRpc::new(stack.obs())));
    host.register(Arc::new(gae::core::HistoryRpc::new(
        stack.hist.clone(),
        stack.obs(),
    )));
    let catalog = gae::core::ReplicaCatalog::new(grid.clone());
    catalog.register(
        FileRef::new("lfn:/cms/demo-dataset.root", 250_000_000).with_replicas(vec![SiteId::new(2)]),
    );
    host.register(Arc::new(gae::core::ReplicaRpc::new(catalog.clone())));
    // §4.2.4's web interface: GET / for the index, /state/<task> for
    // execution-state downloads.
    host.register_web(stack.steering.web_handler());

    // A long-running demo job to monitor and steer.
    let mut job = JobSpec::new(JobId::new(1), "demo-analysis", alice);
    for i in 1..=3u64 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("step-{i}"), "reco")
                .with_cpu_demand(SimDuration::from_secs(1_800 * i)),
        );
    }
    stack.submit_job(job).expect("schedulable");

    let addr = format!("127.0.0.1:{port}");
    // Either front door serves the identical dispatch path; the
    // reactor just holds its connections on one event loop.
    let endpoint = match grid.rpc_transport() {
        gae::rpc::RpcTransport::Reactor => {
            match gae::aio::ReactorRpcServer::bind(host, 16, &addr) {
                Ok(s) => {
                    let e = s.endpoint();
                    std::mem::forget(s); // serves until the process dies
                    e
                }
                Err(e) => {
                    eprintln!("gae-ctl: cannot bind port {port}: {e}");
                    std::process::exit(1);
                }
            }
        }
        gae::rpc::RpcTransport::ThreadPool => match TcpRpcServer::bind(host, 16, &addr) {
            Ok(s) => {
                let e = s.endpoint();
                std::mem::forget(s);
                e
            }
            Err(e) => {
                eprintln!("gae-ctl: cannot bind port {port}: {e}");
                std::process::exit(1);
            }
        },
    };
    println!("gae-ctl: serving on {endpoint} ({transport:?} transport)");
    println!("gae-ctl: demo user alice / analysis; tasks 1..3 of job 1 are live");
    println!("gae-ctl: virtual time tracks wall time; Ctrl-C to stop");

    // Pump virtual time 1:1 with real time.
    let start = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        let now = SimTime::from_secs_f64(start.elapsed().as_secs_f64());
        stack.run_until(now);
        catalog.poll();
    }
}
