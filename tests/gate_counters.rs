//! Gate counters over the `monalisa.*` RPC facade (ISSUE 3
//! satellite): every admission outcome — admitted, rate-limited,
//! breaker-denied — and the breaker states themselves must be
//! published on the stack's poll tick and be queryable like any other
//! MonALISA metric, mirroring `monitor_counters.rs`.

use gae::core::monalisa::MonAlisaRpc;
use gae::gate::{BreakerConfig, GateClass, GateConfig, Principal, TokenBucketConfig};
use gae::prelude::*;
use gae::rpc::{CallContext, Service};
use gae::wire::Value;

fn ctx() -> CallContext {
    CallContext::anonymous("test")
}

fn latest(rpc: &MonAlisaRpc, site: u64, entity: &str, param: &str) -> Option<f64> {
    let out = rpc
        .call(
            &ctx(),
            "latest",
            &[Value::from(site), Value::from(entity), Value::from(param)],
        )
        .expect("latest call");
    match out {
        Value::Nil => None,
        v => Some(v.member("value").unwrap().as_f64().unwrap()),
    }
}

/// Admission decisions made against the stack's gate must land in the
/// repository on the next poll, with one `gate.*` parameter per
/// counter and class.
#[test]
fn gate_counters_publish_and_are_queryable_over_rpc() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 2, 2))
        .gate(GateConfig {
            // Burst of 2 per principal; refill so slow the third
            // request inside one virtual tick is always limited.
            bucket: TokenBucketConfig::new(2.0, 1e-3),
            breaker: BreakerConfig::new(2, SimDuration::from_secs(30)),
            ..GateConfig::default()
        })
        .build();
    let stack = ServiceStack::over(grid);
    let rpc = MonAlisaRpc::new(stack.grid.monitor().clone());

    // Two admits drain alice's bucket; the third is rate-limited.
    let alice = Principal::user(UserId::new(1), "gae");
    assert_eq!(stack.gate.admit(&alice).unwrap(), GateClass::Production);
    assert_eq!(stack.gate.admit(&alice).unwrap(), GateClass::Production);
    let limited = stack.gate.admit(&alice).unwrap_err();
    assert!(limited.retry_after_us().unwrap() > 0);

    // Two consecutive failures trip site 1's breaker; the next check
    // is a typed breaker denial.
    stack.gate.breaker_record("exec-site-1", false);
    stack.gate.breaker_record("exec-site-1", false);
    assert!(stack
        .gate
        .breaker_check("exec-site-1", GateClass::Production)
        .is_err());

    // The poll tick publishes the snapshot.
    stack.run_until(SimTime::from_secs(10));

    assert_eq!(
        latest(&rpc, 0, "gate", "admitted_production").expect("published"),
        2.0
    );
    assert_eq!(
        latest(&rpc, 0, "gate", "rate_limited_production").expect("published"),
        1.0
    );
    assert_eq!(
        latest(&rpc, 0, "gate", "breaker_denied_production").expect("published"),
        1.0
    );
    assert_eq!(
        latest(&rpc, 0, "gate", "shed_production").expect("published"),
        0.0
    );
    // Breaker state sample: open = 1.0.
    assert_eq!(
        latest(&rpc, 0, "gate", "breaker_exec-site-1").expect("published"),
        1.0
    );
    // Queue gauges exist even when idle.
    assert_eq!(
        latest(&rpc, 0, "gate", "queue_depth").expect("published"),
        0.0
    );
}

/// The class resolver wired by the composition root derives priority
/// from quota standing: principals billed into the red drop to
/// Scavenger (first shed), everyone else runs at Production.
#[test]
fn quota_exhausted_principals_drop_to_scavenger() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 2, 2))
        .build();
    let stack = ServiceStack::over(grid);

    let broke = Principal::user(UserId::new(7), "gae");
    let solvent = Principal::user(UserId::new(8), "gae");
    let anon = Principal::anonymous("gae");

    // Everyone starts at Production (balance 0 = never granted).
    assert_eq!(stack.gate.classify(&broke), GateClass::Production);

    // Drive user 7 into the red, as after-the-fact billing does.
    stack.quota.grant(UserId::new(7), -5.0);
    stack.quota.grant(UserId::new(8), 100.0);

    assert_eq!(stack.gate.classify(&broke), GateClass::Scavenger);
    assert_eq!(stack.gate.classify(&solvent), GateClass::Production);
    assert_eq!(stack.gate.classify(&anon), GateClass::Production);

    // The class is live: paying the debt restores Production.
    stack.quota.grant(UserId::new(7), 10.0);
    assert_eq!(stack.gate.classify(&broke), GateClass::Production);

    // And admissions are attributed to the class of record.
    stack.quota.grant(UserId::new(7), -100.0);
    stack.gate.admit(&broke).unwrap();
    assert_eq!(
        stack.gate.stats().admitted[GateClass::Scavenger as usize],
        1
    );
}
