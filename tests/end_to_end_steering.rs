//! End-to-end steering scenarios through the public API: the
//! Figure 7 dynamics, manual job control, and authorization.

use gae::core::steering::{MoveReason, SteeringCommand, SteeringPolicy};
use gae::prelude::*;
use std::sync::Arc;

fn fig7_grid() -> Arc<gae::core::Grid> {
    GridBuilder::new()
        .site_with_load(SiteDescription::new(SiteId::new(1), "site-a", 1, 1), 3.68)
        .site(SiteDescription::new(SiteId::new(2), "site-b", 1, 1))
        .build()
}

fn paper_policy(auto_move: bool) -> SteeringPolicy {
    SteeringPolicy {
        auto_move,
        min_observation: SimDuration::from_secs_f64(84.9),
        slow_rate_threshold: 0.5,
        ..SteeringPolicy::default()
    }
}

fn prime_job(owner: UserId) -> (JobSpec, TaskId) {
    let mut job = JobSpec::new(JobId::new(1), "prime", owner);
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "primes", "prime")
            .with_cpu_demand(SimDuration::from_secs(283)),
    );
    (job, task)
}

#[test]
fn autonomous_steering_beats_staying_put() {
    let stack = ServiceStack::with_policy(
        fig7_grid(),
        paper_policy(true),
        SimDuration::from_secs_f64(28.3),
    );
    let (job, task) = prime_job(UserId::new(1));
    let plan = AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]);
    stack.submit_plan(&plan).unwrap();

    stack.run_until(SimTime::from_secs(500));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    assert_eq!(
        info.site,
        SiteId::new(2),
        "the job must have been moved to the free site"
    );
    let done = info.completed_at.unwrap().as_secs_f64();
    assert!(
        (done - 369.0).abs() < 10.0,
        "completion at {done}, paper ~369 s"
    );

    let moves = stack.steering.move_log();
    assert_eq!(moves.len(), 1);
    assert_eq!(moves[0].reason, MoveReason::SlowProgress);
    assert_eq!(moves[0].from, SiteId::new(1));
    assert_eq!(moves[0].to, SiteId::new(2));

    // The client got told about the move and the completion.
    let notes = stack.steering.drain_notifications();
    assert!(notes.iter().any(|n| matches!(
        n,
        Notification::TaskMoved {
            reason: MoveReason::SlowProgress,
            ..
        }
    )));
    assert!(notes
        .iter()
        .any(|n| matches!(n, Notification::JobCompleted { .. })));
}

#[test]
fn manual_move_command_works_like_the_optimizer() {
    // Auto-steering off: "the user could have moved the job from
    // site A to site B manually as well" (§7).
    let stack =
        ServiceStack::with_policy(fig7_grid(), paper_policy(false), SimDuration::from_secs(5));
    let owner = UserId::new(1);
    let (job, task) = prime_job(owner);
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(85));

    // Explicit destination.
    stack
        .steering
        .command(owner, task, SteeringCommand::Move(Some(SiteId::new(2))))
        .unwrap();
    stack.run_until(SimTime::from_secs(380));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    assert_eq!(info.site, SiteId::new(2));
    let moves = stack.steering.move_log();
    assert_eq!(moves[0].reason, MoveReason::Manual);
}

#[test]
fn optimizer_chooses_destination_when_unspecified() {
    let stack =
        ServiceStack::with_policy(fig7_grid(), paper_policy(false), SimDuration::from_secs(5));
    let owner = UserId::new(1);
    let (job, task) = prime_job(owner);
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(50));
    stack
        .steering
        .command(owner, task, SteeringCommand::Move(None))
        .unwrap();
    let tracked = stack.steering.tracked_job(JobId::new(1)).unwrap();
    let (site, _) = tracked.location(task).unwrap();
    assert_eq!(
        site,
        SiteId::new(2),
        "the optimizer must pick the free site"
    );
}

#[test]
fn pause_resume_and_priority_commands() {
    let stack = ServiceStack::over(fig7_grid());
    let owner = UserId::new(1);
    let (job, task) = prime_job(owner);
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(2)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(50));

    stack
        .steering
        .command(owner, task, SteeringCommand::Pause)
        .unwrap();
    let paused_at_cpu = stack.jobmon.job_info(task).unwrap().cpu_time;
    stack.run_until(SimTime::from_secs(100));
    assert_eq!(
        stack.jobmon.job_info(task).unwrap().cpu_time,
        paused_at_cpu,
        "no accrual while paused"
    );
    assert_eq!(
        stack.jobmon.job_info(task).unwrap().status,
        TaskStatus::Suspended
    );

    stack
        .steering
        .command(owner, task, SteeringCommand::Resume)
        .unwrap();
    stack
        .steering
        .command(owner, task, SteeringCommand::SetPriority(Priority::HIGH))
        .unwrap();
    stack.run_until(SimTime::from_secs(400));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    assert_eq!(info.priority, Priority::HIGH);
    // Paused 50 s: completion shifted from 283 to ~333.
    let done = info.completed_at.unwrap().as_secs_f64();
    assert!((done - 333.0).abs() < 2.0, "completion {done}");
}

#[test]
fn kill_command_settles_the_job() {
    let stack = ServiceStack::over(fig7_grid());
    let owner = UserId::new(1);
    let (job, task) = prime_job(owner);
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(10));
    stack
        .steering
        .command(owner, task, SteeringCommand::Kill)
        .unwrap();
    stack.run_until(SimTime::from_secs(30));
    assert_eq!(
        stack.jobmon.job_info(task).unwrap().status,
        TaskStatus::Killed
    );
    let notes = stack.steering.drain_notifications();
    assert!(notes
        .iter()
        .any(|n| matches!(n, Notification::JobFailed { .. })));
    // Further commands on the dead task fail cleanly.
    assert!(stack
        .steering
        .command(owner, task, SteeringCommand::Pause)
        .is_err());
}

#[test]
fn session_manager_blocks_strangers_but_not_operators() {
    let stack = ServiceStack::over(fig7_grid());
    let owner = UserId::new(1);
    let stranger = UserId::new(2);
    let operator = UserId::new(3);
    let (job, task) = prime_job(owner);
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(10));

    let err = stack
        .steering
        .command(stranger, task, SteeringCommand::Pause)
        .unwrap_err();
    assert!(matches!(err, GaeError::Unauthorized(_)));

    stack.steering.authorizer().add_operator(operator);
    stack
        .steering
        .command(operator, task, SteeringCommand::Pause)
        .unwrap();
    stack
        .steering
        .command(owner, task, SteeringCommand::Resume)
        .unwrap();
}

#[test]
fn policy_can_be_changed_at_runtime() {
    // Start with auto-move off; flip it on mid-run and watch the
    // optimizer act on the next poll.
    let stack =
        ServiceStack::with_policy(fig7_grid(), paper_policy(false), SimDuration::from_secs(10));
    let (job, task) = prime_job(UserId::new(1));
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(200));
    assert!(
        stack.steering.move_log().is_empty(),
        "manual policy: no moves"
    );
    assert!(!stack.steering.policy().auto_move);

    stack.steering.set_policy(paper_policy(true));
    stack.run_until(SimTime::from_secs(250));
    assert_eq!(
        stack.steering.move_log().len(),
        1,
        "auto-move acted after the flip"
    );
    stack.run_until(SimTime::from_secs(600));
    assert_eq!(
        stack.jobmon.job_info(task).unwrap().status,
        TaskStatus::Completed
    );
}

#[test]
fn steering_policy_thresholds_control_the_move() {
    // Rate at site A is ~0.21. A threshold below that must not move.
    let policy = SteeringPolicy {
        auto_move: true,
        min_observation: SimDuration::from_secs(30),
        slow_rate_threshold: 0.1,
        ..SteeringPolicy::default()
    };
    let stack = ServiceStack::with_policy(fig7_grid(), policy, SimDuration::from_secs(10));
    let (job, _task) = prime_job(UserId::new(1));
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(400));
    assert!(
        stack.steering.move_log().is_empty(),
        "threshold 0.1 must keep the job at A"
    );
}
