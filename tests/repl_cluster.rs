//! Replicated-log cluster semantics (DESIGN.md §13), exercised on a
//! standalone cluster with [`MirrorMachine`] state: commit-time
//! streaming, snapshot-install catch-up for lagging followers, the
//! quorum rule under follower loss, deterministic elections, and the
//! recoverability of a promoted follower's store.

use gae::durable::fault::unique_temp_dir;
use gae::durable::DurableStore;
use gae::prelude::*;
use gae::wire::Value;

fn cluster_at(dir: &std::path::Path, followers: usize) -> ReplicatedLog<MirrorMachine> {
    ReplicatedLog::standalone(
        dir,
        ReplConfig {
            followers,
            fsync: false,
        },
        MirrorMachine::new(),
        |_| MirrorMachine::new(),
    )
    .expect("cluster")
}

fn commit_batch(cluster: &ReplicatedLog<MirrorMachine>, tag: &str, records: usize) -> u64 {
    for i in 0..records {
        cluster
            .append(tag, Value::from(format!("{tag}-{i}")))
            .expect("append");
    }
    cluster.commit().expect("commit")
}

/// Committed batches land on every follower — store and machine — in
/// lockstep; uncommitted appends are invisible to followers.
#[test]
fn followers_replay_every_committed_batch() {
    let dir = unique_temp_dir("repl-replay");
    let cluster = cluster_at(&dir, 2);
    for round in 0..5 {
        commit_batch(&cluster, &format!("r{round}"), 3);
    }
    let leader = cluster.leader_state().expect("leader state");
    for node in cluster.follower_ids() {
        assert_eq!(
            cluster.follower_state(node).expect("follower state"),
            leader,
            "{node} diverged from the leader"
        );
        assert_eq!(cluster.follower_commit(node).expect("commit"), 5);
    }
    assert_eq!(cluster.quorum_commit(), 5);

    // An append the leader has not committed must not leak.
    cluster
        .append("pending", Value::from("never"))
        .expect("append");
    for node in cluster.follower_ids() {
        assert_eq!(cluster.follower_commit(node).expect("commit"), 5);
        assert_eq!(cluster.follower_state(node).expect("state"), leader);
    }

    let stats = cluster.stats();
    assert_eq!(stats.commit_index, 5);
    assert_eq!(
        stats.streamed_records,
        5 * 3 * 2,
        "3 records × 5 commits × 2 followers"
    );
    assert_eq!(stats.acks, 5 * 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a killed follower misses commits *and* a snapshot
/// rotation; rejoining installs the rotation snapshot plus the
/// retained log suffix, landing byte-identical to the leader at the
/// leader's commit index.
#[test]
fn snapshot_install_catches_up_lagging_follower() {
    let dir = unique_temp_dir("repl-install");
    let cluster = cluster_at(&dir, 2);
    let lagger = NodeId(1);
    commit_batch(&cluster, "before", 4);
    cluster.kill_follower(lagger).expect("kill");
    assert_eq!(cluster.stats().followers_alive, 1);

    // The leader advances past a rotation while the follower is dead:
    // the pre-rotation batches are released from the catch-up log, so
    // rejoin *must* go through snapshot install.
    commit_batch(&cluster, "missed", 2);
    cluster.rotate().expect("rotate");
    let after_rotation = commit_batch(&cluster, "suffix", 3);

    cluster.rejoin_follower(lagger).expect("rejoin");
    let stats = cluster.stats();
    assert_eq!(stats.snapshot_installs, 1, "rejoin must snapshot-install");
    assert_eq!(stats.followers_alive, 2);
    assert_eq!(
        cluster.follower_commit(lagger).expect("commit"),
        after_rotation,
        "the rejoined follower caught up to the leader's commit index"
    );
    assert_eq!(
        cluster.follower_state(lagger).expect("state"),
        cluster.leader_state().expect("leader state"),
        "byte-identical state digest after snapshot install + suffix replay"
    );
    assert_eq!(cluster.quorum_commit(), after_rotation);
    std::fs::remove_dir_all(&dir).ok();
}

/// The quorum rule (n/2 + 1): with every follower dead the leader
/// still commits locally but the quorum index stalls; a rejoined
/// follower catches up and un-stalls it.
#[test]
fn quorum_stalls_without_followers_and_recovers() {
    let dir = unique_temp_dir("repl-quorum");
    let cluster = cluster_at(&dir, 2);
    let committed = commit_batch(&cluster, "healthy", 2);
    assert_eq!(cluster.quorum_commit(), committed);
    assert_eq!(cluster.stats().quorum_stalls, 0);

    cluster.kill_follower(NodeId(1)).expect("kill 1");
    cluster.kill_follower(NodeId(2)).expect("kill 2");
    let alone = commit_batch(&cluster, "alone", 2);
    assert_eq!(cluster.stats().leader_commit, alone);
    assert_eq!(
        cluster.quorum_commit(),
        committed,
        "a leader alone is below quorum (needs 2 of 3 nodes)"
    );
    assert_eq!(cluster.stats().quorum_stalls, 1);

    cluster.rejoin_follower(NodeId(2)).expect("rejoin");
    assert_eq!(
        cluster.quorum_commit(),
        alone,
        "leader + one follower is a quorum again"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The election rule — highest `(commit_index, node_id)` among live
/// followers — is deterministic: in-sync followers tie on commit
/// index and the highest node id wins; dead followers never win
/// however far ahead they once were.
#[test]
fn election_is_deterministic() {
    // All followers in sync: the tie breaks on node id.
    let dir = unique_temp_dir("repl-elect-tie");
    let cluster = cluster_at(&dir, 3);
    let committed = commit_batch(&cluster, "sync", 2);
    let promotion = cluster.fail_leader().expect("election");
    assert_eq!(promotion.node, NodeId(3));
    assert_eq!(promotion.commit_index, committed);
    assert_eq!(cluster.stats().elections, 1);
    std::fs::remove_dir_all(&dir).ok();

    // The highest-id follower is dead (and lagging): the next live
    // one wins. Live followers cannot lag in this synchronous model,
    // so the commit-index component of the rule only discriminates
    // against the dead.
    let dir = unique_temp_dir("repl-elect-dead");
    let cluster = cluster_at(&dir, 3);
    commit_batch(&cluster, "early", 2);
    cluster.kill_follower(NodeId(3)).expect("kill");
    commit_batch(&cluster, "late", 2);
    let promotion = cluster.fail_leader().expect("election");
    assert_eq!(promotion.node, NodeId(2), "dead node-3 is not electable");
    std::fs::remove_dir_all(&dir).ok();
}

/// A promoted follower's store is byte-for-byte as recoverable as the
/// dead leader's own: same record payloads, same commit index, same
/// anchoring snapshot — across a rotation.
#[test]
fn promoted_follower_store_is_recoverable() {
    let dir = unique_temp_dir("repl-promote");
    let cluster = cluster_at(&dir, 2);
    commit_batch(&cluster, "gen0", 3);
    cluster.rotate().expect("rotate");
    commit_batch(&cluster, "gen1", 2);
    let promotion = cluster.fail_leader().expect("election");
    drop(cluster);

    let leader = DurableStore::recover(&dir.join("node-0")).expect("recover leader dir");
    let follower = DurableStore::recover(&promotion.dir).expect("recover promoted dir");
    assert_eq!(follower.commit_index, leader.commit_index);
    assert_eq!(follower.record_seq, leader.record_seq);
    assert_eq!(follower.generation, leader.generation);
    assert_eq!(follower.snapshot, leader.snapshot);
    assert_eq!(follower.records, leader.records);
    std::fs::remove_dir_all(&dir).ok();
}

/// Killing an already-dead follower, rejoining a live one, or failing
/// the leader twice are refused as invalid transitions, not UB.
#[test]
fn lifecycle_misuse_is_refused() {
    let dir = unique_temp_dir("repl-misuse");
    let cluster = cluster_at(&dir, 2);
    commit_batch(&cluster, "x", 1);
    assert!(
        cluster.rejoin_follower(NodeId(1)).is_err(),
        "rejoin of a live follower"
    );
    cluster.kill_follower(NodeId(1)).expect("kill");
    assert!(cluster.kill_follower(NodeId(1)).is_err(), "double kill");
    cluster.fail_leader().expect("first election");
    assert!(cluster.fail_leader().is_err(), "the leader is already dead");
    assert!(cluster.commit().is_err(), "a dead leader cannot commit");
    std::fs::remove_dir_all(&dir).ok();
}
