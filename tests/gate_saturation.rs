//! Figure-6-style overload experiment over real TCP (ISSUE 3): the
//! paper measures response time collapsing as parallel clients exceed
//! the Clarens server's capacity. With the admission gate in front,
//! overload must instead surface as *typed* `Overloaded` faults with
//! a machine-readable retry-after: queue depth stays bounded, every
//! admitted request completes, nothing hangs and nothing panics.
//!
//! Plus the determinism half of the satellite: a 256-case property
//! test that the token bucket's admit/deny sequence is a pure
//! function of (config, arrival sequence).

use gae::gate::{Gate, GateConfig, QueueConfig, TokenBucket, TokenBucketConfig, WallClock};
use gae::prelude::*;
use gae::rpc::{CallContext, MethodInfo, Rpc, Service, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::wire::Value;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A deliberately slow method: each call holds a worker for ~20 ms,
/// so a handful of parallel clients outruns two workers immediately.
struct SlowRpc;

impl Service for SlowRpc {
    fn name(&self) -> &'static str {
        "slow"
    }

    fn call(&self, _ctx: &CallContext, method: &str, _params: &[Value]) -> GaeResult<Value> {
        match method {
            "work" => {
                std::thread::sleep(Duration::from_millis(20));
                Ok(Value::from(1u64))
            }
            other => Err(GaeError::NotFound(format!("slow.{other}"))),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![MethodInfo {
            name: "work",
            help: "sleep 20 ms and return",
        }]
    }
}

const QUEUE_CAPACITY: usize = 4;
const CLIENTS: usize = 12;
const CALLS_PER_CLIENT: usize = 8;

/// N parallel clients against a workers=2 gated server, 4× past
/// capacity: the bounded queue sheds with typed faults instead of
/// buffering without limit, and everything it admits completes.
#[test]
fn overload_sheds_typed_faults_and_bounds_the_queue() {
    let host = ServiceHost::open();
    host.register(Arc::new(SlowRpc));

    // Roomy bucket (rate limiting is not under test here), tight
    // queue: 4 slots, half-second patience.
    let gate = Gate::new(
        GateConfig {
            bucket: TokenBucketConfig::new(1e6, 1e6),
            queue: QueueConfig::new(QUEUE_CAPACITY, SimDuration::from_millis(500)),
            ..GateConfig::default()
        },
        Arc::new(WallClock::new()),
    );
    let server = TcpRpcServer::start_gated(host, 2, gate.clone()).unwrap();
    let addr = server.addr();

    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = TcpRpcClient::connect(addr);
            let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
            for _ in 0..CALLS_PER_CLIENT {
                match client.call("slow.work", vec![]) {
                    Ok(v) => {
                        assert_eq!(v.as_u64().unwrap(), 1);
                        ok += 1;
                    }
                    Err(GaeError::Overloaded { retry_after_us, .. }) => {
                        assert!(retry_after_us > 0, "retry-after must be machine-usable");
                        overloaded += 1;
                    }
                    Err(e) => {
                        eprintln!("unexpected error under overload: {e}");
                        other += 1;
                    }
                }
            }
            (ok, overloaded, other)
        }));
    }

    let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
    for h in handles {
        let (o, s, x) = h.join().expect("client thread must not panic");
        ok += o;
        overloaded += s;
        other += x;
    }

    let total = (CLIENTS * CALLS_PER_CLIENT) as u64;
    assert_eq!(
        ok + overloaded + other,
        total,
        "every request accounted for"
    );
    assert_eq!(other, 0, "only Ok or typed Overloaded under overload");
    assert!(ok > 0, "admitted requests must complete");
    assert!(
        overloaded > 0,
        "{CLIENTS} clients vs 2 workers + {QUEUE_CAPACITY} slots must shed"
    );

    let stats = gate.stats();
    assert!(
        stats.peak_queue_depth <= QUEUE_CAPACITY,
        "queue depth bounded: peak {} > capacity {QUEUE_CAPACITY}",
        stats.peak_queue_depth
    );
    assert_eq!(stats.total_admitted(), total, "bucket admitted everyone");
    assert!(
        stats.total_rejected() >= overloaded,
        "gate counters cover every shed fault"
    );

    // The server is still healthy after the storm.
    let mut client = TcpRpcClient::connect(addr);
    assert_eq!(
        client.call("system.ping", vec![]).unwrap(),
        Value::from("pong")
    );
    server.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The token bucket's decisions are a pure function of
    /// (config, arrival sequence): replaying the same arrivals
    /// through a fresh bucket yields the identical admit/deny/retry
    /// trace, byte for byte.
    #[test]
    fn bucket_decisions_are_pure_function_of_arrivals(
        burst in 1.0f64..8.0,
        rate in 0.1f64..50.0,
        deltas in proptest::collection::vec(0u64..500_000, 1..40usize),
    ) {
        let config = TokenBucketConfig::new(burst, rate);
        let mut now = 0u64;
        let arrivals: Vec<SimTime> = deltas
            .iter()
            .map(|d| {
                now += d;
                SimTime::from_micros(now)
            })
            .collect();
        let replay = || -> Vec<Result<(), SimDuration>> {
            let mut bucket = TokenBucket::new(config, SimTime::ZERO);
            arrivals.iter().map(|t| bucket.try_take(*t)).collect()
        };
        let first = replay();
        let second = replay();
        prop_assert_eq!(&first, &second);
        // The burst prefix is admitted; every denial names a finite,
        // positive back-off.
        let prefix = (config.capacity as usize).min(arrivals.len());
        prop_assert!(first[..prefix].iter().all(|d| d.is_ok()));
        for d in &first {
            if let Err(retry) = d {
                prop_assert!(*retry > SimDuration::ZERO);
            }
        }
    }
}
