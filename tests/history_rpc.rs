//! The `history` RPC facade end to end: predicate round-trips over
//! real TCP sockets through a gated host, typed 400/404 faults on
//! malformed queries, trace propagation (`X-GAE-Trace` joins the
//! caller's tree, `hist.*` spans land under the deterministic query
//! trace), and a 128-case proptest holding `history.query` to the
//! naive reference filter on random predicates. Also home of the
//! jobmon export-determinism check (Sequential ≡ Sharded) and the
//! scaled pushdown test over a 10⁵/10⁶-row store.

use gae::core::estimator::RuntimeEstimator;
use gae::core::HistoryRpc;
use gae::hist::{
    naive_matches, ColumnPredicate, HistConfig, HistRecord, HistStore, NUM_COLUMNS, STR_COLUMNS,
};
use gae::obs::{SpanId, TraceContext, TraceId};
use gae::prelude::*;
use gae::rpc::{CallContext, Rpc, Service, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::wire::Value;
use proptest::prelude::*;
use std::sync::Arc;

#[path = "harness/mod.rs"]
mod harness;
use harness::{build_grid, submit_workload, Scenario};

/// A stack whose workload has fully settled, so the collector has
/// funnelled every terminal task into the columnar store, served over
/// a real TCP socket through a permissive gate (the facade is gated:
/// every admitted call crosses the admission queue).
struct Deployment {
    stack: Arc<ServiceStack>,
    gate: Arc<gae::gate::Gate>,
    server: TcpRpcServer,
}

fn deploy() -> Deployment {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 4, 1))
        .site(SiteDescription::new(SiteId::new(2), "beta", 4, 1))
        .build();
    let stack = ServiceStack::over(grid);
    let mut job = JobSpec::new(JobId::new(1), "histwire", UserId::new(7));
    for i in 1..=4u64 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "reco")
                .with_cpu_demand(SimDuration::from_secs(50 * i)),
        );
    }
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(2_000));

    let host = ServiceHost::open();
    host.attach_obs(stack.obs());
    host.register(Arc::new(HistoryRpc::new(stack.hist.clone(), stack.obs())));
    let gate = Gate::new(GateConfig::default(), Arc::new(gae::gate::WallClock::new()));
    let server = TcpRpcServer::start_gated(host, 2, gate.clone()).unwrap();
    Deployment {
        stack,
        gate,
        server,
    }
}

fn pred_value(column: &str, op: &str, value: Value) -> Value {
    Value::struct_of([
        ("column", Value::from(column)),
        ("op", Value::from(op)),
        ("value", value),
    ])
}

fn query_spec(preds: Vec<Value>, limit: Option<u64>) -> Value {
    let mut members = vec![("predicates", Value::Array(preds))];
    if let Some(l) = limit {
        members.push(("limit", Value::from(l)));
    }
    Value::struct_of(members)
}

/// Parses one `history.query` row struct back into the record it
/// round-tripped from.
fn row_to_record(v: &Value) -> HistRecord {
    let n = |m: &str| v.member(m).unwrap().as_u64().unwrap();
    let s = |m: &str| v.member(m).unwrap().as_str().unwrap().to_string();
    HistRecord {
        task: n("task"),
        site: n("site"),
        nodes: n("nodes"),
        submit_us: n("submit_us"),
        start_us: n("start_us"),
        finish_us: n("finish_us"),
        runtime_us: n("runtime_us"),
        success: v.member("success").unwrap().as_bool().unwrap(),
        account: s("account"),
        login: s("login"),
        executable: s("executable"),
        queue: s("queue"),
        partition: s("partition"),
        job_type: s("job_type"),
    }
}

// ---- wire round-trips ----

#[test]
fn query_round_trips_predicates_over_the_wire() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());

    // Everything the funnel stored, unfiltered.
    let all = client
        .call("history.query", vec![query_spec(vec![], None)])
        .unwrap();
    let matched = all.member("matched").unwrap().as_u64().unwrap();
    assert_eq!(matched, 4, "four terminal tasks funnelled");
    assert_eq!(all.member("rows").unwrap().as_array().unwrap().len(), 4);

    // A conjunction: successful runs of the job's owner with at least
    // 100 s of accrued runtime.
    let preds = vec![
        pred_value("login", "eq", Value::from("user-7")),
        pred_value("success", "eq", Value::from(1u64)),
        pred_value("runtime_us", "ge", Value::from(100_000_000u64)),
    ];
    let reply = client
        .call("history.query", vec![query_spec(preds.clone(), None)])
        .unwrap();
    let rows = reply.member("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 3, "tasks 2..=4 ran ≥ 100 s");

    // The wire rows agree with an in-process scan and with the naive
    // reference semantics.
    let wanted: Vec<ColumnPredicate> = vec![
        ColumnPredicate::eq_str("login", "user-7"),
        ColumnPredicate::eq_num("success", 1),
        ColumnPredicate::ge("runtime_us", 100_000_000),
    ];
    let (local, stats) = d.stack.hist.store().query(&wanted, usize::MAX).unwrap();
    assert_eq!(
        rows.iter().map(row_to_record).collect::<Vec<_>>(),
        local,
        "wire rows diverge from the in-process scan"
    );
    assert_eq!(
        reply.member("matched").unwrap().as_u64().unwrap(),
        stats.rows_matched
    );
    for r in &local {
        assert!(naive_matches(r, &wanted));
    }

    // An explicit limit truncates rows but not the match cardinality.
    let limited = client
        .call("history.query", vec![query_spec(vec![], Some(2))])
        .unwrap();
    assert_eq!(limited.member("rows").unwrap().as_array().unwrap().len(), 2);
    assert_eq!(limited.member("matched").unwrap().as_u64().unwrap(), 4);

    // export and stats agree on the store identity.
    let export = client.call("history.export", vec![]).unwrap();
    let stats = client.call("history.stats", vec![]).unwrap();
    assert_eq!(
        export.member("digest").unwrap().as_str().unwrap(),
        d.stack.hist.store().digest()
    );
    assert_eq!(
        stats.member("digest").unwrap().as_str().unwrap(),
        export.member("digest").unwrap().as_str().unwrap()
    );
    assert_eq!(stats.member("rows").unwrap().as_u64().unwrap(), 4);

    // The exported bytes rebuild an identical store.
    let rebuilt = HistStore::new(HistConfig::default());
    rebuilt
        .restore(export.member("bytes").unwrap().as_bytes().unwrap())
        .unwrap();
    assert_eq!(rebuilt.digest(), d.stack.hist.store().digest());

    // All of it went through the gate.
    assert!(
        d.gate.stats().total_admitted() > 0,
        "facade calls are gated"
    );
    d.server.stop();
}

// ---- typed faults ----

#[test]
fn malformed_predicates_are_400_unknown_columns_404() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());

    // 400: unknown comparison op.
    let e = client
        .call(
            "history.query",
            vec![query_spec(
                vec![pred_value("site", "lt", Value::from(1u64))],
                None,
            )],
        )
        .unwrap_err();
    assert!(matches!(e, GaeError::Parse(_)), "{e}");

    // 400: string value against a numeric column.
    let e = client
        .call(
            "history.query",
            vec![query_spec(
                vec![pred_value("site", "eq", Value::from("cern"))],
                None,
            )],
        )
        .unwrap_err();
    assert!(matches!(e, GaeError::Parse(_)), "{e}");

    // 400: ordered compare on a string column.
    let e = client
        .call(
            "history.query",
            vec![query_spec(
                vec![pred_value("login", "ge", Value::from("alice"))],
                None,
            )],
        )
        .unwrap_err();
    assert!(matches!(e, GaeError::Parse(_)), "{e}");

    // 400: structurally broken specs.
    for bad in [
        Value::struct_of([("limit", Value::from(3u64))]), // no predicates
        Value::struct_of([("predicates", Value::from("nope"))]), // not an array
        Value::from(7u64),                                // not a struct
    ] {
        let e = client.call("history.query", vec![bad]).unwrap_err();
        assert!(matches!(e, GaeError::Parse(_)), "{e}");
    }
    // 400: no params at all, and params where none belong.
    let e = client.call("history.query", vec![]).unwrap_err();
    assert!(matches!(e, GaeError::Parse(_)), "{e}");
    for method in ["history.export", "history.stats"] {
        let e = client.call(method, vec![Value::from(1u64)]).unwrap_err();
        assert!(matches!(e, GaeError::Parse(_)), "{method}: {e}");
    }

    // 404: a well-formed predicate over a column that does not exist.
    let e = client
        .call(
            "history.query",
            vec![query_spec(
                vec![pred_value("walltime", "eq", Value::from(1u64))],
                None,
            )],
        )
        .unwrap_err();
    assert!(matches!(e, GaeError::NotFound(_)), "{e}");

    // -32601: unknown method on the service.
    let e = client.call("history.truncate", vec![]).unwrap_err();
    assert!(matches!(e, GaeError::Rpc { code: -32601, .. }), "{e}");
    d.server.stop();
}

// ---- trace headers and hist.* spans ----

#[test]
fn queries_join_the_wire_trace_and_emit_hist_spans() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());

    // The client-chosen X-GAE-Trace context captures the dispatch
    // span on the server side.
    client.set_trace(Some(TraceContext {
        trace: TraceId::new(0x5151),
        span: SpanId::ROOT,
    }));
    client
        .call("history.query", vec![query_spec(vec![], None)])
        .unwrap();
    let hub = d.stack.obs();
    let spans = hub.traces().spans(TraceId::new(0x5151)).expect("joined");
    assert!(
        spans.iter().any(|s| s.name == "rpc.history.query"),
        "{spans:?}"
    );

    // The query itself spans its scan shape under the deterministic
    // hist trace for query id 1: segments pruned, rows scanned, rows
    // matched.
    let spans = hub
        .traces()
        .spans(TraceId::for_hist(1))
        .expect("hist trace rooted");
    for prefix in ["hist.prune#", "hist.scan#", "hist.match#"] {
        assert!(
            spans.iter().any(|s| s.name.starts_with(prefix)),
            "missing {prefix} in {spans:?}"
        );
    }
    assert!(spans.iter().any(|s| s.name == "hist.match#4"), "{spans:?}");

    // And the wall-clock latency histogram saw the call.
    let snap = hub.hist_snapshot();
    let query = snap
        .iter()
        .find(|(m, _)| m == "query")
        .expect("query histogram");
    assert!(query.1.count >= 1);
    d.server.stop();
}

// ---- fuzzed queries never panic ----

fn arb_junk_value() -> impl Strategy<Value = Value> {
    (any::<u8>(), any::<u64>(), "[a-z#]{0,8}").prop_map(|(kind, n, s)| match kind % 5 {
        0 => Value::from(n),
        1 => Value::from(s.as_str()),
        2 => Value::Nil,
        3 => Value::Array(vec![]),
        _ => Value::Bool(n % 2 == 0),
    })
}

fn arb_junk_predicate() -> impl Strategy<Value = Value> {
    // Column/op/value drawn from valid and invalid spellings alike,
    // with members randomly missing.
    (
        (any::<u8>(), "[a-z_]{0,10}"),
        any::<u8>(),
        arb_junk_value(),
        any::<u8>(),
    )
        .prop_map(|((csel, junk_col), osel, value, drop)| {
            let known: Vec<&str> = NUM_COLUMNS
                .iter()
                .chain(STR_COLUMNS.iter())
                .copied()
                .collect();
            let column = if csel % 4 == 0 {
                junk_col
            } else {
                known[csel as usize % known.len()].to_string()
            };
            let op = ["eq", "ge", "le", "lt", "", "EQ"][osel as usize % 6];
            let mut members = Vec::new();
            if drop & 1 == 0 {
                members.push(("column", Value::from(column.as_str())));
            }
            if drop & 2 == 0 {
                members.push(("op", Value::from(op)));
            }
            if drop & 4 == 0 {
                members.push(("value", value));
            }
            Value::struct_of(members)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary wire shapes — valid predicates, half-formed ones,
    /// and outright junk — against the live facade: every call
    /// returns Ok or a typed error, never a panic.
    #[test]
    fn fuzzed_queries_never_panic(
        preds in proptest::collection::vec(arb_junk_predicate(), 0..5),
        wrap_in_array in any::<bool>(),
        limit in (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v)),
    ) {
        let funnel = gae::core::HistFunnel::new(HistConfig { segment_rows: 8 });
        for t in 0..20u64 {
            funnel.ingest(HistRecord {
                task: t,
                site: 1 + t % 3,
                nodes: 1,
                submit_us: t * 1_000,
                start_us: t * 1_000 + 5,
                finish_us: t * 2_000,
                runtime_us: t * 500,
                success: t % 4 != 0,
                account: format!("acct{}", t % 2),
                login: format!("user{}", t % 5),
                executable: "reco".into(),
                queue: "default".into(),
                partition: "compute".into(),
                job_type: "batch".into(),
            });
        }
        let hub = gae::obs::ObsHub::new(Arc::new(gae::obs::WallObsClock::new()));
        let svc = HistoryRpc::new(funnel, hub);
        let spec = if wrap_in_array {
            query_spec(preds, limit)
        } else {
            Value::Array(preds)
        };
        let _ = svc.call(&CallContext::anonymous("fuzz"), "query", &[spec]);
    }

    /// The pushdown scan agrees with the naive reference filter on
    /// random stores and random valid predicate conjunctions — zone
    /// maps and dictionaries must never change the answer.
    #[test]
    fn scan_equals_naive_reference_through_the_facade(
        rows in proptest::collection::vec(
            (
                (0..50u64, 1..4u64, 0..4u64),
                (0..1_000u64, any::<bool>(), 0..3usize, 0..3usize),
            ),
            0..120,
        ),
        preds in proptest::collection::vec(
            (0..4usize, 0..3usize, 0..1_000u64, 0..4usize),
            0..4,
        ),
        segment_rows in 1..16usize,
    ) {
        let logins = ["amy", "bob", "cal"];
        let queues = ["short", "long", "gpu"];
        let records: Vec<HistRecord> = rows
            .iter()
            .map(|((task, site, nodes), (runtime, success, who, queue))| HistRecord {
                task: *task,
                site: *site,
                nodes: *nodes,
                submit_us: task * 10,
                start_us: task * 10 + 1,
                finish_us: task * 10 + 2,
                runtime_us: *runtime,
                success: *success,
                account: format!("a{who}"),
                login: logins[*who].into(),
                executable: "x".into(),
                queue: queues[*queue].into(),
                partition: "p".into(),
                job_type: "batch".into(),
            })
            .collect();
        let funnel = gae::core::HistFunnel::new(HistConfig { segment_rows });
        for r in &records {
            funnel.ingest(r.clone());
        }
        let wanted: Vec<ColumnPredicate> = preds
            .iter()
            .map(|(kind, op, num, pick)| match kind {
                0 => match op {
                    0 => ColumnPredicate::eq_num("runtime_us", *num),
                    1 => ColumnPredicate::ge("runtime_us", *num),
                    _ => ColumnPredicate::le("runtime_us", *num),
                },
                1 => ColumnPredicate::eq_num("site", num % 5),
                2 => ColumnPredicate::eq_str("login", logins[pick % 3]),
                _ => ColumnPredicate::eq_str("queue", queues[pick % 3]),
            })
            .collect();
        let expected: Vec<HistRecord> = records
            .iter()
            .filter(|r| naive_matches(r, &wanted))
            .cloned()
            .collect();

        // Through the facade (wire shapes) ...
        let hub = gae::obs::ObsHub::new(Arc::new(gae::obs::WallObsClock::new()));
        let svc = HistoryRpc::new(funnel.clone(), hub);
        let wire_preds = wanted
            .iter()
            .map(|p| {
                let value = match &p.value {
                    gae::hist::PredValue::Num(n) => Value::from(*n),
                    gae::hist::PredValue::Str(s) => Value::from(s.as_str()),
                };
                pred_value(&p.column, p.op.as_str(), value)
            })
            .collect();
        let reply = svc
            .call(
                &CallContext::anonymous("prop"),
                "query",
                &[query_spec(wire_preds, Some(u64::MAX))],
            )
            .unwrap();
        let got: Vec<HistRecord> = reply
            .member("rows")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(row_to_record)
            .collect();
        prop_assert_eq!(&got, &expected, "facade scan diverged from naive filter");
        prop_assert_eq!(
            reply.member("matched").unwrap().as_u64().unwrap(),
            expected.len() as u64
        );

        // ... and directly against the store, after a seal+compact
        // pass reshapes the segments.
        funnel.store().apply(&gae::hist::HistOp::Seal);
        if funnel.store().compactable() {
            funnel.store().apply(&gae::hist::HistOp::Compact);
        }
        let (direct, _) = funnel.store().query(&wanted, usize::MAX).unwrap();
        prop_assert_eq!(&direct, &expected, "post-maintenance scan diverged");
    }
}

// ---- jobmon export determinism (Sequential ≡ Sharded) ----

#[test]
fn jobmon_export_digests_are_identical_across_driver_modes() {
    let scenario = Scenario {
        sites: vec![(2, 2, 0), (3, 1, 1), (2, 1, 0)],
        flock_edges: vec![(0, 1)],
        jobs: vec![
            (vec![45, 30, 25, 10], vec![(0, 2), (1, 3)]),
            (vec![20, 35], vec![(0, 1)]),
            (vec![50], vec![]),
        ],
        steps: 6,
        step_secs: 30,
        snapshot_steps: 2,
        sharded: false,
        victim: 0,
        kind: 0,
        extent: 0,
        bit: 0,
    };
    let run = |driver: DriverMode| {
        let stack = ServiceStack::over(build_grid(&scenario, driver, None));
        submit_workload(&scenario, &stack);
        stack.run_until(SimTime::from_secs(
            scenario.steps as u64 * scenario.step_secs,
        ));
        let export = format!("{:?}", stack.jobmon.db_snapshot());
        (export, stack.hist.store().digest())
    };
    let (seq_export, seq_hist) = run(DriverMode::Sequential);
    let (shard_export, shard_hist) = run(DriverMode::sharded(3));
    assert_eq!(
        seq_export, shard_export,
        "DBManager::export() order diverged across driver modes"
    );
    assert_eq!(seq_hist, shard_hist, "hist store diverged across modes");
    // The export is TaskId-sorted, so it is deterministic by
    // construction, not by accident of hash order.
    let infos = {
        let stack = ServiceStack::over(build_grid(&scenario, DriverMode::Sequential, None));
        submit_workload(&scenario, &stack);
        stack.run_until(SimTime::from_secs(
            scenario.steps as u64 * scenario.step_secs,
        ));
        stack.jobmon.db_snapshot()
    };
    let mut sorted = infos.clone();
    sorted.sort_by_key(|i| i.task);
    assert_eq!(infos, sorted, "export is not TaskId-sorted");
}

// ---- the collector funnel fills the store ----

#[test]
fn terminal_tasks_land_in_the_columnar_store_exactly_once() {
    let d = deploy();
    let store = d.stack.hist.store();
    assert_eq!(store.rows(), 4, "one row per terminal task");
    let (rows, _) = store
        .query(&[ColumnPredicate::eq_num("success", 1)], usize::MAX)
        .unwrap();
    assert_eq!(rows.len(), 4, "all four completed successfully");
    for r in &rows {
        assert_eq!(r.login, "user-7");
        assert_eq!(r.executable, "reco");
        assert_eq!(r.job_type, "batch");
        assert!(r.runtime_us >= 50_000_000);
    }
    // Re-running the clock past settlement adds nothing: terminal
    // states are funnelled once.
    d.stack.run_until(SimTime::from_secs(3_000));
    assert_eq!(store.rows(), 4);
    d.server.stop();
}

// ---- scale: pushdown over 10⁵ (debug) / 10⁶ (release) rows ----

#[test]
fn pushdown_prunes_and_estimates_stay_fast_at_scale() {
    let n: u64 = if cfg!(debug_assertions) {
        100_000
    } else {
        1_000_000
    };
    let store = HistStore::new(HistConfig::default());
    let logins = ["amy", "bob", "cal", "dee"];
    for t in 0..n {
        store.apply(&gae::hist::HistOp::Append(HistRecord {
            task: t,
            site: 1 + t % 4,
            nodes: 1 + t % 8,
            submit_us: t * 1_000, // time-ordered, so zone maps prune
            start_us: t * 1_000 + 40,
            finish_us: t * 1_000 + 900,
            runtime_us: 500 + (t % 1_000) * 37,
            success: t % 10 != 0,
            account: "cms".into(),
            login: logins[(t % 4) as usize].into(),
            executable: "reco".into(),
            queue: "prod".into(),
            partition: "compute".into(),
            job_type: "batch".into(),
        }));
    }
    assert_eq!(store.rows(), n);

    // A recent-window scan: submit_us zone maps prune every old
    // segment, so the scan touches well under a tenth of the rows.
    let window = [
        ColumnPredicate::ge("submit_us", (n - n / 100) * 1_000),
        ColumnPredicate::eq_num("success", 1),
    ];
    let (_, stats) = store.query(&window, usize::MAX).unwrap();
    assert!(
        stats.rows_scanned * 10 <= n,
        "pruning failed: scanned {} of {} rows",
        stats.rows_scanned,
        n
    );
    assert!(stats.segments_pruned * 10 >= stats.segments * 9);

    // The retargeted estimator answers over the full store; in
    // release this must stay in the low-millisecond range.
    let estimator = RuntimeEstimator::new(gae::core::estimator::HistoryStore::new(16));
    let meta = gae::trace::TaskMeta {
        account: "cms".into(),
        login: "amy".into(),
        executable: "reco".into(),
        queue: "prod".into(),
        partition: "compute".into(),
        nodes: 1,
        job_type: JobType::Batch,
    };
    let started = std::time::Instant::now();
    let est = estimator
        .estimate_columnar(&store, SiteId::new(1), &meta)
        .expect("similar tasks exist at scale");
    let elapsed = started.elapsed();
    assert!(est.runtime > SimDuration::ZERO);
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_millis() < 50,
            "estimate took {elapsed:?} over {n} rows"
        );
    }
}
