//! Sequential ≡ sharded driver equivalence, property-tested.
//!
//! The sharded grid driver (DESIGN.md, "Sharded driver determinism
//! contract") promises bit-identical observable behaviour to the
//! sequential one: same final task states, same completion times, and
//! the same MonALISA metric series sample-for-sample. This suite
//! drives randomly generated grids — 1..=64 sites with mixed loads,
//! flocking edges, multi-job random DAG workloads, zero-length tasks
//! included — through both drivers and compares everything observable.

use gae::monitor::{MetricKey, Sample};
use gae::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Per job: task demands in seconds and raw dependency index pairs.
type JobShape = (Vec<u64>, Vec<(usize, usize)>);
/// Per task: (status, site, started, completed) once monitoring saw it.
type TaskOutcome = (TaskStatus, SiteId, Option<SimTime>, Option<SimTime>);

/// One generated grid + workload, in plain data form so the same
/// scenario can be materialised twice.
#[derive(Clone, Debug)]
struct Scenario {
    /// Per site: (nodes, slots per node, external load in quarters).
    sites: Vec<(u32, u32, u64)>,
    /// Flocking edges as site-index pairs (self-edges skipped).
    flock_edges: Vec<(usize, usize)>,
    /// Per job: task demands in seconds (0 = zero-length task) and
    /// dependency edges as task-index pairs (applied low → high).
    jobs: Vec<JobShape>,
    /// Worker count for the sharded run.
    threads: usize,
    /// Horizon to drive both stacks to.
    horizon_s: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let site = (1u32..5, 1u32..3, 0u64..4);
    let edge = (any::<prop::sample::Index>(), any::<prop::sample::Index>());
    let job = (
        prop::collection::vec(0u64..120, 1..8),
        prop::collection::vec(edge, 0..6),
    );
    (
        prop::collection::vec(site, 1..65),
        prop::collection::vec(edge, 0..8),
        prop::collection::vec(job, 1..4),
        1usize..9,
        50u64..250,
    )
        .prop_map(|(sites, raw_flocks, raw_jobs, threads, horizon_s)| {
            let n = sites.len();
            let flock_edges = raw_flocks
                .into_iter()
                .map(|(a, b)| (a.index(n), b.index(n)))
                .collect();
            let jobs = raw_jobs
                .into_iter()
                .map(|(demands, raw_deps)| {
                    let t = demands.len();
                    let deps = raw_deps
                        .into_iter()
                        .map(|(a, b)| (a.index(t), b.index(t)))
                        .collect();
                    (demands, deps)
                })
                .collect();
            Scenario {
                sites,
                flock_edges,
                jobs,
                threads,
                horizon_s,
            }
        })
}

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct Outcome {
    now: SimTime,
    /// Per task id: `None` if monitoring never saw it.
    tasks: Vec<Option<TaskOutcome>>,
    /// Per site: the full cpu_load and queue_length series.
    series: Vec<(Vec<Sample>, Vec<Sample>)>,
}

fn materialise(scenario: &Scenario, driver: DriverMode) -> (Arc<ServiceStack>, Vec<TaskId>) {
    let mut builder = GridBuilder::new().driver(driver);
    for (i, (nodes, slots, load_quarters)) in scenario.sites.iter().enumerate() {
        let desc = SiteDescription::new(SiteId::new(i as u64 + 1), format!("s{i}"), *nodes, *slots);
        builder = if *load_quarters == 0 {
            builder.site(desc)
        } else {
            builder.site_with_load(desc, *load_quarters as f64 * 0.25)
        };
    }
    let grid = builder.build();
    for (a, b) in &scenario.flock_edges {
        if a != b {
            grid.enable_flocking(SiteId::new(*a as u64 + 1), SiteId::new(*b as u64 + 1));
        }
    }
    let stack = ServiceStack::over(grid);
    let mut all_tasks = Vec::new();
    for (j, (demands, deps)) in scenario.jobs.iter().enumerate() {
        let job_no = j as u64 + 1;
        let mut job = JobSpec::new(JobId::new(job_no), format!("job{job_no}"), UserId::new(1));
        let mut ids = Vec::new();
        for (k, demand) in demands.iter().enumerate() {
            let id = TaskId::new(job_no * 1000 + k as u64);
            job.add_task(
                TaskSpec::new(id, format!("t{job_no}-{k}"), "app")
                    .with_cpu_demand(SimDuration::from_secs(*demand)),
            );
            ids.push(id);
        }
        for (a, b) in deps {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi {
                job.add_dependency(ids[*lo], ids[*hi]);
            }
        }
        // Scheduling can legitimately fail (e.g. quota); both runs see
        // the identical spec, so an error is equivalence-preserving.
        if stack.submit_job(job).is_ok() {
            all_tasks.extend(ids);
        }
    }
    (stack, all_tasks)
}

fn run(scenario: &Scenario, driver: DriverMode) -> Outcome {
    let (stack, tasks) = materialise(scenario, driver);
    stack.run_until(SimTime::from_secs(scenario.horizon_s));
    let tasks = tasks
        .iter()
        .map(|t| {
            stack
                .jobmon
                .job_info(*t)
                .ok()
                .map(|i| (i.status, i.site, i.started_at, i.completed_at))
        })
        .collect();
    let horizon = SimTime::from_secs(scenario.horizon_s);
    let series = (1..=scenario.sites.len() as u64)
        .map(|s| {
            let site = SiteId::new(s);
            (
                stack.grid.monitor().range(
                    &MetricKey::site_wide(site, "cpu_load"),
                    SimTime::ZERO,
                    horizon,
                ),
                stack.grid.monitor().range(
                    &MetricKey::site_wide(site, "queue_length"),
                    SimTime::ZERO,
                    horizon,
                ),
            )
        })
        .collect();
    Outcome {
        now: stack.grid.now(),
        tasks,
        series,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sharded_driver_matches_sequential(scenario in arb_scenario()) {
        let sequential = run(&scenario, DriverMode::Sequential);
        let sharded = run(&scenario, DriverMode::sharded(scenario.threads));
        prop_assert_eq!(sequential, sharded);
    }
}
