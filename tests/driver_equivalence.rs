//! Sequential ≡ sharded driver equivalence, property-tested.
//!
//! The sharded grid driver (DESIGN.md, "Sharded driver determinism
//! contract") promises bit-identical observable behaviour to the
//! sequential one: same final task states, same completion times, and
//! the same MonALISA metric series sample-for-sample. This suite
//! drives randomly generated grids — 1..=64 sites with mixed loads,
//! flocking edges, multi-job random DAG workloads, zero-length tasks
//! included — through both drivers and compares everything observable.

use gae::monitor::{MetricKey, Sample};
use gae::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Per job: task demands in seconds and raw dependency index pairs.
type JobShape = (Vec<u64>, Vec<(usize, usize)>);
/// Per task: (status, site, started, completed) once monitoring saw it.
type TaskOutcome = (TaskStatus, SiteId, Option<SimTime>, Option<SimTime>);

/// One generated grid + workload, in plain data form so the same
/// scenario can be materialised twice.
#[derive(Clone, Debug)]
struct Scenario {
    /// Per site: (nodes, slots per node, external load in quarters).
    sites: Vec<(u32, u32, u64)>,
    /// Flocking edges as site-index pairs (self-edges skipped).
    flock_edges: Vec<(usize, usize)>,
    /// Per job: task demands in seconds (0 = zero-length task) and
    /// dependency edges as task-index pairs (applied low → high).
    jobs: Vec<JobShape>,
    /// Worker count for the sharded run.
    threads: usize,
    /// Horizon to drive both stacks to.
    horizon_s: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let site = (1u32..5, 1u32..3, 0u64..4);
    let edge = (any::<prop::sample::Index>(), any::<prop::sample::Index>());
    let job = (
        prop::collection::vec(0u64..120, 1..8),
        prop::collection::vec(edge, 0..6),
    );
    (
        prop::collection::vec(site, 1..65),
        prop::collection::vec(edge, 0..8),
        prop::collection::vec(job, 1..4),
        1usize..9,
        50u64..250,
    )
        .prop_map(|(sites, raw_flocks, raw_jobs, threads, horizon_s)| {
            let n = sites.len();
            let flock_edges = raw_flocks
                .into_iter()
                .map(|(a, b)| (a.index(n), b.index(n)))
                .collect();
            let jobs = raw_jobs
                .into_iter()
                .map(|(demands, raw_deps)| {
                    let t = demands.len();
                    let deps = raw_deps
                        .into_iter()
                        .map(|(a, b)| (a.index(t), b.index(t)))
                        .collect();
                    (demands, deps)
                })
                .collect();
            Scenario {
                sites,
                flock_edges,
                jobs,
                threads,
                horizon_s,
            }
        })
}

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct Outcome {
    now: SimTime,
    /// Per task id: `None` if monitoring never saw it.
    tasks: Vec<Option<TaskOutcome>>,
    /// Per site: the full cpu_load and queue_length series.
    series: Vec<(Vec<Sample>, Vec<Sample>)>,
}

fn materialise(scenario: &Scenario, driver: DriverMode) -> (Arc<ServiceStack>, Vec<TaskId>) {
    let mut builder = GridBuilder::new().driver(driver);
    for (i, (nodes, slots, load_quarters)) in scenario.sites.iter().enumerate() {
        let desc = SiteDescription::new(SiteId::new(i as u64 + 1), format!("s{i}"), *nodes, *slots);
        builder = if *load_quarters == 0 {
            builder.site(desc)
        } else {
            builder.site_with_load(desc, *load_quarters as f64 * 0.25)
        };
    }
    let grid = builder.build();
    for (a, b) in &scenario.flock_edges {
        if a != b {
            grid.enable_flocking(SiteId::new(*a as u64 + 1), SiteId::new(*b as u64 + 1));
        }
    }
    let stack = ServiceStack::over(grid);
    let mut all_tasks = Vec::new();
    for (j, (demands, deps)) in scenario.jobs.iter().enumerate() {
        let job_no = j as u64 + 1;
        let mut job = JobSpec::new(JobId::new(job_no), format!("job{job_no}"), UserId::new(1));
        let mut ids = Vec::new();
        for (k, demand) in demands.iter().enumerate() {
            let id = TaskId::new(job_no * 1000 + k as u64);
            job.add_task(
                TaskSpec::new(id, format!("t{job_no}-{k}"), "app")
                    .with_cpu_demand(SimDuration::from_secs(*demand)),
            );
            ids.push(id);
        }
        for (a, b) in deps {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi {
                job.add_dependency(ids[*lo], ids[*hi]);
            }
        }
        // Scheduling can legitimately fail (e.g. quota); both runs see
        // the identical spec, so an error is equivalence-preserving.
        if stack.submit_job(job).is_ok() {
            all_tasks.extend(ids);
        }
    }
    (stack, all_tasks)
}

fn run(scenario: &Scenario, driver: DriverMode) -> Outcome {
    let (stack, tasks) = materialise(scenario, driver);
    stack.run_until(SimTime::from_secs(scenario.horizon_s));
    let tasks = tasks
        .iter()
        .map(|t| {
            stack
                .jobmon
                .job_info(*t)
                .ok()
                .map(|i| (i.status, i.site, i.started_at, i.completed_at))
        })
        .collect();
    let horizon = SimTime::from_secs(scenario.horizon_s);
    let series = (1..=scenario.sites.len() as u64)
        .map(|s| {
            let site = SiteId::new(s);
            (
                stack.grid.monitor().range(
                    &MetricKey::site_wide(site, "cpu_load"),
                    SimTime::ZERO,
                    horizon,
                ),
                stack.grid.monitor().range(
                    &MetricKey::site_wide(site, "queue_length"),
                    SimTime::ZERO,
                    horizon,
                ),
            )
        })
        .collect();
    Outcome {
        now: stack.grid.now(),
        tasks,
        series,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sharded_driver_matches_sequential(scenario in arb_scenario()) {
        let sequential = run(&scenario, DriverMode::Sequential);
        let sharded = run(&scenario, DriverMode::sharded(scenario.threads));
        prop_assert_eq!(sequential, sharded);
    }
}

// ---- event-heap tie-breaking stress (DESIGN.md §15) ----
//
// Demands quantised to 5 s multiples (zero-length included) pile
// completions, staging releases and transfer landings onto the same
// instants across sites; mid-run kills, migrations and data releases
// invalidate live heap entries. Byte-identical drained schedules
// between the drivers, plus agreement between the cached next-event
// index and the brute-force site scan, prove the heaps' `(time, id)`
// tie order matches the retained naive oracle.

/// One tie-stress workload in plain data form.
#[derive(Clone, Debug)]
struct TieScenario {
    /// Free sites, 2 nodes × 2 slots each.
    sites: usize,
    /// Per task: (site index, demand in 5 s quanta, staged input?).
    tasks: Vec<(usize, u64, bool)>,
    /// Applied after the second stride: (task index, op) with
    /// op 0 = kill, 1 = migrate to the next site, 2 = release data.
    disrupt: Vec<(usize, u8)>,
    /// Worker count for the sharded run.
    threads: usize,
    /// Five-second lockstep strides before settling.
    strides: u64,
}

fn arb_tie() -> impl Strategy<Value = TieScenario> {
    let task = (any::<prop::sample::Index>(), 0u64..5, any::<bool>());
    let op = (any::<prop::sample::Index>(), 0u8..3);
    (
        2usize..13,
        prop::collection::vec(task, 4..24),
        prop::collection::vec(op, 0..6),
        1usize..5,
        3u64..8,
    )
        .prop_map(|(sites, raw_tasks, raw_ops, threads, strides)| {
            let n = raw_tasks.len();
            TieScenario {
                sites,
                tasks: raw_tasks
                    .into_iter()
                    .map(|(s, q, staged)| (s.index(sites), q, staged))
                    .collect(),
                disrupt: raw_ops
                    .into_iter()
                    .map(|(t, op)| (t.index(n), op))
                    .collect(),
                threads,
                strides,
            }
        })
}

fn run_tie(
    scenario: &TieScenario,
    driver: DriverMode,
) -> (Vec<(SiteId, gae::exec::ExecEvent)>, SimTime) {
    let mut builder = GridBuilder::new().driver(driver);
    for i in 0..scenario.sites {
        builder = builder.site(SiteDescription::new(
            SiteId::new(i as u64 + 1),
            format!("s{i}"),
            2,
            2,
        ));
    }
    let grid = builder.build();
    // Submit everything at t=0; staged tasks pull a 50 MB input from
    // the next site over, so their release instants contend on links.
    let mut handles = Vec::new();
    for (k, (site_idx, quanta, staged)) in scenario.tasks.iter().enumerate() {
        let site = SiteId::new(*site_idx as u64 + 1);
        let mut spec = TaskSpec::new(TaskId::new(k as u64 + 1), format!("t{k}"), "app")
            .with_cpu_demand(SimDuration::from_secs(quanta * 5));
        if *staged {
            let src = SiteId::new((*site_idx as u64 + 1) % scenario.sites as u64 + 1);
            spec = spec.with_inputs(vec![
                FileRef::new(format!("in{k}.root"), 50_000_000).with_replicas(vec![src])
            ]);
        }
        let condor = grid.submit(site, spec, None).expect("free site accepts");
        handles.push((site, condor));
    }
    let mut events = Vec::new();
    for stride in 1..=scenario.strides {
        grid.advance_to(SimTime::from_secs(stride * 5));
        if stride == 2 {
            // Invalidate live heap entries mid-flight, identically in
            // both runs; errors (already-terminal tasks) are part of
            // the shared schedule too.
            for (ti, op) in &scenario.disrupt {
                let (site, condor) = handles[*ti];
                match op {
                    0 => {
                        let _ = grid.exec(site).unwrap().lock().kill(condor);
                        grid.release_task_data(site, condor);
                    }
                    1 => {
                        let moved = grid.exec(site).unwrap().lock().remove_for_migration(condor);
                        if let Ok((spec, checkpoint)) = moved {
                            grid.release_task_data(site, condor);
                            let to = SiteId::new(site.raw() % scenario.sites as u64 + 1);
                            let _ = grid.submit(to, spec, checkpoint);
                        }
                    }
                    _ => grid.release_task_data(site, condor),
                }
            }
        }
        events.extend(grid.drain_events());
        assert_eq!(
            grid.next_event_time(),
            grid.next_event_time_uncached(),
            "cached index diverged from the naive site scan at stride {stride}"
        );
    }
    grid.advance_to(SimTime::from_secs(600));
    events.extend(grid.drain_events());
    assert_eq!(grid.next_event_time(), grid.next_event_time_uncached());
    (events, grid.now())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_tie_breaking_matches_across_drivers(scenario in arb_tie()) {
        let sequential = run_tie(&scenario, DriverMode::Sequential);
        let sharded = run_tie(&scenario, DriverMode::sharded(scenario.threads));
        prop_assert_eq!(sequential, sharded);
    }
}
