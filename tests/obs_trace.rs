//! End-to-end observability (DESIGN.md §10): one submitted job yields
//! one connected causal tree retrievable over RPC by CondorId, trace
//! trees replay byte-identically across driver modes, latency
//! histograms publish under the MonALISA `obs` entity, and the
//! `X-GAE-Trace` header carries contexts across the TCP transport.

use gae::core::{StatsRpc, TraceRpc};
use gae::obs::{ObsHub, SpanId, TraceContext, TraceId, WallObsClock};
use gae::prelude::*;
use gae::rpc::{InProcClient, Rpc, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::wire::Value;
use std::sync::Arc;

fn one_job_stack(driver: DriverMode) -> Arc<ServiceStack> {
    let grid = GridBuilder::new()
        .driver(driver)
        .site_with_load(SiteDescription::new(SiteId::new(1), "busy", 2, 1), 2.0)
        .site(SiteDescription::new(SiteId::new(2), "free", 2, 1))
        .build();
    let stack = ServiceStack::over(grid);
    let mut job = JobSpec::new(JobId::new(1), "traced", UserId::new(1));
    for i in 1..=3u64 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "reco")
                .with_cpu_demand(SimDuration::from_secs(40 * i)),
        );
    }
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(300));
    stack
}

// ---- the single-job causal tree, over RPC ----

#[test]
fn submitted_job_yields_one_connected_trace_tree_over_rpc() {
    let stack = one_job_stack(DriverMode::Sequential);
    let info = stack.jobmon.job_info(TaskId::new(1)).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    let condor = info.condor.raw();

    let host = ServiceHost::open();
    host.register(Arc::new(TraceRpc::new(stack.obs())));
    let mut client = InProcClient::with_codec(host);

    let tree = client
        .call("trace.get", vec![Value::from(condor)])
        .expect("trace retrievable by CondorId");
    let spans = match tree.member("spans").unwrap() {
        Value::Array(spans) => spans.clone(),
        other => panic!("spans should be an array, got {other:?}"),
    };
    assert!(spans.len() >= 4, "root + submit + run + collect: {spans:?}");

    // Connectedness: exactly one root, every parent resolves to a
    // recorded span of the same tree.
    let ids: Vec<i64> = spans
        .iter()
        .map(|s| s.member("span").unwrap().as_i64().unwrap())
        .collect();
    let roots = spans
        .iter()
        .filter(|s| s.member("parent").unwrap().is_nil())
        .count();
    assert_eq!(roots, 1, "one root span");
    for s in &spans {
        let parent = s.member("parent").unwrap();
        if !parent.is_nil() {
            assert!(
                ids.contains(&parent.as_i64().unwrap()),
                "dangling parent in {s:?}"
            );
        }
    }

    // The lifecycle steps all appear in the one tree.
    let names: Vec<String> = spans
        .iter()
        .map(|s| s.member("name").unwrap().as_str().unwrap().to_string())
        .collect();
    for expected in [
        "sched.place",
        "gate.admit",
        "steer.submit",
        "exec.run",
        "steer.collect",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(expected)),
            "missing {expected} in {names:?}"
        );
    }

    // The timeline reports every lifecycle instant in order.
    let tl = client
        .call("trace.timeline", vec![Value::from(condor)])
        .unwrap();
    let instant = |ev: &str| tl.member(&format!("{ev}_us")).unwrap().as_i64().unwrap();
    assert!(instant("submit") <= instant("start"));
    assert!(instant("start") < instant("complete"));

    // And the text dump renders both.
    let text = client
        .call("trace.render", vec![Value::from(condor)])
        .unwrap();
    let text = text.as_str().unwrap();
    assert!(text.contains("exec.run"), "{text}");
    assert!(text.contains("complete"), "{text}");
}

// ---- determinism across driver modes ----

#[test]
fn trace_trees_replay_byte_identically_across_driver_modes() {
    let render_all = |driver: DriverMode| -> Vec<String> {
        let stack = one_job_stack(driver);
        (1..=3u64)
            .map(|i| {
                let condor = stack.jobmon.job_info(TaskId::new(i)).unwrap().condor.raw();
                stack.obs().render_condor(condor).expect("traced")
            })
            .collect()
    };
    let sequential = render_all(DriverMode::Sequential);
    let sequential_again = render_all(DriverMode::Sequential);
    let sharded = render_all(DriverMode::Sharded { threads: 4 });
    assert_eq!(sequential, sequential_again, "same-mode replay diverged");
    assert_eq!(sequential, sharded, "cross-mode trace trees diverged");
}

// ---- histogram publication under the `obs` entity ----

#[test]
fn latency_histograms_publish_under_the_obs_entity() {
    let stack = one_job_stack(DriverMode::Sequential);

    // Drive some RPCs through a host wired to the stack's hub so
    // per-method histograms have samples.
    let host = ServiceHost::open();
    host.attach_obs(stack.obs());
    host.register(Arc::new(gae::core::jobmon::JobMonitoringRpc::new(
        stack.jobmon.clone(),
    )));
    let mut client = InProcClient::new(host);
    for _ in 0..5 {
        client
            .call("jobmon.job_status", vec![Value::from(1u64)])
            .unwrap();
    }

    // The next poll publishes the snapshots.
    stack.run_until(SimTime::from_secs(305));
    let monitor = stack.grid.monitor();
    let latest = |entity: &str, param: &str| -> Option<f64> {
        monitor
            .latest(&gae::monitor::MetricKey::new(SiteId::new(0), entity, param))
            .map(|s| s.value)
    };
    assert_eq!(
        latest("obs", "jobmon.job_status_count"),
        Some(5.0),
        "per-method count under the obs entity"
    );
    for q in ["p50_us", "p95_us", "p99_us"] {
        assert!(
            latest("obs", &format!("jobmon.job_status_{q}")).is_some(),
            "missing quantile {q}"
        );
    }
    // Gate dispositions from the steering breaker path publish too.
    assert!(
        latest("obs", "gate_admit_count").unwrap_or(0.0) >= 3.0,
        "three submissions passed the admission check"
    );

    // The same snapshot answers over the stats facade.
    let stats_host = ServiceHost::open();
    stats_host.register(Arc::new(StatsRpc::new(stack.obs())));
    let mut stats = InProcClient::with_codec(stats_host);
    let snap = stats
        .call("stats.histogram", vec![Value::from("jobmon.job_status")])
        .unwrap();
    assert_eq!(snap.member("count").unwrap().as_i64().unwrap(), 5);
    let methods = stats.call("stats.methods", vec![]).unwrap();
    match methods {
        Value::Array(names) => assert!(names.iter().any(|n| n.as_str().unwrap() == "gate:admit")),
        other => panic!("methods should be an array, got {other:?}"),
    }
}

// ---- trace context over the TCP transport ----

#[test]
fn trace_context_propagates_over_the_wire() {
    let hub = ObsHub::new(Arc::new(WallObsClock::new()));
    let host = ServiceHost::open();
    host.attach_obs(hub.clone());
    let server = TcpRpcServer::start(host, 2).unwrap();
    let mut client = TcpRpcClient::connect(server.addr());

    // A client-chosen context rides the X-GAE-Trace header; the
    // server's dispatch span lands in that tree.
    let ctx = TraceContext {
        trace: TraceId::new(0x77),
        span: SpanId::ROOT,
    };
    client.set_trace(Some(ctx));
    client.call("system.ping", vec![]).unwrap();
    let spans = hub.traces().spans(TraceId::new(0x77)).expect("joined");
    assert!(
        spans.iter().any(|s| s.name == "rpc.system.ping"),
        "{spans:?}"
    );

    // Without an attached context the door mints a fresh trace.
    let before = hub.traces().len();
    client.set_trace(None);
    client.call("system.ping", vec![]).unwrap();
    assert_eq!(hub.traces().len(), before + 1, "door-minted trace");
}
