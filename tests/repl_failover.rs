//! Replicated failover, property-tested (DESIGN.md §13).
//!
//! Each case runs the same randomly generated workload twice: an
//! unreplicated reference stack that records a digest of all
//! persisted state at every commit point, and a replicated leader —
//! the persisted stack with its WAL mirrored into two in-process
//! followers — that is killed after a random number of commits. A
//! deterministic election promotes a follower; ordinary single-node
//! recovery of the promoted follower's store must land *exactly* on
//! the reference digest at the recovered commit index (the failover
//! continuation is a prefix-consistent extension of the dead leader's
//! schedule, never a divergent one), and every re-armed task must be
//! back in the Submitted phase.

use gae::durable::fault::unique_temp_dir;
use gae::prelude::*;
use proptest::prelude::*;

#[path = "harness/mod.rs"]
mod harness;
use harness::{
    arb_scenario, build_grid, digest, driver_for, estimate_probe, reference_digests,
    reference_stack_at, submit_workload, Scenario,
};

/// Runs the replicated leader for `kill_after` commit points, kills
/// it, and returns the election result.
fn replicated_run(scenario: &Scenario, dir: &std::path::Path, kill_after: usize) -> Promotion {
    let config = PersistenceConfig::new(dir.join("leader"))
        .snapshot_every(SimDuration::from_secs(
            scenario.snapshot_steps * scenario.step_secs,
        ))
        .fsync(false);
    let grid = build_grid(scenario, driver_for(scenario), Some(&config));
    let stack = ServiceStack::over(grid);
    let cluster = ReplicatedLog::attached(
        &dir.join("repl"),
        ReplConfig {
            followers: 2,
            fsync: false,
        },
        |_| MirrorMachine::new(),
    )
    .expect("follower cluster");
    stack
        .attach_replication(cluster.clone())
        .expect("replication attach");
    submit_workload(scenario, &stack);
    for step in 1..=kill_after {
        stack.run_until(SimTime::from_secs(step as u64 * scenario.step_secs));
    }
    // Leader death: no orderly shutdown, then the election.
    drop(stack);
    cluster.fail_leader().expect("election")
}

proptest! {
    // 128 cases in CI (the replication job sets PROPTEST_CASES); the
    // `sharded` flag inside the scenario alternates drivers so both
    // recovery paths see ~half the corpus each.
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32)
    ))]

    #[test]
    fn failover_is_prefix_consistent_with_uncrashed_run(scenario in arb_scenario()) {
        let dir = unique_temp_dir("repl-failover");
        let digests = reference_digests(&scenario);
        // Kill the leader at a random commit point in [1, steps].
        let kill_after = 1 + scenario.victim as usize % scenario.steps;
        let promotion = replicated_run(&scenario, &dir, kill_after);

        // Ordinary single-node recovery against the promoted
        // follower's store — exactly what the scenario runner does.
        let config = PersistenceConfig::new(&promotion.dir).fsync(false);
        let (stack, report) = ServiceStack::recover_from_disk(
            build_grid(&scenario, driver_for(&scenario), None),
            SteeringPolicy::default(),
            SimDuration::from_secs(5),
            &config,
        )
        .unwrap_or_else(|e| panic!("promoted-follower recovery failed: {e}"));

        // Synchronous streaming keeps live followers in lockstep, so
        // the promoted node recovered the leader's full history.
        prop_assert_eq!(
            report.commit_index,
            promotion.commit_index,
            "store commit diverged from the follower's ack index"
        );
        let j = report.commit_index as usize;
        prop_assert!(
            j < digests.len(),
            "recovered commit index {} beyond {} reference commits",
            j,
            digests.len() - 1
        );
        prop_assert_eq!(
            digest(&stack),
            digests[j].clone(),
            "failover diverged at commit {} (killed after {} steps, {}) scenario={:?}",
            j,
            kill_after,
            promotion.node,
            scenario
        );
        // The promoted follower's history store is byte-identical to
        // the reference (checked via the segment digests in `digest`),
        // so the estimates it derives must be identical too.
        let reference = reference_stack_at(&scenario, j as u64);
        prop_assert_eq!(
            estimate_probe(&stack),
            estimate_probe(&reference),
            "promoted follower produced different estimates at commit {}",
            j
        );
        // Every resubmitted task must have been re-armed into the
        // Submitted phase of the recovered tracker, exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for t in &report.resubmitted {
            prop_assert!(seen.insert(*t), "{} re-armed twice", t);
            let job = stack.steering.export_jobs()
                .into_iter()
                .find(|jb| jb.tasks.contains_key(t))
                .expect("resubmitted task is tracked");
            prop_assert!(matches!(
                job.tasks[t].phase,
                gae::core::steering::TaskPhase::Submitted { .. }
            ));
        }
        // The continuation is live: drive the promoted stack onward
        // and every tracked task settles.
        stack.run_until(SimTime::from_secs(
            (scenario.steps as u64 + 20) * scenario.step_secs.max(30),
        ));
        for job in &stack.steering.export_jobs() {
            for (t, tracked) in &job.tasks {
                prop_assert!(
                    tracked.phase.is_settled(),
                    "{} did not settle after failover: {:?}",
                    t,
                    tracked.phase
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
