//! Edge cases of the §6 estimators: partitioned links, orphaned
//! replicas, EstimateDb lifetime, and probe-cache concurrency.

use gae::core::estimator::TransferEstimator;
use gae::prelude::*;
use gae::sim::{Link, NetworkModel};
use gae::types::GaeError;

fn sid(n: u64) -> SiteId {
    SiteId::new(n)
}

/// A partitioned link as an iperf run would report it: zero measured
/// bandwidth. `Link::new` rejects zero by design, so the test builds
/// the literal the model stores after such a measurement.
fn dead_link() -> Link {
    Link {
        bandwidth_bps: f64::MIN_POSITIVE,
        latency: SimDuration::ZERO,
    }
}

// ---- estimate_bytes on an unusable link ----

#[test]
fn zero_bandwidth_link_is_a_typed_error_not_a_panic() {
    let mut net = NetworkModel::wan_2005().with_probe_noise(0.0);
    net.set_link(
        sid(1),
        sid(2),
        Link {
            bandwidth_bps: 0.0,
            latency: SimDuration::ZERO,
        },
    );
    let est = TransferEstimator::new(net, 7);
    // Before the guard this divided by zero, produced `inf` seconds,
    // and panicked inside SimDuration::from_secs_f64.
    let err = est.estimate_bytes(sid(1), sid(2), 1 << 30).unwrap_err();
    assert!(matches!(err, GaeError::Estimator(_)), "{err:?}");
    // The healthy reverse direction still estimates.
    assert!(est.estimate_bytes(sid(2), sid(1), 1 << 20).is_ok());
}

#[test]
fn subnormal_bandwidth_overflow_is_a_typed_error() {
    let mut net = NetworkModel::wan_2005().with_probe_noise(0.0);
    net.set_link(sid(1), sid(2), dead_link());
    let est = TransferEstimator::new(net, 7);
    // bytes / f64::MIN_POSITIVE overflows to +inf: the estimator must
    // catch the non-finite estimate, not feed it to SimDuration.
    let err = est.estimate_bytes(sid(1), sid(2), 1 << 30).unwrap_err();
    assert!(matches!(err, GaeError::Estimator(_)), "{err:?}");
}

// ---- estimate_file across unreachable replicas ----

#[test]
fn unreachable_replicas_are_skipped_not_poisoning_the_minimum() {
    let mut net = NetworkModel::wan_2005().with_probe_noise(0.0);
    // Replica at site 1 is partitioned; replica at site 2 is healthy.
    net.set_link(
        sid(1),
        sid(3),
        Link {
            bandwidth_bps: 0.0,
            latency: SimDuration::ZERO,
        },
    );
    net.set_link(sid(2), sid(3), Link::new(100e6, SimDuration::ZERO));
    let est = TransferEstimator::new(net, 1);
    let f = FileRef::new("x", 100_000_000).with_replicas(vec![sid(1), sid(2)]);
    let t = est.estimate_file(&f, sid(3)).unwrap().as_secs_f64();
    assert!((t - 1.0).abs() < 1e-9, "staged from the live replica: {t}");
}

#[test]
fn all_replicas_unreachable_names_the_file() {
    let mut net = NetworkModel::wan_2005().with_probe_noise(0.0);
    for src in [1, 2] {
        net.set_link(
            sid(src),
            sid(3),
            Link {
                bandwidth_bps: 0.0,
                latency: SimDuration::ZERO,
            },
        );
    }
    let est = TransferEstimator::new(net, 1);
    let f = FileRef::new("lfn:/cms/dark.root", 1 << 20).with_replicas(vec![sid(1), sid(2)]);
    match est.estimate_file(&f, sid(3)) {
        Err(GaeError::Estimator(msg)) => {
            assert!(msg.contains("lfn:/cms/dark.root"), "{msg}");
        }
        other => panic!("expected Estimator error, got {other:?}"),
    }
}

// ---- EstimateDb lifetime across a full job run ----

#[test]
fn estimate_db_is_emptied_once_tasks_settle() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(sid(1), "a", 2, 1))
        .site(SiteDescription::new(sid(2), "b", 2, 1))
        .build();
    let stack = ServiceStack::over(grid);
    let mut job = JobSpec::new(JobId::new(1), "bounded", UserId::new(1));
    for i in 1..=4u64 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "x")
                .with_cpu_demand(SimDuration::from_secs(30 * i)),
        );
    }
    stack.submit_job(job).unwrap();
    assert!(
        stack.estimators.submission_estimate_count() > 0,
        "submissions recorded their estimates"
    );
    stack.run_until(SimTime::from_secs(600));
    for i in 1..=4u64 {
        assert_eq!(
            stack.jobmon.job_info(TaskId::new(i)).unwrap().status,
            TaskStatus::Completed
        );
    }
    // Every task settled, so every submission-time estimate must have
    // been evicted — the §6.2 database only consults live tasks, and
    // before the eviction fix this grew without bound.
    assert_eq!(
        stack.estimators.submission_estimate_count(),
        0,
        "EstimateDb retained entries for settled tasks"
    );
}

// ---- probe-cache concurrency ----

#[test]
fn concurrent_probes_agree_on_one_measurement() {
    // Noisy probes: a double-probe draws different rng noise, so any
    // check-then-insert race shows up as divergent cached bandwidths.
    let est = std::sync::Arc::new(TransferEstimator::new(NetworkModel::wan_2005(), 99));
    let mut measured: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let est = est.clone();
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..200 {
                        out.push(est.measured_bandwidth(sid(1), sid(2)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            measured.extend(h.join().unwrap());
        }
    });
    let first = measured[0];
    assert!(
        measured.iter().all(|bw| *bw == first),
        "probe cache raced: multiple distinct measurements for one link"
    );
}
