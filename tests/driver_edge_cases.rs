//! Regression tests for the `run_until` driver loop around its two
//! trickiest boundaries:
//!
//! 1. an execution event sitting at **exactly `now`** (a zero-length
//!    task, or freshly submitted work on an idle slot) must be
//!    consumed without moving time — and without starving the polling
//!    services or livelocking the loop;
//! 2. an **overdue `next_poll`** (the caller advanced the grid clock
//!    directly, past one or more due polls) must trigger a catch-up
//!    poll round, not silently skip it.
//!
//! Every case runs under both the sequential and the sharded driver.

use gae::prelude::*;

const DRIVERS: [DriverMode; 2] = [DriverMode::Sequential, DriverMode::Sharded { threads: 3 }];

fn one_site_stack(driver: DriverMode) -> std::sync::Arc<ServiceStack> {
    let grid = GridBuilder::new()
        .driver(driver)
        .site(SiteDescription::new(SiteId::new(1), "solo", 2, 1))
        .build();
    ServiceStack::over(grid)
}

fn zero_task(id: u64) -> TaskSpec {
    TaskSpec::new(TaskId::new(id), format!("z{id}"), "app")
        .with_cpu_demand(SimDuration::from_secs(0))
}

#[test]
fn zero_length_task_completes_without_livelock() {
    for driver in DRIVERS {
        let stack = one_site_stack(driver);
        let mut job = JobSpec::new(JobId::new(1), "instant", UserId::new(1));
        job.add_task(zero_task(1));
        stack.submit_job(job).unwrap();

        // If the `ev <= now` branch re-queued the event without
        // consuming it, this call would spin forever; the test harness
        // timeout is the livelock detector.
        stack.run_until(SimTime::from_secs(30));

        let info = stack.jobmon.job_info(TaskId::new(1)).unwrap();
        assert_eq!(info.status, TaskStatus::Completed, "driver {driver:?}");
        assert!(info.completed_at.is_some(), "driver {driver:?}");
        assert_eq!(stack.grid.now(), SimTime::from_secs(30));
    }
}

#[test]
fn zero_length_chain_still_gets_polled_forward() {
    // A → B → C, all zero-length. Successors are only submitted when a
    // steering poll observes the predecessor's completion, so if the
    // at-`now` event branch ever starved the poll rounds the chain
    // would stall at A.
    for driver in DRIVERS {
        let stack = one_site_stack(driver);
        let mut job = JobSpec::new(JobId::new(1), "chain", UserId::new(1));
        for id in 1..=3 {
            job.add_task(zero_task(id));
        }
        job.add_dependency(TaskId::new(1), TaskId::new(2));
        job.add_dependency(TaskId::new(2), TaskId::new(3));
        stack.submit_job(job).unwrap();

        stack.run_until(SimTime::from_secs(60));

        for id in 1..=3 {
            let info = stack.jobmon.job_info(TaskId::new(id)).unwrap();
            assert_eq!(
                info.status,
                TaskStatus::Completed,
                "task {id} under {driver:?}"
            );
        }
    }
}

#[test]
fn overdue_poll_catches_up_after_direct_advance() {
    for driver in DRIVERS {
        let stack = one_site_stack(driver);
        let mut job = JobSpec::new(JobId::new(1), "direct", UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(1), "short", "app")
                .with_cpu_demand(SimDuration::from_secs(4)),
        );
        job.add_task(
            TaskSpec::new(TaskId::new(2), "successor", "app")
                .with_cpu_demand(SimDuration::from_secs(4)),
        );
        job.add_dependency(TaskId::new(1), TaskId::new(2));
        stack.submit_job(job).unwrap();

        // Drive the grid clock directly, far past several 5 s poll
        // periods: task 1 completes inside the gap but no service has
        // looked at the grid yet.
        stack.grid.advance_to(SimTime::from_secs(23));
        assert!(
            stack.jobmon.job_info(TaskId::new(2)).is_err(),
            "successor must not reach any site before a poll ({driver:?})"
        );

        // run_until must first run the overdue poll round (submitting
        // task 2), then keep polling on-period so task 2 finishes too.
        stack.run_until(SimTime::from_secs(60));
        for id in 1..=2 {
            let info = stack.jobmon.job_info(TaskId::new(id)).unwrap();
            assert_eq!(
                info.status,
                TaskStatus::Completed,
                "task {id} under {driver:?}"
            );
        }
    }
}

#[test]
fn poll_phase_survives_direct_advance() {
    // The poll schedule is anchored at stack construction: every 5 s,
    // at 5, 10, 15, ... A caller-driven `Grid::advance_to` used to
    // reset the anchor (`now + period`), so the same workload polled
    // at different instants depending on who moved the clock. The
    // memo-counter samples published by each poll round pin the
    // actual poll instants.
    for driver in DRIVERS {
        let stack = one_site_stack(driver);
        // Jump the grid clock straight past the 5 s and 10 s polls.
        stack.grid.advance_to(SimTime::from_secs(12));
        stack.run_until(SimTime::from_secs(30));

        let key = gae::monitor::MetricKey::new(SiteId::new(0), "estimator", "memo_hits");
        let mut poll_instants: Vec<u64> = stack
            .grid
            .monitor()
            .range(&key, SimTime::ZERO, SimTime::from_secs(1000))
            .iter()
            .map(|s| s.at.as_secs_f64() as u64)
            .collect();
        poll_instants.dedup();
        // Catch-up fires at 12, then the schedule realigns to the
        // original 5 s grid: 15, 20, 25, and the horizon poll at 30.
        // The buggy reset produced [12, 17, 22, 27, 30] instead.
        assert_eq!(
            poll_instants,
            vec![12, 15, 20, 25, 30],
            "poll phase shifted after a direct advance ({driver:?})"
        );
    }
}

#[test]
fn completion_exactly_on_poll_boundary_is_not_skipped() {
    // Demand tuned so the completion event lands exactly on the 5 s
    // poll instant: the loop must both consume the event and run the
    // poll at that instant (order: event first, then poll).
    for driver in DRIVERS {
        let stack = one_site_stack(driver);
        let mut job = JobSpec::new(JobId::new(1), "boundary", UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(1), "five", "app").with_cpu_demand(SimDuration::from_secs(5)),
        );
        job.add_task(zero_task(2));
        job.add_dependency(TaskId::new(1), TaskId::new(2));
        stack.submit_job(job).unwrap();

        stack.run_until(SimTime::from_secs(40));

        for id in 1..=2 {
            let info = stack.jobmon.job_info(TaskId::new(id)).unwrap();
            assert_eq!(
                info.status,
                TaskStatus::Completed,
                "task {id} under {driver:?}"
            );
        }
    }
}

#[test]
fn run_until_current_time_returns_and_still_polls() {
    for driver in DRIVERS {
        let stack = one_site_stack(driver);
        let mut job = JobSpec::new(JobId::new(1), "noop", UserId::new(1));
        job.add_task(zero_task(1));
        stack.submit_job(job).unwrap();

        stack.grid.advance_to(SimTime::from_secs(10));
        // Horizon == now: the loop body never runs, but the trailing
        // poll must still fire so callers observe fresh state.
        stack.run_until(SimTime::from_secs(10));

        assert_eq!(stack.grid.now(), SimTime::from_secs(10));
        assert_eq!(
            stack.jobmon.job_info(TaskId::new(1)).unwrap().status,
            TaskStatus::Completed,
            "driver {driver:?}"
        );
    }
}
