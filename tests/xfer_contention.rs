//! The managed transfer plane, end to end (DESIGN.md §11).
//!
//! The paper's data grid moves "large amounts of data ... replicated
//! to several geographically distributed sites" (§2) over shared
//! wide-area links. These tests pin the data-plane contract: per-link
//! fair-share bandwidth (two equal transfers on one link each take
//! ~2x their solo time), bounded retry with exponential backoff
//! against injected link faults, LRU eviction under per-site storage
//! budgets with pin-while-referenced protection, the delete-race fix
//! (an in-flight transfer never materializes data from a deleted
//! source), staging that keeps tasks `Pending` until the *contended*
//! completion, Sequential ≡ Sharded schedule equivalence, and
//! crash-recovery that re-arms in-flight transfers exactly once.

use gae::core::replica::ReplicaCatalog;
use gae::core::Grid;
use gae::durable::fault::unique_temp_dir;
use gae::prelude::*;
use gae::sim::{Link, NetworkModel};
use proptest::prelude::*;
use std::sync::Arc;

fn s(n: u64) -> SiteId {
    SiteId::new(n)
}

/// Three sites joined by 1 MB/s zero-latency links.
fn lan(config: XferConfig) -> Arc<Grid> {
    let net = NetworkModel::new(Link::new(1e6, SimDuration::ZERO));
    GridBuilder::new()
        .site(SiteDescription::new(s(1), "a", 1, 1))
        .site(SiteDescription::new(s(2), "b", 1, 1))
        .site(SiteDescription::new(s(3), "c", 1, 1))
        .network(net)
        .xfer(config)
        .build()
}

fn mb(n: u64) -> u64 {
    n * 1_000_000
}

// ---- fair-share bandwidth ----

#[test]
fn two_equal_transfers_each_take_twice_solo() {
    let g = lan(XferConfig::with_defaults());
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/solo", mb(10)).with_replicas(vec![s(1)]));
    // Solo baseline: 10 MB at 1 MB/s = 10 s exactly.
    let solo = catalog.replicate("lfn:/solo", s(2)).unwrap();
    assert_eq!(solo, SimTime::from_secs(10));
    g.advance_to(SimTime::from_secs(10));
    assert_eq!(catalog.poll(), 1);

    // Two equal transfers sharing the same directed link: each gets
    // half the capacity, so each takes ~2x its solo time.
    let g = lan(XferConfig::with_defaults());
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/f1", mb(10)).with_replicas(vec![s(1)]));
    catalog.register(FileRef::new("lfn:/f2", mb(10)).with_replicas(vec![s(1)]));
    catalog.replicate("lfn:/f1", s(2)).unwrap();
    let second = catalog.replicate("lfn:/f2", s(2)).unwrap();
    assert_eq!(second, SimTime::from_secs(20), "halved bandwidth");
    for r in catalog.in_flight() {
        assert_eq!(r.arrives, SimTime::from_secs(20), "{}", r.lfn);
    }
    g.advance_to(SimTime::from_micros(19_999_999));
    assert_eq!(catalog.poll(), 0, "neither done before 20 s");
    g.advance_to(SimTime::from_secs(20));
    assert_eq!(catalog.poll(), 2, "both land together at 20 s");
}

#[test]
fn bandwidth_reintegrates_when_load_changes() {
    let g = lan(XferConfig::with_defaults());
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/f1", mb(10)).with_replicas(vec![s(1)]));
    catalog.register(FileRef::new("lfn:/f2", mb(10)).with_replicas(vec![s(1)]));
    // f1 runs solo for 4 s (4 MB drained), then f2 joins: f1's
    // remaining 6 MB drains at 0.5 MB/s -> lands at 4 + 12 = 16 s.
    // f2 drains 6 MB by then, finishes its last 4 MB solo -> 20 s.
    catalog.replicate("lfn:/f1", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(4));
    catalog.replicate("lfn:/f2", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(30));
    let hist = catalog.transfer_history();
    assert_eq!(hist.len(), 2);
    assert_eq!(hist[0].lfn, "lfn:/f1");
    assert_eq!(hist[0].arrives, SimTime::from_secs(16));
    assert_eq!(hist[1].lfn, "lfn:/f2");
    assert_eq!(hist[1].arrives, SimTime::from_secs(20));
}

// ---- retry and backoff against link faults ----

#[test]
fn dead_link_backs_off_then_retries_after_heal() {
    let g = lan(XferConfig::with_defaults());
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/r", mb(1)).with_replicas(vec![s(1)]));
    g.with_xfer(|x| x.fail_link(s(1), s(2)));
    // First attempt hits the dead link and enters a 5 s backoff.
    catalog.replicate("lfn:/r", s(2)).unwrap();
    assert_eq!(g.xfer_metrics().waiting, 1);
    assert_eq!(g.with_xfer(|x| x.counters().retried), 1);
    // Estimator sees the fault as a typed unreachable error.
    g.with_xfer(|x| assert!(x.link_blocked(s(1), s(2))));
    g.with_xfer(|x| x.heal_link(s(1), s(2)));
    // Backoff expires at 5 s, the retry drains 1 MB in 1 s.
    g.advance_to(SimTime::from_secs(6));
    assert_eq!(catalog.poll(), 1);
    let hist = catalog.transfer_history();
    assert_eq!(hist.len(), 1);
    assert_eq!(hist[0].attempts, 2, "one failed attempt, one retry");
    assert_eq!(hist[0].arrives, SimTime::from_secs(6));
    assert!(catalog.lookup("lfn:/r").unwrap().available_at(s(2)));
}

#[test]
fn retries_exhaust_into_typed_failure() {
    let config = XferConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_secs(1),
        },
        ..XferConfig::with_defaults()
    };
    let g = lan(config);
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/doomed", mb(1)).with_replicas(vec![s(1)]));
    g.with_xfer(|x| x.fail_link(s(1), s(2)));
    catalog.replicate("lfn:/doomed", s(2)).unwrap();
    // Backoffs at 1 s and 2 s, then attempt 3 finds the link still
    // dead and the transfer fails permanently.
    g.advance_to(SimTime::from_secs(10));
    let counters = g.with_xfer(|x| x.counters());
    assert_eq!(counters.failed, 1);
    assert_eq!(counters.retried, 2);
    assert_eq!(counters.completed, 0);
    assert!(catalog.in_flight().is_empty());
    assert!(!catalog.lookup("lfn:/doomed").unwrap().available_at(s(2)));
}

// ---- storage budgets, eviction, pinning ----

#[test]
fn lru_eviction_respects_pins_and_last_replicas() {
    let config = XferConfig::with_defaults().with_budget(s(2), mb(25));
    let g = lan(config);
    let catalog = ReplicaCatalog::new(g.clone());
    for lfn in ["lfn:/a", "lfn:/b", "lfn:/c", "lfn:/d"] {
        catalog.register(FileRef::new(lfn, mb(10)).with_replicas(vec![s(1)]));
    }
    // a then b land (20 MB used); c's landing must evict the coldest
    // unpinned replica, which is a.
    catalog.replicate("lfn:/a", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(10));
    catalog.replicate("lfn:/b", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(20));
    catalog.replicate("lfn:/c", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(30));
    assert!(!catalog.lookup("lfn:/a").unwrap().available_at(s(2)));
    assert!(
        catalog.lookup("lfn:/a").unwrap().available_at(s(1)),
        "origin survives"
    );
    assert!(catalog.lookup("lfn:/b").unwrap().available_at(s(2)));
    assert!(catalog.lookup("lfn:/c").unwrap().available_at(s(2)));
    assert_eq!(g.with_xfer(|x| x.counters().evicted), 1);

    // Pin b (a staging chain references it): d's landing must skip
    // the pinned b and evict c instead.
    let (token, _) = g
        .with_xfer(|x| x.plan_stage(s(2), &[FileRef::new("lfn:/b", 0)]))
        .expect("local input still plans a pin");
    catalog.replicate("lfn:/d", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(40));
    assert!(
        catalog.lookup("lfn:/b").unwrap().available_at(s(2)),
        "pinned"
    );
    assert!(
        !catalog.lookup("lfn:/c").unwrap().available_at(s(2)),
        "evicted"
    );
    assert!(catalog.lookup("lfn:/d").unwrap().available_at(s(2)));
    assert_eq!(g.with_xfer(|x| x.counters().evicted), 2);
    g.with_xfer(|x| x.cancel_chain(token));
}

#[test]
fn over_budget_landing_fails_typed() {
    let config = XferConfig::with_defaults().with_budget(s(2), mb(5));
    let g = lan(config);
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/big", mb(10)).with_replicas(vec![s(1)]));
    catalog.replicate("lfn:/big", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(20));
    assert_eq!(g.with_xfer(|x| x.counters().failed), 1);
    assert!(!catalog.lookup("lfn:/big").unwrap().available_at(s(2)));
}

// ---- the delete race ----

#[test]
fn deleting_the_source_mid_transfer_repoints_to_another_replica() {
    let g = lan(XferConfig::with_defaults());
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/twin", mb(10)).with_replicas(vec![s(1), s(3)]));
    catalog.replicate("lfn:/twin", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(3));
    // The source it was draining from disappears: the transfer must
    // restart from the surviving replica, not keep "copying" from the
    // deleted one.
    catalog.delete_replica("lfn:/twin", s(1)).unwrap();
    let inf = catalog.in_flight();
    assert_eq!(inf.len(), 1);
    assert_eq!(inf[0].from, s(3), "re-pointed at the survivor");
    assert_eq!(
        inf[0].arrives,
        SimTime::from_secs(13),
        "restarted from zero bytes"
    );
    g.advance_to(SimTime::from_secs(13));
    assert_eq!(catalog.poll(), 1);
    let f = catalog.lookup("lfn:/twin").unwrap();
    assert!(f.available_at(s(2)));
    assert!(!f.available_at(s(1)));
}

#[test]
fn deleting_the_only_source_mid_transfer_fails_typed() {
    let g = lan(XferConfig::with_defaults());
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/only", mb(10)).with_replicas(vec![s(1)]));
    catalog.replicate("lfn:/only", s(2)).unwrap();
    g.advance_to(SimTime::from_secs(3));
    catalog.delete_replica("lfn:/only", s(1)).unwrap();
    assert!(catalog.in_flight().is_empty(), "transfer cannot continue");
    assert_eq!(g.with_xfer(|x| x.counters().failed), 1);
    g.advance_to(SimTime::from_secs(30));
    let f = catalog.lookup("lfn:/only").unwrap();
    assert!(!f.available_at(s(2)), "never silently materialized");
    assert!(f.replicas.is_empty());
}

// ---- staging under contention ----

#[test]
fn contended_staging_keeps_the_task_pending_until_actual_completion() {
    // 10 MB input at site 1, task forced to site 2: solo staging is
    // 10 s. A competing 10 MB catalog replication on the same link
    // halves the bandwidth, so staging really completes at ~20 s; the
    // task must stay Pending until then even though the original
    // projection said 10 s.
    let g = lan(XferConfig::with_defaults());
    let stack = ServiceStack::over(g);
    let catalog = ReplicaCatalog::new(stack.grid.clone());
    catalog.register(FileRef::new("lfn:/rival", mb(10)).with_replicas(vec![s(1)]));

    let mut job = JobSpec::new(JobId::new(1), "staged", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "reco")
            .with_cpu_demand(SimDuration::from_secs(5))
            .with_inputs(vec![
                FileRef::new("lfn:/input", mb(10)).with_replicas(vec![s(1)])
            ]),
    );
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![s(2)]))
        .unwrap();
    catalog.replicate("lfn:/rival", s(2)).unwrap();

    stack.run_until(SimTime::from_secs(15));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(
        info.status,
        TaskStatus::Pending,
        "still staging at 15 s: contention stretched the 10 s projection"
    );
    stack.run_until(SimTime::from_secs(40));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    let started = info.started_at.unwrap().as_secs_f64();
    assert!(
        (started - 20.0).abs() < 1.0,
        "dispatch tracks the contended staging completion: {started}"
    );
}

// ---- Sequential ≡ Sharded schedule equivalence ----

/// One generated data-grid workload in plain data form.
#[derive(Clone, Debug)]
struct Scenario {
    /// Number of sites (ids 1..=n).
    sites: usize,
    /// Per file: (size in MB, home site index).
    files: Vec<(u64, usize)>,
    /// Replication requests as (file index, destination site index,
    /// step at which the request is issued).
    requests: Vec<(usize, usize, usize)>,
    /// Per task: (cpu seconds, input file indexes).
    tasks: Vec<(u64, Vec<usize>)>,
    /// run_until steps to drive.
    steps: usize,
    /// Seconds of virtual time per step.
    step_secs: u64,
    /// Worker count for the sharded run.
    threads: usize,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let file = (1u64..30, any::<prop::sample::Index>());
    let request = (
        any::<prop::sample::Index>(),
        any::<prop::sample::Index>(),
        any::<prop::sample::Index>(),
    );
    let task = (
        0u64..60,
        prop::collection::vec(any::<prop::sample::Index>(), 0..3),
    );
    (
        (
            2usize..6,
            prop::collection::vec(file, 1..6),
            prop::collection::vec(request, 0..8),
            prop::collection::vec(task, 1..5),
        ),
        (1usize..6, 5u64..40, 2usize..5),
    )
        .prop_map(
            |((sites, raw_files, raw_requests, raw_tasks), (steps, step_secs, threads))| {
                let nf = raw_files.len();
                let files = raw_files
                    .into_iter()
                    .map(|(mb, home)| (mb, home.index(sites)))
                    .collect();
                let requests = raw_requests
                    .into_iter()
                    .map(|(f, to, at)| (f.index(nf), to.index(sites), at.index(steps)))
                    .collect();
                let tasks = raw_tasks
                    .into_iter()
                    .map(|(cpu, inputs)| (cpu, inputs.into_iter().map(|i| i.index(nf)).collect()))
                    .collect();
                Scenario {
                    sites,
                    files,
                    requests,
                    tasks,
                    steps,
                    step_secs,
                    threads,
                }
            },
        )
}

/// Everything observable about the transfer plane after one run.
#[derive(Debug, PartialEq)]
struct XferOutcome {
    counters: gae::xfer::XferCounters,
    history: Vec<(String, SiteId, SiteId, SimTime, SimTime, u32)>,
    in_flight: Vec<(String, SiteId, SiteId, SimTime)>,
    replicas: Vec<(String, Vec<SiteId>)>,
    tasks: Vec<Option<(TaskStatus, SiteId, Option<SimTime>)>>,
}

fn run(scenario: &Scenario, driver: DriverMode) -> XferOutcome {
    let net = NetworkModel::new(Link::new(1e6, SimDuration::ZERO));
    let mut builder = GridBuilder::new().driver(driver).network(net);
    for i in 1..=scenario.sites as u64 {
        builder = builder.site(SiteDescription::new(s(i), format!("s{i}"), 2, 1));
    }
    let stack = ServiceStack::over(builder.build());
    let catalog = ReplicaCatalog::new(stack.grid.clone());
    let lfns: Vec<String> = scenario
        .files
        .iter()
        .enumerate()
        .map(|(i, (size, home))| {
            let lfn = format!("lfn:/f{i}");
            catalog
                .register(FileRef::new(&lfn, mb(*size)).with_replicas(vec![s(*home as u64 + 1)]));
            lfn
        })
        .collect();

    let mut job = JobSpec::new(JobId::new(1), "campaign", UserId::new(1));
    let mut task_ids = Vec::new();
    for (k, (cpu, inputs)) in scenario.tasks.iter().enumerate() {
        let id = TaskId::new(k as u64 + 1);
        // Inputs are resolved through the catalog (fills sizes and
        // replica locations) before submission, as gae-ctl does.
        let spec = catalog.resolve_inputs(
            TaskSpec::new(id, format!("t{k}"), "app")
                .with_cpu_demand(SimDuration::from_secs(*cpu))
                .with_inputs(inputs.iter().map(|i| FileRef::new(&lfns[*i], 0)).collect()),
        );
        job.add_task(spec);
        task_ids.push(id);
    }
    // Scheduling can legitimately fail, identically in both modes.
    let _ = stack.submit_job(job);

    for step in 0..scenario.steps {
        for (f, to, at) in &scenario.requests {
            if *at == step {
                let _ = catalog.replicate(&lfns[*f], s(*to as u64 + 1));
            }
        }
        stack.run_until(SimTime::from_secs((step as u64 + 1) * scenario.step_secs));
    }

    XferOutcome {
        counters: stack.grid.with_xfer(|x| x.counters()),
        history: catalog
            .transfer_history()
            .into_iter()
            .map(|r| (r.lfn, r.from, r.to, r.started, r.arrives, r.attempts))
            .collect(),
        in_flight: catalog
            .in_flight()
            .into_iter()
            .map(|r| (r.lfn, r.from, r.to, r.arrives))
            .collect(),
        replicas: lfns
            .iter()
            .map(|l| {
                let mut reps = catalog.lookup(l).map(|f| f.replicas).unwrap_or_default();
                reps.sort();
                (l.clone(), reps)
            })
            .collect(),
        tasks: task_ids
            .iter()
            .map(|t| {
                stack
                    .jobmon
                    .job_info(*t)
                    .ok()
                    .map(|i| (i.status, i.site, i.started_at))
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transfer_schedule_is_driver_mode_invariant(scenario in arb_scenario()) {
        let sequential = run(&scenario, DriverMode::Sequential);
        let sharded = run(&scenario, DriverMode::sharded(scenario.threads));
        prop_assert_eq!(sequential, sharded);
    }
}

// ---- crash recovery ----

#[test]
fn recovery_rearms_in_flight_transfers_exactly_once() {
    let dir = unique_temp_dir("xfer-crash");
    let config = PersistenceConfig::new(&dir)
        .snapshot_every(SimDuration::from_secs(1_000))
        .fsync(false);
    let builder = || {
        GridBuilder::new()
            .site(SiteDescription::new(s(1), "a", 1, 1))
            .site(SiteDescription::new(s(2), "b", 1, 1))
            .network(NetworkModel::new(Link::new(1e6, SimDuration::ZERO)))
    };
    {
        let stack = ServiceStack::over(builder().persist(config.clone()).build());
        let catalog = ReplicaCatalog::new(stack.grid.clone());
        // One transfer lands before the crash, one is mid-flight.
        catalog.register(FileRef::new("lfn:/done", mb(5)).with_replicas(vec![s(1)]));
        catalog.register(FileRef::new("lfn:/inflight", mb(50)).with_replicas(vec![s(1)]));
        catalog.replicate("lfn:/done", s(2)).unwrap();
        stack.run_until(SimTime::from_secs(8));
        catalog.replicate("lfn:/inflight", s(2)).unwrap();
        stack.run_until(SimTime::from_secs(18));
        assert_eq!(catalog.in_flight().len(), 1, "50 MB still draining");
        // Process death: dropped with no orderly shutdown.
    }

    let (stack, _report) = ServiceStack::recover_from_disk(
        builder().build(),
        SteeringPolicy::default(),
        SimDuration::from_secs(5),
        &config,
    )
    .expect("clean store recovers");
    let catalog = ReplicaCatalog::new(stack.grid.clone());

    // The landed transfer is not re-armed: its replica is back and no
    // new transfer exists for it. The in-flight one is re-armed
    // exactly once, restarting from zero bytes.
    assert!(catalog.lookup("lfn:/done").unwrap().available_at(s(2)));
    let inf = catalog.in_flight();
    assert_eq!(inf.len(), 1, "exactly one re-armed transfer");
    assert_eq!(inf[0].lfn, "lfn:/inflight");
    let counters = stack.grid.with_xfer(|x| x.counters());
    assert_eq!(counters.completed, 1, "pre-crash landing survived, once");

    // Drive to completion: the re-armed transfer lands exactly once.
    stack.run_until(SimTime::from_secs(120));
    assert!(catalog.lookup("lfn:/inflight").unwrap().available_at(s(2)));
    let counters = stack.grid.with_xfer(|x| x.counters());
    assert_eq!(counters.completed, 2, "one landing per transfer, ever");
    assert!(catalog.in_flight().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_restages_a_mid_staging_task_through_resubmission() {
    let dir = unique_temp_dir("xfer-crash-staging");
    let config = PersistenceConfig::new(&dir)
        .snapshot_every(SimDuration::from_secs(1_000))
        .fsync(false);
    let builder = || {
        GridBuilder::new()
            .site(SiteDescription::new(s(1), "a", 1, 1))
            .site(SiteDescription::new(s(2), "b", 1, 1))
            .network(NetworkModel::new(Link::new(1e6, SimDuration::ZERO)))
    };
    let task = TaskId::new(1);
    {
        let stack = ServiceStack::over(builder().persist(config.clone()).build());
        let mut job = JobSpec::new(JobId::new(1), "staged", UserId::new(1));
        job.add_task(
            TaskSpec::new(task, "t", "reco")
                .with_cpu_demand(SimDuration::from_secs(5))
                .with_inputs(vec![
                    FileRef::new("lfn:/in", mb(20)).with_replicas(vec![s(1)])
                ]),
        );
        stack
            .submit_plan(&AbstractPlan::new(job).restricted_to(vec![s(2)]))
            .unwrap();
        // Crash at 8 s: staging (20 s solo) is mid-flight.
        stack.run_until(SimTime::from_secs(8));
    }

    let (stack, report) = ServiceStack::recover_from_disk(
        builder().build(),
        SteeringPolicy::default(),
        SimDuration::from_secs(5),
        &config,
    )
    .expect("clean store recovers");
    assert!(!report.resubmitted.is_empty(), "mid-staging task re-armed");
    // The resubmission replans the chain; staging restarts from zero
    // and the task settles exactly once.
    stack.run_until(SimTime::from_secs(120));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    let catalog = ReplicaCatalog::new(stack.grid.clone());
    assert!(catalog.lookup("lfn:/in").unwrap().available_at(s(2)));
    assert_eq!(
        stack.grid.with_xfer(|x| x.counters().completed),
        1,
        "the staged input landed exactly once"
    );
    std::fs::remove_dir_all(&dir).ok();
}
