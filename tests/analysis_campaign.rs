//! A campaign-scale system test: a day of physics analysis across
//! three sites with diurnal load, a mid-day site failure, flocking,
//! data staging and autonomous steering — asserting the aggregate
//! properties a production deployment must keep.

use gae::core::steering::SteeringPolicy;
use gae::prelude::*;
use gae::sim::LoadTrace;
use gae::types::CondorId;
use std::collections::HashSet;

const JOBS: u64 = 30;
const TASK_SECONDS: u64 = 1_800;

#[test]
fn a_day_of_analysis_survives_everything() {
    // Three sites: a diurnally-loaded university cluster, a steady
    // Tier-2, and a small opportunistic pool that will crash mid-day.
    let uni = gae::exec::SiteConfig::uniform_load(
        SiteDescription::new(SiteId::new(1), "uni", 4, 1),
        LoadTrace::diurnal(
            SimDuration::from_secs(24 * 3600),
            SimDuration::from_secs(9 * 3600),
            SimDuration::from_secs(18 * 3600),
            3.0,
            0.2,
            1,
        ),
    );
    let grid = GridBuilder::new()
        .site_with_config(uni)
        .site(SiteDescription::new(SiteId::new(2), "tier2", 6, 2).with_charge(2.0, 0.2))
        .site(SiteDescription::new(SiteId::new(3), "opportunistic", 2, 1).with_charge(0.2, 0.0))
        .monitor(gae::monitor::MonAlisaRepository::new(16_384, 65_536))
        .build();
    grid.enable_flocking(SiteId::new(1), SiteId::new(2));
    let policy = SteeringPolicy {
        min_observation: SimDuration::from_secs(300),
        ..SteeringPolicy::default()
    };
    let stack = ServiceStack::with_policy(grid.clone(), policy, SimDuration::from_secs(60));
    let owner = UserId::new(1);
    stack.quota.grant(owner, 1_000.0);

    // 30 one-task jobs with a shared input dataset replicated at the
    // Tier-2, submitted through the morning.
    let dataset =
        FileRef::new("lfn:/cms/dataset.root", 50_000_000).with_replicas(vec![SiteId::new(2)]);
    let mut submitted_tasks = Vec::new();
    for i in 1..=JOBS {
        let mut job = JobSpec::new(JobId::new(i), format!("analysis-{i}"), owner);
        let t = job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "reco")
                .with_cpu_demand(SimDuration::from_secs(TASK_SECONDS))
                .with_inputs(vec![dataset.clone()]),
        );
        submitted_tasks.push(t);
        stack.submit_job(job).expect("schedulable");
        stack.run_until(SimTime::from_secs(i * 600)); // one every 10 min
    }

    // Noon: the opportunistic pool dies with whatever it was running.
    grid.exec(SiteId::new(3)).unwrap().lock().fail_site();
    stack.run_until(SimTime::from_secs(13 * 3600));
    // Afternoon: it comes back.
    grid.exec(SiteId::new(3)).unwrap().lock().recover_site();

    // Run out the day and a bit of the night.
    stack.run_until(SimTime::from_secs(30 * 3600));

    // 1. Every job completed despite the failure.
    for i in 1..=JOBS {
        assert_eq!(
            stack.jobmon.job_status(JobId::new(i)),
            JobStatus::Completed,
            "job {i} did not complete"
        );
    }

    // 2. No task was lost or duplicated: each task id maps to exactly
    //    one live-or-better record chain, and its final info is
    //    Completed with full progress.
    let mut seen = HashSet::new();
    for &t in &submitted_tasks {
        let info = stack.jobmon.job_info(t).expect("tracked");
        assert_eq!(info.status, TaskStatus::Completed);
        assert!((info.progress - 1.0).abs() < 1e-9);
        assert!(seen.insert(t), "duplicate task {t}");
    }

    // 3. Conservation of work: every completed task accrued exactly
    //    its demand (checkpoint-free restarts may redo work, but the
    //    *final incarnation* reports the full demand).
    for &t in &submitted_tasks {
        let info = stack.jobmon.job_info(t).unwrap();
        assert_eq!(
            info.cpu_time,
            SimDuration::from_secs(TASK_SECONDS),
            "task {t} accrual mismatch"
        );
    }

    // 4. Accounting: the owner was charged for every completion, at
    //    least the work of 30 tasks at the cheapest conceivable rate.
    let charged = stack.quota.total_charged(owner);
    assert!(charged > 0.0);
    let ledger = stack.quota.ledger();
    assert_eq!(ledger.len() as u64, JOBS, "one charge per completed task");

    // 5. The monitoring repository saw every lifecycle: at least one
    //    completion event per job.
    for i in 1..=JOBS {
        let events = grid.monitor().job_history(JobId::new(i));
        assert!(
            events.iter().any(|e| e.status == TaskStatus::Completed),
            "job {i} has no completion event in MonALISA"
        );
    }

    // 6. The failure left traces: tasks that were on site 3 at noon
    //    were recovered (moved) and the steering log shows it.
    let notes = stack.steering.drain_notifications();
    let failures = notes
        .iter()
        .filter(|n| matches!(n, Notification::TaskFailed { .. }))
        .count();
    let completions = notes
        .iter()
        .filter(|n| matches!(n, Notification::JobCompleted { .. }))
        .count();
    assert_eq!(completions as u64, JOBS);
    // The opportunistic pool ran something before dying (cheap rates
    // attract no fast-preference jobs, so failures may be zero — but
    // if anything failed, moves must match).
    let recovery_moves = stack
        .steering
        .move_log()
        .iter()
        .filter(|m| m.from == SiteId::new(3))
        .count();
    assert!(
        failures == 0 || recovery_moves > 0,
        "{failures} failures but no recovery moves"
    );

    // 7. No execution service is left holding live work.
    for site in grid.site_ids() {
        let exec = grid.exec(site).unwrap();
        let guard = exec.lock();
        assert_eq!(guard.running_count(), 0, "{site} still running tasks");
        assert_eq!(guard.queue_length(), 0, "{site} still queueing tasks");
    }

    // 8. Condor ids never collide within a site.
    for site in grid.site_ids() {
        let exec = grid.exec(site).unwrap();
        let guard = exec.lock();
        let ids: Vec<CondorId> = guard.records().map(|r| r.condor).collect();
        let unique: HashSet<_> = ids.iter().collect();
        assert_eq!(ids.len(), unique.len(), "condor id collision at {site}");
    }
}
