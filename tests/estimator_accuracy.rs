//! Accuracy properties of the three estimators (§6), measured against
//! the simulator's ground truth.

use gae::core::estimator::{EstimationMethod, HistoryStore, RuntimeEstimator};
use gae::prelude::*;
use gae::trace::{TaskMeta, WorkloadModel};
use proptest::prelude::*;
use std::sync::Arc;

// ---- runtime estimator (Figure 5 regime) ----

fn mean_error(seed: u64, method: EstimationMethod) -> f64 {
    let model = WorkloadModel::default();
    let (history, probes) = model.figure5_split(seed);
    let store = HistoryStore::new(1_000);
    store.load_trace(&history);
    let est = RuntimeEstimator::new(store).with_method(method);
    let mut errs = Vec::new();
    for p in probes.iter().filter(|p| p.success) {
        let actual = p.runtime().as_secs_f64();
        if let Ok(e) = est.estimate(&TaskMeta::from_record(p)) {
            errs.push(((actual - e.runtime.as_secs_f64()) / actual).abs() * 100.0);
        }
    }
    errs.iter().sum::<f64>() / errs.len() as f64
}

#[test]
fn figure5_regime_holds_across_seeds() {
    let errors: Vec<f64> = (1..=12)
        .map(|s| mean_error(s, EstimationMethod::Hybrid))
        .collect();
    let mut sorted = errors.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    assert!(
        (8.0..20.0).contains(&median),
        "median error {median:.2}% outside the paper's 13.53% regime; all: {errors:?}"
    );
}

#[test]
fn history_depth_improves_or_holds_accuracy() {
    // With a tiny history the estimator falls back to coarse
    // templates; a full history must not be worse.
    let model = WorkloadModel::default();
    let (history, probes) = model.figure5_split(3);
    let err_with = |n: usize| {
        let store = HistoryStore::new(1_000);
        store.load_trace(&history[history.len() - n..]);
        let est = RuntimeEstimator::new(store);
        let mut errs = Vec::new();
        for p in probes.iter().filter(|p| p.success) {
            let actual = p.runtime().as_secs_f64();
            if let Ok(e) = est.estimate(&TaskMeta::from_record(p)) {
                errs.push(((actual - e.runtime.as_secs_f64()) / actual).abs());
            }
        }
        errs.iter().sum::<f64>() / errs.len().max(1) as f64
    };
    let shallow = err_with(10);
    let deep = err_with(100);
    assert!(
        deep <= shallow * 1.2,
        "deep history {deep:.3} should not be much worse than shallow {shallow:.3}"
    );
}

// ---- queue-time estimator vs actual waits ----

#[test]
fn queue_estimate_matches_actual_wait_with_good_runtime_estimates() {
    // One single-slot site; three 100 s high-priority tasks ahead of
    // a probe. With exact submission-time estimates the §6.2 estimate
    // equals the actual wait.
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "s", 1, 1))
        .build();
    let stack = ServiceStack::over(grid.clone());
    let mut job = JobSpec::new(JobId::new(1), "queued", UserId::new(1));
    for i in 1..=3 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "x")
                .with_cpu_demand(SimDuration::from_secs(100))
                .with_priority(Priority::new(5)),
        );
    }
    let probe = job.add_task(
        TaskSpec::new(TaskId::new(4), "probe", "x").with_cpu_demand(SimDuration::from_secs(10)),
    );
    stack.submit_job(job).unwrap();

    // Overwrite the submission-time estimates with exact values (the
    // fallback used requested hours).
    let exec = grid.exec(SiteId::new(1)).unwrap();
    let condors: Vec<_> = {
        let guard = exec.lock();
        (1..=4)
            .map(|i| guard.condor_of(TaskId::new(i)).unwrap())
            .collect()
    };
    for (i, condor) in condors.iter().enumerate() {
        let demand = if i < 3 { 100 } else { 10 };
        stack
            .estimators
            .record_submission(SiteId::new(1), *condor, SimDuration::from_secs(demand));
    }

    let estimate = stack
        .estimators
        .estimate_queue_time(SiteId::new(1), condors[3])
        .unwrap();
    assert_eq!(estimate, SimDuration::from_secs(300), "3 × 100 s ahead");

    // Advance 150 s: one task done, one half-done. Estimate: 50 + 100.
    stack.run_until(SimTime::from_secs(150));
    let estimate = stack
        .estimators
        .estimate_queue_time(SiteId::new(1), condors[3])
        .unwrap();
    assert_eq!(estimate, SimDuration::from_secs(150));

    // Ground truth: the probe starts at exactly t = 300.
    stack.run_until(SimTime::from_secs(320));
    let info = stack.jobmon.job_info(probe).unwrap();
    assert_eq!(info.started_at, Some(SimTime::from_secs(300)));
}

// ---- transfer-time estimator vs network ground truth ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn transfer_estimates_within_probe_noise(
        bytes in 1_000_000u64..2_000_000_000,
        seed in 0u64..1_000,
    ) {
        use gae::core::estimator::TransferEstimator;
        use gae::sim::NetworkModel;
        let est = TransferEstimator::new(NetworkModel::wan_2005(), seed);
        let from = SiteId::new(1);
        let to = SiteId::new(2);
        let predicted = est.estimate_bytes(from, to, bytes).unwrap().as_secs_f64();
        let actual = est.true_transfer_time(from, to, bytes).as_secs_f64();
        let rel = (predicted - actual).abs() / actual;
        // ±5 % probe noise plus the ignored 30 ms latency term.
        prop_assert!(rel < 0.07, "relative error {rel} for {bytes} bytes");
    }
}

// ---- the learning loop ----

#[test]
fn completions_feed_the_decentralised_histories() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "a", 2, 1))
        .site(SiteDescription::new(SiteId::new(2), "b", 2, 1))
        .build();
    let stack = ServiceStack::over(grid);
    // Run the same executable several times at site 1.
    for i in 1..=4u64 {
        let mut job = JobSpec::new(JobId::new(i), format!("j{i}"), UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(i), "t", "reco").with_cpu_demand(SimDuration::from_secs(200)),
        );
        stack
            .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
            .unwrap();
        stack.run_until(SimTime::from_secs(250 * i));
    }
    // Site 1's history now predicts ~200 s for this user+executable.
    let spec = {
        let mut job = JobSpec::new(JobId::new(99), "probe", UserId::new(1));
        let t = job.add_task(TaskSpec::new(TaskId::new(99), "t", "reco"));
        job.task(t).unwrap().clone()
    };
    let est = stack
        .estimators
        .estimate_runtime(SiteId::new(1), &spec)
        .unwrap();
    assert!(
        (est.runtime.as_secs_f64() - 200.0).abs() < 1.0,
        "learned estimate {}",
        est.runtime
    );
    assert!(est.samples >= 4);
    // Site 2 never saw the executable: decentralised histories mean
    // it still cannot estimate.
    assert!(stack
        .estimators
        .estimate_runtime(SiteId::new(2), &spec)
        .is_err());
}

#[test]
fn scheduler_uses_learned_estimates_for_placement() {
    // Site 1 is fast (speed 2), site 2 is reference speed; after the
    // system learns runtimes, a fast-preference job must go to site 1
    // even though both are free.
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "fast", 2, 1).with_speed(2.0))
        .site(SiteDescription::new(SiteId::new(2), "slow", 2, 1))
        .build();
    let stack = ServiceStack::over(grid);
    // Seed both sites' histories identically from a trace.
    let records = WorkloadModel::default().generate(50, 9);
    stack
        .estimators
        .seed_history(SiteId::new(1), &records)
        .unwrap();
    stack
        .estimators
        .seed_history(SiteId::new(2), &records)
        .unwrap();

    let rec = records.iter().find(|r| r.success).unwrap();
    let mut job = JobSpec::new(JobId::new(1), "placed", UserId::new(1));
    let task_id = job.add_task({
        let mut t = TaskSpec::new(TaskId::new(1), "t", rec.account.clone())
            .with_queue(rec.queue.clone())
            .with_nodes(rec.nodes)
            .with_cpu_demand(SimDuration::from_secs(100));
        t.partition = rec.partition.clone();
        t
    });
    let plan = stack.submit_job(job).unwrap();
    assert_eq!(
        plan.site_of(task_id),
        Some(SiteId::new(1)),
        "speed 2 wins under fast"
    );
    let _ = Arc::strong_count(&stack);
}
