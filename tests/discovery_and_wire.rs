//! Clarens-layer behaviours across crates: P2P lookup federation,
//! access-control over the live transport, and wire-level edge cases
//! seen through the public client API.

use gae::prelude::*;
use gae::rpc::discovery::Endpoint;
use gae::rpc::{
    AccessControl, Credentials, LookupService, Rpc, ServiceHost, SessionManager, TcpRpcClient,
    TcpRpcServer,
};
use gae::wire::Value;
use std::sync::Arc;

#[test]
fn lookup_federates_service_registrations() {
    // Three Clarens hosts, a line topology: caltech — cern — nust.
    let caltech = LookupService::new("caltech");
    let cern = LookupService::new("cern");
    let nust = LookupService::new("nust");
    caltech.add_peer(&cern);
    cern.add_peer(&nust);

    caltech.register("jobmon", Endpoint::new("http://caltech/RPC2", "caltech-t2"));
    nust.register("steering", Endpoint::new("http://nust/RPC2", "nust"));
    nust.register("jobmon", Endpoint::new("http://nust/RPC2", "nust"));

    // One-hop federation, exactly like the original Clarens lookup.
    assert_eq!(cern.lookup("jobmon").len(), 2);
    assert_eq!(cern.lookup("steering").len(), 1);
    assert_eq!(caltech.lookup("steering").len(), 0, "two hops away");
    assert_eq!(
        cern.service_names(),
        vec!["jobmon".to_string(), "steering".to_string()]
    );

    // Failure handling: deregister after Backup & Recovery notices.
    assert!(nust.deregister("jobmon", "http://nust/RPC2"));
    assert_eq!(cern.lookup("jobmon").len(), 1);
}

#[test]
fn acl_denies_until_granted_over_tcp() {
    let sessions = Arc::new(SessionManager::with_default_ttl());
    sessions.register(&Credentials::new("alice", "pw")).unwrap();
    let acl = Arc::new(AccessControl::default_deny());
    // Everyone may log in, nothing else.
    acl.grant_service(None, "auth");
    let host = ServiceHost::new(sessions, acl.clone());
    let server = TcpRpcServer::start(host.clone(), 2).unwrap();
    let mut client = TcpRpcClient::connect(server.addr());

    // Even ping is denied under default-deny.
    assert!(matches!(
        client.call("system.ping", vec![]),
        Err(GaeError::Unauthorized(_))
    ));

    // Alice logs in; still no system access.
    client.login("alice", "pw").unwrap();
    assert!(client.call("system.ping", vec![]).is_err());

    // Grant her the system service and retry.
    let alice = host.sessions().user_id("alice").unwrap();
    acl.grant_service(Some(alice), "system");
    assert_eq!(
        client.call("system.ping", vec![]).unwrap(),
        Value::from("pong")
    );

    // Method-level deny overrides the service grant.
    acl.deny_method(Some(alice), "system", "echo");
    assert!(client.call("system.echo", vec![Value::Int(1)]).is_err());
    assert!(client.call("system.ping", vec![]).is_ok());
    server.stop();
}

#[test]
fn values_of_every_type_survive_the_live_wire() {
    let host = ServiceHost::open();
    let server = TcpRpcServer::start(host, 2).unwrap();
    let mut client = TcpRpcClient::connect(server.addr());
    let nasty = Value::struct_of([
        ("int", Value::Int(i32::MIN)),
        ("int64", Value::Int64(i64::MAX)),
        ("bool", Value::Bool(true)),
        (
            "string",
            Value::from("entit&es <xml> \"quotes\" and \u{1F680} unicode\ncontrol:\u{1}"),
        ),
        ("double", Value::Double(-2.5e-17)),
        ("bytes", Value::Base64((0u8..=255).collect())),
        ("nil", Value::Nil),
        (
            "nested",
            Value::Array(vec![
                Value::Array(vec![Value::Int(1)]),
                Value::empty_struct(),
                Value::from(""),
            ]),
        ),
        (
            "when",
            Value::DateTime(gae::wire::datetime::DateTime::parse("20050614T12:00:00").unwrap()),
        ),
    ]);
    let echoed = client.call("system.echo", vec![nasty.clone()]).unwrap();
    assert_eq!(echoed, Value::Array(vec![nasty]));
    server.stop();
}

#[test]
fn large_payloads_roundtrip() {
    let host = ServiceHost::open();
    let server = TcpRpcServer::start(host, 2).unwrap();
    let mut client = TcpRpcClient::connect(server.addr());
    // ~1 MB of base64 payload through HTTP framing.
    let blob = Value::Base64(vec![0xAB; 1_000_000]);
    let echoed = client.call("system.echo", vec![blob.clone()]).unwrap();
    assert_eq!(echoed.as_array().unwrap()[0], blob);
    server.stop();
}

#[test]
fn session_expiry_is_enforced_on_the_wire() {
    let sessions = Arc::new(SessionManager::new(std::time::Duration::from_millis(50)));
    sessions.register(&Credentials::new("brief", "pw")).unwrap();
    let host = ServiceHost::new(sessions, Arc::new(AccessControl::allow_all()));
    let server = TcpRpcServer::start(host, 2).unwrap();
    let mut client = TcpRpcClient::connect(server.addr());
    client.login("brief", "pw").unwrap();
    assert!(client.call("auth.whoami", vec![]).unwrap().as_u64().is_ok());
    std::thread::sleep(std::time::Duration::from_millis(120));
    assert!(matches!(
        client.call("auth.whoami", vec![]),
        Err(GaeError::Unauthorized(_))
    ));
    server.stop();
}

#[test]
fn web_interface_serves_index_and_execution_state() {
    use std::io::{BufReader, Write};
    use std::net::TcpStream;

    // A grid with a completed task whose state was collected.
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "s", 1, 1))
        .build();
    let stack = ServiceStack::over(grid);
    let mut job = JobSpec::new(JobId::new(1), "webbed", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "x").with_cpu_demand(SimDuration::from_secs(10)),
    );
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(30));

    let host = ServiceHost::open();
    host.register(Arc::new(gae::core::jobmon::JobMonitoringRpc::new(
        stack.jobmon.clone(),
    )));
    host.register_web(stack.steering.web_handler());
    let server = TcpRpcServer::start(host, 2).unwrap();

    let get = |path: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = gae::rpc::http::read_response(&mut reader).unwrap();
        (resp.status, String::from_utf8_lossy(&resp.body).to_string())
    };

    // The index lists the registered services.
    let (status, body) = get("/");
    assert_eq!(status, 200);
    assert!(body.contains("jobmon.job_info"), "index lists methods");
    assert!(body.contains("Clarens host"));

    // The execution-state download (§4.2.4's web interface).
    let (status, body) = get(&format!("/state/{}", task.raw()));
    assert_eq!(status, 200);
    assert!(body.contains("status: completed"), "{body}");
    assert!(body.contains("cpu_time_s: 10.000"), "{body}");

    // Unknown pages and unknown tasks 404.
    assert_eq!(get("/nope").0, 404);
    assert_eq!(get("/state/999").0, 404);
    assert_eq!(get("/state/notanumber").0, 404);
    server.stop();
}

#[test]
fn non_post_non_get_is_rejected() {
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    let host = ServiceHost::open();
    let server = TcpRpcServer::start(host, 2).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write!(stream, "DELETE /RPC2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let resp = gae::rpc::http::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 405);
    server.stop();
}

#[test]
fn two_hosts_one_grid() {
    // The same service stack exposed through two Clarens hosts (two
    // "sites" of the web-service fabric): state is shared because the
    // services are.
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "s", 2, 1))
        .build();
    let stack = ServiceStack::over(grid);
    let mut job = JobSpec::new(JobId::new(1), "shared", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "x").with_cpu_demand(SimDuration::from_secs(500)),
    );
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(10));

    let host_a = ServiceHost::open();
    host_a.register(Arc::new(gae::core::jobmon::JobMonitoringRpc::new(
        stack.jobmon.clone(),
    )));
    let host_b = ServiceHost::open();
    host_b.register(Arc::new(gae::core::jobmon::JobMonitoringRpc::new(
        stack.jobmon.clone(),
    )));
    let server_a = TcpRpcServer::start(host_a, 2).unwrap();
    let server_b = TcpRpcServer::start(host_b, 2).unwrap();

    let mut ca = TcpRpcClient::connect(server_a.addr());
    let mut cb = TcpRpcClient::connect(server_b.addr());
    let sa = ca
        .call("jobmon.job_status", vec![Value::from(task.raw())])
        .unwrap();
    let sb = cb
        .call("jobmon.job_status", vec![Value::from(task.raw())])
        .unwrap();
    assert_eq!(sa, sb);
    assert_eq!(sa.as_str().unwrap(), "running");
    server_a.stop();
    server_b.stop();
}
