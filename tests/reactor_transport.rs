//! The `gae-aio` reactor front door under hostile and awkward
//! clients: mid-request disconnects, partial writes through a tiny
//! kernel send buffer, pipelined requests — and the contract that
//! matters most, blocking-vs-reactor response equivalence (both
//! transports share `gae_rpc::door` dispatch and `gae_rpc::http`
//! framing, so the same bytes in must produce the same bytes out).

use gae::aio::{ReactorConfig, ReactorRpcServer};
use gae::gate::{Gate, GateConfig, QueueConfig, TokenBucketConfig, WallClock};
use gae::rpc::http::{FrameLimits, FrameParser, HttpRequest, HttpResponse};
use gae::rpc::service::{CallContext, MethodInfo, Service};
use gae::rpc::{Rpc, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::types::{GaeError, GaeResult, SimDuration};
use gae::wire::{write_call, MethodCall, Value};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

struct Echo;

impl Service for Echo {
    fn name(&self) -> &'static str {
        "test"
    }
    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            "sum" => {
                let mut s = 0i64;
                for p in params {
                    s += p.as_i64()?;
                }
                Ok(Value::Int64(s))
            }
            // A response much larger than a minimal socket buffer:
            // forces the reactor through its partial-write path.
            "blob" => {
                let n = usize::try_from(params[0].as_i64()?).unwrap_or(0);
                Ok(Value::from("x".repeat(n)))
            }
            // Occupies a worker for a while: lets a test wedge the
            // admission queue deterministically.
            "sleep" => {
                let ms = u64::try_from(params[0].as_i64()?).unwrap_or(0);
                std::thread::sleep(Duration::from_millis(ms));
                Ok(Value::Int64(0))
            }
            "fail" => Err(GaeError::ExecutionFailure("deliberate".into())),
            other => Err(gae::rpc::service::unknown_method("test", other)),
        }
    }
    fn methods(&self) -> Vec<MethodInfo> {
        vec![]
    }
}

fn echo_host() -> Arc<ServiceHost> {
    let host = ServiceHost::open();
    host.register(Arc::new(Echo));
    host
}

/// Serialises one XML-RPC call as raw keep-alive HTTP bytes.
fn raw_call(method: &str, params: Vec<Value>) -> Vec<u8> {
    let body = write_call(&MethodCall::new(method, params)).into_bytes();
    let mut buf = Vec::new();
    HttpRequest::xmlrpc(body, None).write_to(&mut buf).unwrap();
    buf
}

/// Reads framed responses off a blocking socket, preserving bytes
/// past each message boundary (pipelined responses share reads).
struct ResponseReader {
    stream: TcpStream,
    parser: FrameParser,
    pending: Vec<u8>,
}

impl ResponseReader {
    fn new(stream: &TcpStream) -> ResponseReader {
        ResponseReader {
            stream: stream.try_clone().unwrap(),
            parser: FrameParser::new(FrameLimits::DEFAULT),
            pending: Vec::new(),
        }
    }

    fn next(&mut self) -> HttpResponse {
        loop {
            while !self.pending.is_empty() && !self.parser.is_complete() {
                let used = self
                    .parser
                    .feed(&self.pending)
                    .expect("well-formed response");
                self.pending.drain(..used);
            }
            if self.parser.is_complete() {
                return self.parser.take_response().unwrap();
            }
            let mut buf = [0u8; 4096];
            let n = self
                .stream
                .read(&mut buf)
                .expect("server closed mid-response");
            assert!(n > 0, "EOF before a complete response");
            self.pending.extend_from_slice(&buf[..n]);
        }
    }
}

/// Reads exactly one HTTP response off a blocking socket.
fn read_one_response(stream: &TcpStream) -> HttpResponse {
    ResponseReader::new(stream).next()
}

#[test]
fn mid_request_disconnect_leaves_the_reactor_healthy() {
    let server = ReactorRpcServer::start(echo_host(), 2).unwrap();
    let addr = server.addr();
    // Half a request, then vanish.
    let mut half = TcpStream::connect(addr).unwrap();
    half.write_all(b"POST /RPC2 HTTP/1.1\r\nContent-Le")
        .unwrap();
    drop(half);
    // A full request, then vanish before reading the response: the
    // completion for the dead connection must be discarded, not
    // delivered to whoever lands in the slab slot next.
    let mut ghost = TcpStream::connect(addr).unwrap();
    ghost
        .write_all(&raw_call("test.sum", vec![Value::Int(1)]))
        .unwrap();
    drop(ghost);
    // The reactor keeps serving fresh clients afterwards.
    std::thread::sleep(Duration::from_millis(100));
    let mut client = TcpRpcClient::connect(addr);
    for i in 0..20 {
        let v = client
            .call("test.sum", vec![Value::Int(i), Value::Int(1)])
            .unwrap();
        assert_eq!(v, Value::Int64(i64::from(i) + 1));
    }
    server.stop();
}

#[test]
fn partial_writes_through_a_tiny_send_buffer_arrive_intact() {
    // Force the smallest send buffer the kernel allows: a ~1 MiB
    // response cannot leave in one write, so the reactor must park
    // the remainder, register write interest, and resume on EPOLLOUT.
    let config = ReactorConfig {
        so_sndbuf: Some(1),
        ..ReactorConfig::default()
    };
    let server = ReactorRpcServer::bind_tuned(echo_host(), 2, "127.0.0.1:0", None, config).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = ResponseReader::new(&stream);
    let n = 1_000_000i64;
    stream
        .write_all(&raw_call("test.blob", vec![Value::Int64(n)]))
        .unwrap();
    // A slow reader widens the window where the socket is unwritable.
    std::thread::sleep(Duration::from_millis(150));
    let response = reader.next();
    assert_eq!(response.status, 200);
    let value = gae::wire::parse_response(&response.body)
        .unwrap()
        .into_result()
        .unwrap();
    assert_eq!(value, Value::from("x".repeat(n as usize)));
    // The connection survived the ordeal: a second call works.
    stream
        .write_all(&raw_call("test.sum", vec![Value::Int(20), Value::Int(22)]))
        .unwrap();
    assert_eq!(reader.next().status, 200);
    server.stop();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = ReactorRpcServer::start(echo_host(), 2).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = ResponseReader::new(&stream);
    let mut stream = stream;
    // Two complete requests in one TCP segment: the reactor must
    // answer the first, then notice the second already buffered.
    let mut burst = raw_call("test.sum", vec![Value::Int(1), Value::Int(2)]);
    burst.extend_from_slice(&raw_call("test.sum", vec![Value::Int(30), Value::Int(12)]));
    stream.write_all(&burst).unwrap();
    let first = reader.next();
    let second = reader.next();
    for (response, expected) in [(first, 3i64), (second, 42i64)] {
        assert_eq!(response.status, 200);
        let value = gae::wire::parse_response(&response.body)
            .unwrap()
            .into_result()
            .unwrap();
        assert_eq!(value, Value::Int64(expected));
    }
    // Keep-alive still holds after the burst.
    stream
        .write_all(&raw_call("test.sum", vec![Value::Int(5)]))
        .unwrap();
    assert_eq!(reader.next().status, 200);
    server.stop();
}

#[test]
fn gate_refusals_agree_across_transports() {
    // Wedge each server's gate the same way — one worker occupied by
    // a slow call, one request parked in a capacity-1 queue — then a
    // third arrival must be refused at the door with the same typed
    // Overloaded fault on both transports. (The fault's retry_after
    // is clock-derived, so the comparison is kind + class, while the
    // ungated proptest below covers byte-level identity.)
    let tiny_gate = || {
        Gate::new(
            GateConfig {
                bucket: TokenBucketConfig::new(1e9, 1e9),
                queue: QueueConfig::new(1, SimDuration::from_secs(5)),
                ..GateConfig::default()
            },
            Arc::new(WallClock::new()),
        )
    };
    let blocking = TcpRpcServer::start_gated(echo_host(), 1, tiny_gate()).unwrap();
    let reactor = ReactorRpcServer::start_gated(echo_host(), 1, tiny_gate()).unwrap();
    let refusal = |addr: SocketAddr| {
        // A: occupies the only worker for a second.
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(&raw_call("test.sleep", vec![Value::Int64(1_000)]))
            .unwrap();
        std::thread::sleep(Duration::from_millis(250));
        // B: sits in the queue (capacity 1).
        let mut parked = TcpStream::connect(addr).unwrap();
        parked
            .write_all(&raw_call("test.sum", vec![Value::Int(1)]))
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // C: queue full — refused at arrival.
        let mut refused = TcpStream::connect(addr).unwrap();
        refused
            .write_all(&raw_call("test.sum", vec![Value::Int(2)]))
            .unwrap();
        let response = read_one_response(&refused);
        drop((busy, parked));
        response
    };
    let classes: Vec<String> = [
        ("blocking", refusal(blocking.addr())),
        ("reactor", refusal(reactor.addr())),
    ]
    .into_iter()
    .map(|(name, response)| {
        assert_eq!(
            response.status, 200,
            "{name}: XML-RPC faults travel as 200 + fault body"
        );
        let err = gae::wire::parse_response(&response.body)
            .unwrap()
            .into_result()
            .unwrap_err();
        match err {
            GaeError::Overloaded { shed_class, .. } => shed_class,
            other => panic!("{name}: expected Overloaded, got {other:?}"),
        }
    })
    .collect();
    assert_eq!(classes[0], classes[1], "transports disagree on shed class");
    blocking.stop();
    reactor.stop();
}

/// One request's worth of raw bytes for the equivalence proptest.
#[derive(Clone, Debug)]
enum Probe {
    /// A well-formed call (service result or service fault).
    Call { method: String, args: Vec<i64> },
    /// A non-POST method: typed 405 from both transports.
    BadVerb,
    /// A declared body far past the cap: typed 413 from both.
    Oversized,
    /// A line of garbage: typed 400 from both.
    Garbage,
}

impl Probe {
    fn to_bytes(&self) -> Vec<u8> {
        match self {
            Probe::Call { method, args } => {
                raw_call(method, args.iter().map(|&a| Value::Int64(a)).collect())
            }
            Probe::BadVerb => b"PUT /RPC2 HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec(),
            Probe::Oversized => format!(
                "POST /RPC2 HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                64 * 1024 * 1024
            )
            .into_bytes(),
            Probe::Garbage => b"NOT EVEN HTTP\r\n\r\n".to_vec(),
        }
    }
}

fn arb_probe() -> impl Strategy<Value = Probe> {
    (
        0u8..9,
        prop_oneof![
            Just("test.sum".to_string()),
            Just("test.fail".to_string()),
            Just("no.such".to_string()),
        ],
        proptest::collection::vec(-1000i64..1000, 0..4),
    )
        .prop_map(|(selector, method, args)| match selector {
            0 => Probe::BadVerb,
            1 => Probe::Oversized,
            2 => Probe::Garbage,
            _ => Probe::Call { method, args },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reactor is a scheduling change, not a semantic one: for
    /// any probe — valid calls, faults, bad verbs, oversized frames,
    /// garbage — both front doors return the identical response
    /// frame (status, reason, headers, body).
    #[test]
    fn blocking_and_reactor_answer_identically(probes in proptest::collection::vec(arb_probe(), 1..5)) {
        let host = echo_host();
        let blocking = TcpRpcServer::start(host.clone(), 2).unwrap();
        let reactor = ReactorRpcServer::start(host, 2).unwrap();
        for probe in &probes {
            let bytes = probe.to_bytes();
            let fetch = |addr: SocketAddr| {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(&bytes).unwrap();
                read_one_response(&s)
            };
            let a = fetch(blocking.addr());
            let b = fetch(reactor.addr());
            prop_assert_eq!(&a, &b, "transports disagree on {:?}", probe);
            match probe {
                Probe::Call { .. } => prop_assert_eq!(a.status, 200),
                Probe::BadVerb => prop_assert_eq!(a.status, 405),
                Probe::Oversized => prop_assert_eq!(a.status, 413),
                Probe::Garbage => prop_assert_eq!(a.status, 400),
            }
        }
        blocking.stop();
        reactor.stop();
    }
}
