//! Flocking between execution pools and execution-state collection —
//! the §7/§4.2.4 features beyond the headline figures.

use gae::core::steering::MoveReason;
use gae::prelude::*;
use gae::types::TaskStatus;

#[test]
fn queued_work_flocks_to_a_free_partner() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "overloaded", 1, 1))
        .site(SiteDescription::new(SiteId::new(2), "partner", 2, 1))
        .build();
    grid.enable_flocking(SiteId::new(1), SiteId::new(2));
    let stack = ServiceStack::over(grid.clone());

    // Three tasks forced onto the single-slot site: one runs, two
    // queue — and should flock to the partner on the next poll.
    let mut job = JobSpec::new(JobId::new(1), "flock", UserId::new(1));
    for i in 1..=3 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "x")
                .with_cpu_demand(SimDuration::from_secs(300)),
        );
    }
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    {
        let exec = grid.exec(SiteId::new(1)).unwrap();
        assert_eq!(exec.lock().queue_length(), 2);
    }
    stack.run_until(SimTime::from_secs(10));

    // Queue drained by flocking, not by completion.
    {
        let exec1 = grid.exec(SiteId::new(1)).unwrap();
        let exec2 = grid.exec(SiteId::new(2)).unwrap();
        assert_eq!(exec1.lock().queue_length(), 0, "queue flocked away");
        assert_eq!(exec1.lock().running_count(), 1);
        assert_eq!(exec2.lock().running_count(), 2);
    }
    let flocked: Vec<_> = stack
        .steering
        .move_log()
        .into_iter()
        .filter(|m| m.reason == MoveReason::Flocked)
        .collect();
    assert_eq!(flocked.len(), 2);

    // All three finish in parallel instead of serially: by ~310 s
    // everything is done (serial would need 900 s).
    stack.run_until(SimTime::from_secs(320));
    assert_eq!(stack.jobmon.job_status(JobId::new(1)), JobStatus::Completed);
    // Steering still addresses the flocked tasks correctly.
    for i in 1..=3 {
        let info = stack.jobmon.job_info(TaskId::new(i)).unwrap();
        assert_eq!(info.status, TaskStatus::Completed);
    }
}

#[test]
fn flocking_respects_partner_capacity_and_liveness() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "src", 1, 1))
        .site(SiteDescription::new(SiteId::new(2), "full", 1, 1))
        .build();
    grid.enable_flocking(SiteId::new(1), SiteId::new(2));
    let stack = ServiceStack::over(grid.clone());

    // Fill the partner first.
    let mut filler = JobSpec::new(JobId::new(1), "filler", UserId::new(1));
    filler.add_task(
        TaskSpec::new(TaskId::new(1), "f", "x").with_cpu_demand(SimDuration::from_secs(500)),
    );
    stack
        .submit_plan(&AbstractPlan::new(filler).restricted_to(vec![SiteId::new(2)]))
        .unwrap();

    // Now overload the source.
    let mut job = JobSpec::new(JobId::new(2), "stuck", UserId::new(1));
    for i in 2..=3 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "x")
                .with_cpu_demand(SimDuration::from_secs(100)),
        );
    }
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(20));
    // The partner is full: nothing flocked.
    {
        let exec1 = grid.exec(SiteId::new(1)).unwrap();
        assert_eq!(
            exec1.lock().queue_length(),
            1,
            "no free partner slot, no flock"
        );
    }

    // Kill the partner entirely: dead pools receive no flocked work.
    // (Backup & Recovery will additionally re-queue the partner's
    // failed filler onto site 1 — that is the recovery path, not
    // flocking.)
    grid.exec(SiteId::new(2)).unwrap().lock().fail_site();
    stack.run_until(SimTime::from_secs(40));
    assert!(
        stack
            .steering
            .move_log()
            .iter()
            .all(|m| m.reason != MoveReason::Flocked),
        "nothing may flock to a dead pool"
    );
    {
        let exec2 = grid.exec(SiteId::new(2)).unwrap();
        let guard = exec2.lock();
        assert!(!guard.is_alive());
        assert_eq!(guard.running_count(), 0);
    }
}

#[test]
fn checkpointable_tasks_flock_warm() {
    // A checkpointable task suspended in a queue carries no work yet,
    // but a running task moved manually does; flocking moves only
    // queued tasks so the carried work is zero — verify the plumbing
    // still marks them checkpointed correctly end to end.
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "src", 1, 1))
        .site(SiteDescription::new(SiteId::new(2), "dst", 1, 1))
        .build();
    grid.enable_flocking(SiteId::new(1), SiteId::new(2));
    let stack = ServiceStack::over(grid.clone());
    let mut job = JobSpec::new(JobId::new(1), "warm", UserId::new(1));
    for i in 1..=2 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "x")
                .with_cpu_demand(SimDuration::from_secs(100))
                .with_checkpointable(true),
        );
    }
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(150));
    assert_eq!(stack.jobmon.job_status(JobId::new(1)), JobStatus::Completed);
    let t2 = stack.jobmon.job_info(TaskId::new(2)).unwrap();
    assert_eq!(t2.site, SiteId::new(2), "task 2 flocked");
    // Completed in parallel: both done by 150 s.
    assert!(t2.completed_at.unwrap() <= SimTime::from_secs(110));
}

#[test]
fn execution_state_collected_on_completion_and_failure() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "a", 1, 1))
        .site(SiteDescription::new(SiteId::new(2), "b", 1, 1))
        .build();
    let stack = ServiceStack::over(grid.clone());
    let mut job = JobSpec::new(JobId::new(1), "stateful", UserId::new(1));
    let t1 = job.add_task({
        let mut t =
            TaskSpec::new(TaskId::new(1), "t1", "x").with_cpu_demand(SimDuration::from_secs(100));
        t.output_files = vec![FileRef::new("out1.root", 5_000)];
        t
    });
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(150));

    // Completed: full output collected.
    let state = stack.steering.execution_state(t1).expect("collected");
    assert_eq!(state.status, TaskStatus::Completed);
    assert_eq!(state.output_bytes, 5_000);
    assert_eq!(state.site, SiteId::new(1));
    assert_eq!(state.cpu_time, SimDuration::from_secs(100));

    // A failing task: partial output collected at failure time.
    let mut job2 = JobSpec::new(JobId::new(2), "doomed", UserId::new(1));
    let t2 = job2.add_task({
        let mut t =
            TaskSpec::new(TaskId::new(2), "t2", "x").with_cpu_demand(SimDuration::from_secs(1_000));
        t.output_files = vec![FileRef::new("out2.root", 10_000)];
        t
    });
    stack
        .submit_plan(&AbstractPlan::new(job2).restricted_to(vec![SiteId::new(2)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(400));
    {
        let exec = grid.exec(SiteId::new(2)).unwrap();
        let node = {
            let guard = exec.lock();
            let condor = guard.condor_of(t2).unwrap();
            guard.record(condor).unwrap().node.unwrap()
        };
        exec.lock().fail_node(node).unwrap();
    }
    stack.run_until(SimTime::from_secs(420));
    let state = stack
        .steering
        .execution_state(t2)
        .expect("collected on failure");
    assert_eq!(state.status, TaskStatus::Failed);
    assert!(
        state.output_bytes > 0 && state.output_bytes < 10_000,
        "partial output: {}",
        state.output_bytes
    );
}
