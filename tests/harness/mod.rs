//! Shared crash/failover test harness: randomly generated grid +
//! workload scenarios in plain data form, the canonical persisted-
//! state digest, and the reference-run machinery that makes prefix-
//! consistency checkable. Used by `tests/crash_recovery.rs`
//! (single-node recovery under corruption) and
//! `tests/repl_failover.rs` (replicated failover), each of which
//! includes this module via `#[path]`.
#![allow(dead_code)]

use gae::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Per job: task demands in seconds and raw dependency index pairs.
pub type JobShape = (Vec<u64>, Vec<(usize, usize)>);

/// One generated grid + workload + crash point, in plain data form so
/// the same scenario can be materialised several times.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Per site: (nodes, slots per node, external load in quarters).
    pub sites: Vec<(u32, u32, u64)>,
    /// Flocking edges as site-index pairs (self-edges skipped).
    pub flock_edges: Vec<(usize, usize)>,
    /// Per job: task demands and dependency edges (applied low → high).
    pub jobs: Vec<JobShape>,
    /// run_until steps to drive before the crash (= commit points).
    pub steps: usize,
    /// Seconds of virtual time per step.
    pub step_secs: u64,
    /// Snapshot cadence in steps (1 = rotate at every checkpoint).
    pub snapshot_steps: u64,
    /// Whether the persisted run and the recovered run use the
    /// sharded driver (the reference is always sequential).
    pub sharded: bool,
    /// Which store file the corruption lands in (modulo file count).
    /// The failover tests reuse it as the kill-step selector.
    pub victim: u64,
    /// Corruption kind selector (0 truncate, 1 bit flip, 2 duplicate).
    pub kind: u8,
    /// Byte length / offset raw material (modulo file length).
    pub extent: u64,
    /// Bit to flip within the victim byte.
    pub bit: u8,
}

pub fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let site = (1u32..4, 1u32..3, 0u64..4);
    let edge = (any::<prop::sample::Index>(), any::<prop::sample::Index>());
    let job = (
        prop::collection::vec(0u64..60, 1..6),
        prop::collection::vec(edge, 0..4),
    );
    (
        (
            prop::collection::vec(site, 1..9),
            prop::collection::vec(edge, 0..4),
            prop::collection::vec(job, 1..4),
            1usize..6,
            5u64..40,
            1u64..4,
        ),
        (
            any::<bool>(),
            0u64..1_000_000,
            0u8..3,
            0u64..1_000_000,
            0u8..8,
        ),
    )
        .prop_map(
            |(
                (sites, raw_flocks, raw_jobs, steps, step_secs, snapshot_steps),
                (sharded, victim, kind, extent, bit),
            )| {
                let n = sites.len();
                let flock_edges = raw_flocks
                    .into_iter()
                    .map(|(a, b)| (a.index(n), b.index(n)))
                    .collect();
                let jobs = raw_jobs
                    .into_iter()
                    .map(|(demands, raw_deps)| {
                        let t = demands.len();
                        let deps = raw_deps
                            .into_iter()
                            .map(|(a, b)| (a.index(t), b.index(t)))
                            .collect();
                        (demands, deps)
                    })
                    .collect();
                Scenario {
                    sites,
                    flock_edges,
                    jobs,
                    steps,
                    step_secs,
                    snapshot_steps,
                    sharded,
                    victim,
                    kind,
                    extent,
                    bit,
                }
            },
        )
}

pub fn build_grid(
    scenario: &Scenario,
    driver: DriverMode,
    persist: Option<&PersistenceConfig>,
) -> Arc<Grid> {
    let mut builder = GridBuilder::new().driver(driver);
    for (i, (nodes, slots, load_quarters)) in scenario.sites.iter().enumerate() {
        let desc = SiteDescription::new(SiteId::new(i as u64 + 1), format!("s{i}"), *nodes, *slots);
        builder = if *load_quarters == 0 {
            builder.site(desc)
        } else {
            builder.site_with_load(desc, *load_quarters as f64 * 0.25)
        };
    }
    if let Some(config) = persist {
        builder = builder.persist(config.clone());
    }
    let grid = builder.build();
    for (a, b) in &scenario.flock_edges {
        if a != b {
            grid.enable_flocking(SiteId::new(*a as u64 + 1), SiteId::new(*b as u64 + 1));
        }
    }
    grid
}

pub fn submit_workload(scenario: &Scenario, stack: &ServiceStack) {
    for (j, (demands, deps)) in scenario.jobs.iter().enumerate() {
        let job_no = j as u64 + 1;
        let mut job = JobSpec::new(JobId::new(job_no), format!("job{job_no}"), UserId::new(1));
        let mut ids = Vec::new();
        for (k, demand) in demands.iter().enumerate() {
            let id = TaskId::new(job_no * 1000 + k as u64);
            job.add_task(
                TaskSpec::new(id, format!("t{job_no}-{k}"), "app")
                    .with_cpu_demand(SimDuration::from_secs(*demand)),
            );
            ids.push(id);
        }
        for (a, b) in deps {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi {
                job.add_dependency(ids[*lo], ids[*hi]);
            }
        }
        // Scheduling can legitimately fail; both runs see the same
        // spec, so failures are equivalence-preserving.
        let _ = stack.submit_job(job);
    }
}

/// A deterministic digest of everything the durability contract
/// promises to reconstruct: the job repository, the retained MonALISA
/// event log and eviction counter, the steering tracker (minus Condor
/// ids, which are legitimately reissued on re-arm), accounting, and
/// the columnar job history (store digest plus per-segment digests).
/// Metric *series* are snapshot-only by contract and excluded.
pub fn digest(stack: &ServiceStack) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "evicted={}", stack.grid.monitor().evicted_count()).unwrap();
    for e in stack.grid.monitor().events_snapshot() {
        writeln!(out, "event {e:?}").unwrap();
    }
    for info in stack.jobmon.db_snapshot() {
        writeln!(out, "jobmon {info:?}").unwrap();
    }
    for job in stack.steering.export_jobs() {
        writeln!(
            out,
            "job {} rev={} notified={}",
            job.plan.job_id(),
            job.plan.revision,
            job.completion_notified
        )
        .unwrap();
        for a in &job.plan.assignments {
            writeln!(out, "  assign {} -> {}", a.task, a.site).unwrap();
        }
        let mut task_ids: Vec<_> = job.tasks.keys().copied().collect();
        task_ids.sort();
        for t in task_ids {
            let tracked = &job.tasks[&t];
            let phase = match tracked.phase {
                gae::core::steering::TaskPhase::WaitingPrereqs => "waiting".to_string(),
                gae::core::steering::TaskPhase::Submitted { site, .. } => {
                    format!("submitted@{site}")
                }
                gae::core::steering::TaskPhase::Done { site } => format!("done@{site}"),
                gae::core::steering::TaskPhase::Failed => "failed".to_string(),
                gae::core::steering::TaskPhase::Killed => "killed".to_string(),
            };
            writeln!(
                out,
                "  task {t} {phase} attempts={} moves={}",
                tracked.recovery_attempts, tracked.moves
            )
            .unwrap();
        }
    }
    for (user, balance) in stack.quota.balances_snapshot() {
        writeln!(out, "balance {user} {balance:?}").unwrap();
    }
    for c in stack.quota.ledger() {
        writeln!(out, "charge {c:?}").unwrap();
    }
    let hist = stack.hist.store();
    writeln!(out, "hist rows={} digest={}", hist.rows(), hist.digest()).unwrap();
    for (i, seg) in hist.segment_digests().iter().enumerate() {
        writeln!(out, "hist seg {i} {seg}").unwrap();
    }
    writeln!(out, "hist tail {}", hist.tail_digest()).unwrap();
    out
}

/// Reference stack (sequential driver, no persistence) driven to the
/// given commit point — for comparing *derived* state, like runtime
/// estimates, against a recovered or promoted stack at that commit.
pub fn reference_stack_at(scenario: &Scenario, steps: u64) -> Arc<ServiceStack> {
    let stack = ServiceStack::over(build_grid(scenario, DriverMode::Sequential, None));
    submit_workload(scenario, &stack);
    for step in 1..=steps {
        stack.run_until(SimTime::from_secs(step * scenario.step_secs));
    }
    stack
}

/// The runtime estimate each site gives for a fixed probe task,
/// Debug-formatted with errors included — sites with no history must
/// agree on the error too. Estimates are a pure function of the
/// columnar history store, so two stacks whose digests match must
/// also agree here.
pub fn estimate_probe(stack: &ServiceStack) -> Vec<String> {
    let spec = TaskSpec::new(TaskId::new(999_999), "probe", "app")
        .with_cpu_demand(SimDuration::from_secs(30));
    stack
        .grid
        .site_ids()
        .into_iter()
        .map(|site| {
            format!(
                "{site} {:?}",
                stack.estimators.estimate_runtime(site, &spec)
            )
        })
        .collect()
}

/// Reference run (no persistence, sequential driver): the digest at
/// every commit point `0..=steps`.
pub fn reference_digests(scenario: &Scenario) -> Vec<String> {
    let grid = build_grid(scenario, DriverMode::Sequential, None);
    let stack = ServiceStack::over(grid);
    // Commit 0 is the state before anything was committed: empty.
    let mut digests = vec![digest(&stack)];
    submit_workload(scenario, &stack);
    for step in 1..=scenario.steps {
        stack.run_until(SimTime::from_secs(step as u64 * scenario.step_secs));
        digests.push(digest(&stack));
    }
    digests
}

pub fn driver_for(scenario: &Scenario) -> DriverMode {
    if scenario.sharded {
        DriverMode::sharded(3)
    } else {
        DriverMode::Sequential
    }
}

/// Runs the persisted stack to the crash horizon and drops it.
pub fn persisted_run(scenario: &Scenario, config: &PersistenceConfig) {
    let grid = build_grid(scenario, driver_for(scenario), Some(config));
    let stack = ServiceStack::over(grid);
    submit_workload(scenario, &stack);
    for step in 1..=scenario.steps {
        stack.run_until(SimTime::from_secs(step as u64 * scenario.step_secs));
    }
    // Process death: the stack is dropped with no orderly shutdown.
}

/// Applies the scenario's corruption to one on-disk store file.
/// Returns a description of what was done (for failure messages).
pub fn corrupt_store(scenario: &Scenario, dir: &std::path::Path) -> String {
    use gae::durable::fault::{inject, store_files};
    use gae::durable::Corruption;

    let files = store_files(dir).expect("list store files");
    assert!(!files.is_empty(), "persisted run left no store files");
    let victim = &files[scenario.victim as usize % files.len()];
    let len = std::fs::metadata(victim)
        .map(|m| m.len() as usize)
        .unwrap_or(0)
        .max(1);
    let extent = scenario.extent as usize % len;
    let corruption = match scenario.kind {
        0 => Corruption::TruncateTail {
            bytes: extent as u64 + 1,
        },
        1 => Corruption::FlipBit {
            offset: extent as u64,
            bit: scenario.bit,
        },
        _ => Corruption::DuplicateTail {
            bytes: extent as u64 + 1,
        },
    };
    let applied = inject(victim, &corruption).expect("inject corruption");
    format!("{corruption:?} applied={applied} to {}", victim.display())
}
