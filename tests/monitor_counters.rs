//! Observability counters over the `monalisa.*` RPC facade: the
//! estimator memo-cache hit/miss counters published every poll, and
//! the monotonic event-log eviction counter (ISSUE 2 satellites).

use gae::core::monalisa::MonAlisaRpc;
use gae::monitor::MonAlisaRepository;
use gae::prelude::*;
use gae::rpc::{CallContext, Service};
use gae::wire::Value;

fn ctx() -> CallContext {
    CallContext::anonymous("test")
}

fn latest(rpc: &MonAlisaRpc, site: u64, entity: &str, param: &str) -> Option<f64> {
    let out = rpc
        .call(
            &ctx(),
            "latest",
            &[Value::from(site), Value::from(entity), Value::from(param)],
        )
        .expect("latest call");
    match out {
        Value::Nil => None,
        v => Some(v.member("value").unwrap().as_f64().unwrap()),
    }
}

/// Repeated estimates for the same `(site, meta)` key must move both
/// memo counters, and the counters must be queryable over the
/// `monalisa` facade like any other metric.
#[test]
fn memo_counters_move_and_are_queryable_over_rpc() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 2, 2))
        .site(SiteDescription::new(SiteId::new(2), "beta", 2, 2))
        .build();
    let stack = ServiceStack::over(grid);

    // Seed the history: one short job that completes quickly.
    let mut seed = JobSpec::new(JobId::new(1), "seed", UserId::new(1));
    for k in 0..3u64 {
        seed.add_task(
            TaskSpec::new(TaskId::new(100 + k), format!("seed-{k}"), "app")
                .with_cpu_demand(SimDuration::from_secs(5)),
        );
    }
    stack.submit_job(seed).unwrap();
    stack.run_until(SimTime::from_secs(60));

    let rpc = MonAlisaRpc::new(stack.grid.monitor().clone());
    let hits_before = latest(&rpc, 0, "estimator", "memo_hits").unwrap_or(0.0);

    // Repeated-estimate workload: the same metadata tuple over and
    // over, with no history change in between — pure memo hits after
    // the first computation.
    let spec =
        TaskSpec::new(TaskId::new(900), "probe", "app").with_cpu_demand(SimDuration::from_secs(5));
    for _ in 0..16 {
        stack
            .estimators
            .estimate_runtime(SiteId::new(1), &spec)
            .expect("history is non-empty");
    }
    let (hits, misses) = stack.estimators.memo_stats();
    assert!(misses >= 1, "first estimate is a miss (misses={misses})");
    assert!(hits >= 15, "repeats are memo hits (hits={hits})");

    // The next poll publishes the counters into the repository; they
    // must be visible through the RPC facade and have moved.
    stack.run_until(SimTime::from_secs(65));
    let hits_after = latest(&rpc, 0, "estimator", "memo_hits").expect("published");
    let misses_after = latest(&rpc, 0, "estimator", "memo_misses").expect("published");
    assert!(
        hits_after > hits_before,
        "memo_hits did not move over RPC: {hits_before} -> {hits_after}"
    );
    assert_eq!(misses_after as u64, misses);
    assert_eq!(hits_after as u64, hits);
}

/// The capped event log reports evictions monotonically, both through
/// `evicted_count` and as the `monalisa.evictions` metric over RPC.
#[test]
fn eviction_counter_is_monotonic_over_rpc() {
    // A real stack over a tiny event log: 4 retained events.
    let repo = MonAlisaRepository::new(256, 4);
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 4, 2))
        .monitor(repo.clone())
        .build();
    let stack = ServiceStack::over(grid);

    let mut job = JobSpec::new(JobId::new(1), "burst", UserId::new(1));
    for k in 0..8u64 {
        job.add_task(
            TaskSpec::new(TaskId::new(k), format!("b{k}"), "app")
                .with_cpu_demand(SimDuration::from_secs(2)),
        );
    }
    stack.submit_job(job).unwrap();

    let mut last = 0u64;
    for step in 1..=6u64 {
        stack.run_until(SimTime::from_secs(step * 10));
        let counted = repo.evicted_count();
        assert!(counted >= last, "eviction counter went backwards");
        last = counted;
    }
    // 8 completions into a cap of 4: at least 4 evictions.
    assert!(last >= 4, "expected evictions, saw {last}");
    assert_eq!(repo.events_snapshot().len(), 4, "cap holds");

    let rpc = MonAlisaRpc::new(repo.clone());
    let metric = latest(&rpc, 0, "monalisa", "evictions").expect("eviction metric");
    assert_eq!(metric as u64, last, "metric mirrors the counter");
}
