//! The full GAE deployment over real XML-RPC/TCP: every service
//! registered on one Clarens host, exercised by genuine network
//! clients — sessions, faults, concurrency, and the steering flow.

use gae::core::jobmon::{JobMonitoringInfo, JobMonitoringRpc};
use gae::core::steering::SteeringRpc;
use gae::prelude::*;
use gae::rpc::{Credentials, Rpc, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::wire::Value;
use std::sync::Arc;

struct Deployment {
    stack: Arc<ServiceStack>,
    host: Arc<ServiceHost>,
    server: TcpRpcServer,
    owner: UserId,
    task: TaskId,
}

fn deploy() -> Deployment {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 4, 1))
        .site(SiteDescription::new(SiteId::new(2), "beta", 4, 1))
        .build();
    let stack = ServiceStack::over(grid);
    let host = ServiceHost::open();
    host.sessions()
        .register(&Credentials::new("alice", "pw"))
        .unwrap();
    host.sessions()
        .register(&Credentials::new("mallory", "pw"))
        .unwrap();
    let owner = host.sessions().user_id("alice").unwrap();
    host.register(Arc::new(JobMonitoringRpc::new(stack.jobmon.clone())));
    host.register(Arc::new(SteeringRpc::new(stack.steering.clone())));
    host.register(Arc::new(gae::core::estimator::service::EstimatorRpc::new(
        stack.estimators.clone(),
    )));
    let server = TcpRpcServer::start(host.clone(), 8).unwrap();

    let mut job = JobSpec::new(JobId::new(1), "wired", owner);
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "prime").with_cpu_demand(SimDuration::from_secs(1_000)),
    );
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(100));
    Deployment {
        stack,
        host,
        server,
        owner,
        task,
    }
}

#[test]
fn job_info_roundtrips_over_the_wire() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());
    let raw = client
        .call("jobmon.job_info", vec![Value::from(d.task.raw())])
        .unwrap();
    let info = JobMonitoringInfo::from_value(&raw).unwrap();
    assert_eq!(info.task, d.task);
    assert_eq!(info.status, TaskStatus::Running);
    assert_eq!(info.owner, d.owner);
    assert!((info.cpu_time.as_secs_f64() - 100.0).abs() < 1e-6);
    // And it matches the in-process view exactly.
    let local = d.stack.jobmon.job_info(d.task).unwrap();
    assert_eq!(info, local);
    d.server.stop();
}

#[test]
fn steering_requires_a_session_over_tcp() {
    let d = deploy();
    let mut anon = TcpRpcClient::connect(d.server.addr());
    let err = anon
        .call("steering.pause", vec![Value::from(d.task.raw())])
        .unwrap_err();
    assert!(matches!(err, GaeError::Unauthorized(_)), "{err}");

    let mut alice = TcpRpcClient::connect(d.server.addr());
    alice.login("alice", "pw").unwrap();
    alice
        .call("steering.pause", vec![Value::from(d.task.raw())])
        .unwrap();
    assert_eq!(
        d.stack.jobmon.job_info(d.task).unwrap().status,
        TaskStatus::Suspended
    );
    alice
        .call("steering.resume", vec![Value::from(d.task.raw())])
        .unwrap();

    let mut mallory = TcpRpcClient::connect(d.server.addr());
    mallory.login("mallory", "pw").unwrap();
    let err = mallory
        .call("steering.kill", vec![Value::from(d.task.raw())])
        .unwrap_err();
    assert!(matches!(err, GaeError::Unauthorized(_)), "{err}");
    d.server.stop();
}

#[test]
fn steering_move_over_the_wire() {
    let d = deploy();
    let mut alice = TcpRpcClient::connect(d.server.addr());
    alice.login("alice", "pw").unwrap();
    let before = d.stack.jobmon.job_info(d.task).unwrap().site;
    let target = if before == SiteId::new(1) { 2u64 } else { 1u64 };
    alice
        .call(
            "steering.move",
            vec![Value::from(d.task.raw()), Value::from(target)],
        )
        .unwrap();
    let after = d.stack.jobmon.job_info(d.task).unwrap().site;
    assert_eq!(after, SiteId::new(target));
    assert_ne!(before, after);
    d.server.stop();
}

#[test]
fn estimator_service_over_the_wire() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());

    // Transfer-time estimate: 1 GB over the default 12.5 MB/s WAN is
    // around 86 s (± probe noise).
    let t = client
        .call(
            "estimator.transfer_time",
            vec![
                Value::from(1u64),
                Value::from(2u64),
                Value::from(1_000_000_000u64),
            ],
        )
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((t - 80.0).abs() < 15.0, "transfer estimate {t}");

    // Queue-time estimate for the running task: nothing above its
    // priority, so zero.
    let q = client
        .call(
            "estimator.queue_time",
            vec![
                Value::from(d.stack.jobmon.job_info(d.task).unwrap().site.raw()),
                Value::from(d.stack.jobmon.job_info(d.task).unwrap().condor.raw()),
            ],
        )
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(q, 0.0);

    // Runtime estimation faults cleanly with an empty history.
    let err = client
        .call(
            "estimator.estimate_runtime",
            vec![
                Value::from(1u64),
                Value::from("user-1"),
                Value::from("prime"),
                Value::from("default"),
                Value::from("compute"),
                Value::from(1u64),
                Value::from("batch"),
            ],
        )
        .unwrap_err();
    assert!(matches!(err, GaeError::Estimator(_)), "{err}");
    d.server.stop();
}

#[test]
fn estimator_learns_from_completions_over_the_stack() {
    let d = deploy();
    // Finish the 1000 s task; the collector observes its completion
    // and the runtime estimator learns from it.
    d.stack.run_until(SimTime::from_secs(1_200));
    let site = d.stack.jobmon.job_info(d.task).unwrap().site;
    let mut client = TcpRpcClient::connect(d.server.addr());
    let est = client
        .call(
            "estimator.estimate_runtime",
            vec![
                Value::from(site.raw()),
                Value::from(d.owner.to_string()),
                Value::from("prime"),
                Value::from("default"),
                Value::from("compute"),
                Value::from(1u64),
                Value::from("batch"),
            ],
        )
        .unwrap();
    let runtime_s = est.member("runtime_s").unwrap().as_f64().unwrap();
    assert!(
        (runtime_s - 1_000.0).abs() < 1.0,
        "one observation of 1000 s should predict {runtime_s}"
    );
    d.server.stop();
}

#[test]
fn concurrent_monitoring_clients_see_consistent_state() {
    let d = deploy();
    let addr = d.server.addr();
    let task = d.task.raw();
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut client = TcpRpcClient::connect(addr);
            for _ in 0..25 {
                let status = client
                    .call("jobmon.job_status", vec![Value::from(task)])
                    .unwrap();
                assert_eq!(status.as_str().unwrap(), "running");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(d.server.requests_served() >= 200);
    d.server.stop();
}

#[test]
fn wire_faults_map_back_to_typed_errors() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());
    let err = client
        .call("jobmon.job_info", vec![Value::from(99_999u64)])
        .unwrap_err();
    assert!(matches!(err, GaeError::NotFound(_)), "{err}");
    let err = client.call("jobmon.job_info", vec![]).unwrap_err();
    assert!(matches!(err, GaeError::Parse(_)), "{err}");
    let err = client.call("jobmon.no_such_method", vec![]).unwrap_err();
    assert!(matches!(err, GaeError::Rpc { code: -32601, .. }), "{err}");
    d.server.stop();
}

#[test]
fn list_active_over_the_wire_and_in_process() {
    let d = deploy();
    // In-process: exactly the one running task.
    let active = d.stack.jobmon.list_active();
    assert_eq!(active.len(), 1);
    assert_eq!(active[0].task, d.task);
    assert_eq!(active[0].status, TaskStatus::Running);
    // Over the wire: the same view.
    let mut client = TcpRpcClient::connect(d.server.addr());
    let wire = client.call("jobmon.list_active", vec![]).unwrap();
    let wire = wire.as_array().unwrap();
    assert_eq!(wire.len(), 1);
    let info = JobMonitoringInfo::from_value(&wire[0]).unwrap();
    assert_eq!(info.task, d.task);
    // Finish the job: the active list empties.
    d.stack.run_until(SimTime::from_secs(1_200));
    assert!(d.stack.jobmon.list_active().is_empty());
    d.server.stop();
}

#[test]
fn per_node_metrics_published_to_monalisa() {
    use gae::monitor::MetricKey;
    let d = deploy();
    let site = d.stack.jobmon.job_info(d.task).unwrap().site;
    // The node hosting the task reports one busy slot.
    let busy: f64 = (1..=4)
        .filter_map(|n| {
            d.stack
                .grid
                .monitor()
                .latest(&MetricKey::new(site, format!("node-{n}"), "busy_slots"))
                .map(|s| s.value)
        })
        .sum();
    assert_eq!(busy, 1.0, "exactly one slot busy across the site");
    d.server.stop();
}

#[test]
fn aggregate_job_status_over_the_wire() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());
    let s = client
        .call("jobmon.job_aggregate_status", vec![Value::from(1u64)])
        .unwrap();
    assert_eq!(s.as_str().unwrap(), "active");
    let tasks = client
        .call("jobmon.job_tasks", vec![Value::from(1u64)])
        .unwrap();
    assert_eq!(tasks.as_array().unwrap().len(), 1);
    // The host keeps serving after all that.
    assert_eq!(
        client.call("system.ping", vec![]).unwrap(),
        Value::from("pong")
    );
    let _ = &d.host;
    d.server.stop();
}
