//! Job-granularity steering: "kill, pause, and resume, change
//! priority of the job" (§4) applied to whole jobs, in-process and
//! over the wire.

use gae::core::steering::{SteeringCommand, SteeringRpc};
use gae::prelude::*;
use gae::rpc::{Credentials, Rpc, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::wire::Value;
use std::sync::Arc;

fn stack_with_job(tasks: u64, owner: UserId) -> (Arc<ServiceStack>, JobId) {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "a", 4, 2))
        .site(SiteDescription::new(SiteId::new(2), "b", 4, 2))
        .build();
    let stack = ServiceStack::over(grid);
    let mut job = JobSpec::new(JobId::new(1), "bulk", owner);
    for i in 1..=tasks {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "x")
                .with_cpu_demand(SimDuration::from_secs(500)),
        );
    }
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(20));
    (stack, JobId::new(1))
}

#[test]
fn pause_and_resume_whole_job() {
    let owner = UserId::new(1);
    let (stack, job) = stack_with_job(4, owner);
    let affected = stack
        .steering
        .command_job(owner, job, SteeringCommand::Pause)
        .unwrap();
    assert_eq!(affected, 4);
    for i in 1..=4 {
        assert_eq!(
            stack.jobmon.job_info(TaskId::new(i)).unwrap().status,
            TaskStatus::Suspended
        );
    }
    assert_eq!(stack.jobmon.job_status(job), JobStatus::Suspended);
    let affected = stack
        .steering
        .command_job(owner, job, SteeringCommand::Resume)
        .unwrap();
    assert_eq!(affected, 4);
    stack.run_until(SimTime::from_secs(600));
    assert_eq!(stack.jobmon.job_status(job), JobStatus::Completed);
}

#[test]
fn kill_whole_job_skips_settled_tasks() {
    let owner = UserId::new(1);
    let (stack, job) = stack_with_job(3, owner);
    // Settle one task first.
    stack
        .steering
        .command(owner, TaskId::new(1), SteeringCommand::Kill)
        .unwrap();
    let affected = stack
        .steering
        .command_job(owner, job, SteeringCommand::Kill)
        .unwrap();
    assert_eq!(affected, 2, "already-killed task skipped");
    assert_eq!(stack.jobmon.job_status(job), JobStatus::Killed);
}

#[test]
fn job_priority_sweep() {
    let owner = UserId::new(1);
    let (stack, job) = stack_with_job(3, owner);
    let affected = stack
        .steering
        .command_job(owner, job, SteeringCommand::SetPriority(Priority::HIGH))
        .unwrap();
    assert_eq!(affected, 3);
    for i in 1..=3 {
        assert_eq!(
            stack.jobmon.job_info(TaskId::new(i)).unwrap().priority,
            Priority::HIGH
        );
    }
}

#[test]
fn job_commands_enforce_ownership() {
    let owner = UserId::new(1);
    let (stack, job) = stack_with_job(2, owner);
    let err = stack
        .steering
        .command_job(UserId::new(2), job, SteeringCommand::Pause)
        .unwrap_err();
    assert!(matches!(err, GaeError::Unauthorized(_)));
    assert!(stack
        .steering
        .command_job(owner, JobId::new(99), SteeringCommand::Pause)
        .is_err());
}

#[test]
fn jobs_of_lists_only_the_owners_jobs() {
    let (stack, _job) = stack_with_job(1, UserId::new(1));
    let mut other = JobSpec::new(JobId::new(2), "other", UserId::new(2));
    other.add_task(
        TaskSpec::new(TaskId::new(50), "t", "x").with_cpu_demand(SimDuration::from_secs(10)),
    );
    stack.submit_job(other).unwrap();
    assert_eq!(stack.steering.jobs_of(UserId::new(1)), vec![JobId::new(1)]);
    assert_eq!(stack.steering.jobs_of(UserId::new(2)), vec![JobId::new(2)]);
    assert!(stack.steering.jobs_of(UserId::new(3)).is_empty());
}

#[test]
fn job_commands_over_the_wire() {
    let host = ServiceHost::open();
    host.sessions()
        .register(&Credentials::new("alice", "pw"))
        .unwrap();
    let owner = host.sessions().user_id("alice").unwrap();
    let (stack, job) = stack_with_job(3, owner);
    host.register(Arc::new(SteeringRpc::new(stack.steering.clone())));
    let server = TcpRpcServer::start(host, 4).unwrap();
    let mut client = TcpRpcClient::connect(server.addr());
    client.login("alice", "pw").unwrap();

    let mine = client.call("steering.my_jobs", vec![]).unwrap();
    assert_eq!(mine.as_array().unwrap().len(), 1);

    let paused = client
        .call("steering.pause_job", vec![Value::from(job.raw())])
        .unwrap();
    assert_eq!(paused, Value::Int64(3));
    assert_eq!(stack.jobmon.job_status(job), JobStatus::Suspended);

    let reprioritised = client
        .call(
            "steering.set_job_priority",
            vec![Value::from(job.raw()), Value::Int(7)],
        )
        .unwrap();
    assert_eq!(reprioritised, Value::Int64(3));

    let resumed = client
        .call("steering.resume_job", vec![Value::from(job.raw())])
        .unwrap();
    assert_eq!(resumed, Value::Int64(3));

    let killed = client
        .call("steering.kill_job", vec![Value::from(job.raw())])
        .unwrap();
    assert_eq!(killed, Value::Int64(3));
    assert_eq!(stack.jobmon.job_status(job), JobStatus::Killed);
    server.stop();
}
