//! Data-aware placement: §1 motivates services that manage "the
//! locations from where the jobs access their required data", and the
//! paper's scheduler counts file-transfer time in its decision (§6.1e
//! + §6.3). These tests pin that behaviour end to end.

use gae::prelude::*;
use gae::sim::{Link, NetworkModel};

fn grid_with_slow_wan() -> std::sync::Arc<gae::core::Grid> {
    // 1 MB/s between the two sites: staging 10 GB costs ~10,000 s.
    let mut net = NetworkModel::new(Link::new(1e6, SimDuration::from_millis(30)));
    net.set_symmetric(
        SiteId::new(1),
        SiteId::new(2),
        Link::new(1e6, SimDuration::from_millis(30)),
    );
    GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "data-site", 2, 1))
        .site(SiteDescription::new(SiteId::new(2), "compute-site", 2, 1).with_speed(1.5))
        .network(net)
        .build()
}

#[test]
fn big_inputs_pull_the_task_to_the_replica() {
    let stack = ServiceStack::over(grid_with_slow_wan());
    let mut job = JobSpec::new(JobId::new(1), "data-heavy", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "reco")
            .with_cpu_demand(SimDuration::from_secs(1_000))
            .with_inputs(vec![FileRef::new("lfn:/cms/events.root", 10_000_000_000)
                .with_replicas(vec![SiteId::new(1)])]),
    );
    let plan = stack.submit_job(job).unwrap();
    // Site 2 is 1.5x faster, but staging 10 GB at 1 MB/s dwarfs the
    // CPU gain: the scheduler must pick the replica site.
    assert_eq!(plan.site_of(task), Some(SiteId::new(1)));
}

#[test]
fn small_inputs_let_the_faster_cpu_win() {
    let stack = ServiceStack::over(grid_with_slow_wan());
    let mut job = JobSpec::new(JobId::new(1), "cpu-heavy", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "reco")
            .with_cpu_demand(SimDuration::from_secs(1_000))
            .with_inputs(vec![
                // 10 MB: ~10 s to stage, while the faster CPU saves ~333 s.
                FileRef::new("lfn:/cms/config.tgz", 10_000_000).with_replicas(vec![SiteId::new(1)]),
            ]),
    );
    let plan = stack.submit_job(job).unwrap();
    assert_eq!(plan.site_of(task), Some(SiteId::new(2)));
}

#[test]
fn produced_files_do_not_block_scheduling() {
    // Input files with no replicas anywhere are produced by earlier
    // pipeline stages; they must not error out the scheduler.
    let stack = ServiceStack::over(grid_with_slow_wan());
    let mut job = JobSpec::new(JobId::new(1), "pipeline", UserId::new(1));
    let a = job.add_task(
        TaskSpec::new(TaskId::new(1), "gen", "gen").with_cpu_demand(SimDuration::from_secs(10)),
    );
    let b = job.add_task(
        TaskSpec::new(TaskId::new(2), "reco", "reco")
            .with_cpu_demand(SimDuration::from_secs(10))
            .with_inputs(vec![FileRef::new("lfn:/tmp/gen-output.root", 1 << 30)]),
    );
    job.add_dependency(a, b);
    let plan = stack.submit_job(job).unwrap();
    assert!(plan.site_of(b).is_some());
    stack.run_until(SimTime::from_secs(60));
    assert_eq!(stack.jobmon.job_status(JobId::new(1)), JobStatus::Completed);
}

#[test]
fn transfer_estimate_matches_actual_staging_delay() {
    // The estimator's prediction (noisy iperf probe) must land within
    // a few percent of the *actual* staging delay the grid imposes.
    let stack = ServiceStack::over(grid_with_slow_wan());
    let mut job = JobSpec::new(JobId::new(1), "staged", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "reco")
            .with_cpu_demand(SimDuration::from_secs(100))
            .with_inputs(vec![
                FileRef::new("lfn:/data.root", 100_000_000).with_replicas(vec![SiteId::new(1)])
            ]),
    );
    // Force the non-replica site so staging actually happens.
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(2)]))
        .unwrap();
    let predicted = stack
        .estimators
        .estimate_transfer(
            &[FileRef::new("lfn:/data.root", 100_000_000).with_replicas(vec![SiteId::new(1)])],
            SiteId::new(2),
        )
        .unwrap()
        .as_secs_f64();

    // ~100 s staging at 1 MB/s, then 100 s of CPU.
    stack.run_until(SimTime::from_secs(50));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Pending, "still staging at t=50");
    stack.run_until(SimTime::from_secs(250));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    let actual_staging = info.started_at.unwrap().as_secs_f64();
    assert!(
        (actual_staging - 100.0).abs() < 1.0,
        "staging took {actual_staging}"
    );
    let rel = (predicted - actual_staging).abs() / actual_staging;
    assert!(
        rel < 0.07,
        "estimate {predicted} vs actual {actual_staging} (rel {rel})"
    );
}

#[test]
fn transfer_estimator_reports_cross_site_staging_cost() {
    let grid = grid_with_slow_wan();
    let stack = ServiceStack::over(grid);
    let files = vec![FileRef::new("a", 1_000_000_000).with_replicas(vec![SiteId::new(1)])];
    let at_replica = stack
        .estimators
        .estimate_transfer(&files, SiteId::new(1))
        .unwrap();
    let across_wan = stack
        .estimators
        .estimate_transfer(&files, SiteId::new(2))
        .unwrap();
    assert_eq!(at_replica, SimDuration::ZERO);
    let secs = across_wan.as_secs_f64();
    assert!((secs - 1_000.0).abs() < 100.0, "1 GB at ~1 MB/s: {secs}");
}
