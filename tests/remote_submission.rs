//! The full remote-client story: a physicist at a laptop submits a
//! DAG job over XML-RPC, watches it through the monitoring service,
//! steers it, and downloads the outcome — never touching an
//! in-process handle.

use gae::core::jobmon::JobMonitoringInfo;
use gae::core::submit::{job_to_value, SchedulerRpc};
use gae::prelude::*;
use gae::rpc::{Credentials, Rpc, ServiceHost, TcpRpcClient, TcpRpcServer};
use gae::wire::Value;
use std::sync::Arc;

struct Deployment {
    stack: Arc<ServiceStack>,
    server: TcpRpcServer,
}

fn deploy() -> Deployment {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 4, 1))
        .site(SiteDescription::new(SiteId::new(2), "beta", 4, 1).with_speed(2.0))
        .build();
    let stack = ServiceStack::over(grid);
    let host = ServiceHost::open();
    host.sessions()
        .register(&Credentials::new("alice", "pw"))
        .unwrap();
    host.register(Arc::new(SchedulerRpc::new(&stack)));
    host.register(Arc::new(gae::core::jobmon::JobMonitoringRpc::new(
        stack.jobmon.clone(),
    )));
    host.register(Arc::new(gae::core::steering::SteeringRpc::new(
        stack.steering.clone(),
    )));
    let server = TcpRpcServer::start(host, 4).unwrap();
    Deployment { stack, server }
}

fn demo_job() -> JobSpec {
    // Owner is overwritten by the session server-side.
    let mut job = JobSpec::new(JobId::new(1), "remote-analysis", UserId::new(0));
    let a = job.add_task(
        TaskSpec::new(TaskId::new(1), "gen", "gen").with_cpu_demand(SimDuration::from_secs(60)),
    );
    let b = job.add_task(
        TaskSpec::new(TaskId::new(2), "reco", "reco").with_cpu_demand(SimDuration::from_secs(120)),
    );
    job.add_dependency(a, b);
    job
}

#[test]
fn submit_requires_a_session() {
    let d = deploy();
    let mut anon = TcpRpcClient::connect(d.server.addr());
    let err = anon
        .call("scheduler.submit_job", vec![job_to_value(&demo_job())])
        .unwrap_err();
    assert!(matches!(err, GaeError::Unauthorized(_)));
    d.server.stop();
}

#[test]
fn full_remote_lifecycle() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());
    client.login("alice", "pw").unwrap();

    // Discover the grid.
    let sites = client.call("scheduler.sites", vec![]).unwrap();
    let sites = sites.as_array().unwrap();
    assert_eq!(sites.len(), 2);
    assert!(sites
        .iter()
        .all(|s| s.member("alive").unwrap().as_bool().unwrap()));

    // Submit the job; the fast site (beta, speed 2) must win.
    let plan = client
        .call("scheduler.submit_job", vec![job_to_value(&demo_job())])
        .unwrap();
    let assignments = plan.member("assignments").unwrap().as_array().unwrap();
    assert_eq!(assignments.len(), 2);
    for a in assignments {
        assert_eq!(
            a.member("site").unwrap().as_u64().unwrap(),
            2,
            "speed 2 wins"
        );
    }

    // The job is now steerable by its remote owner...
    client
        .call("steering.pause", vec![Value::from(1u64)])
        .unwrap();
    client
        .call("steering.resume", vec![Value::from(1u64)])
        .unwrap();

    // ...and observable. Drive the grid (the "server side" of the
    // deployment) and poll from the client.
    d.stack.run_until(SimTime::from_secs(400));
    let info = client
        .call("jobmon.job_info", vec![Value::from(2u64)])
        .unwrap();
    let info = JobMonitoringInfo::from_value(&info).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    assert_eq!(info.job, JobId::new(1));

    // Ownership followed the session, not the payload.
    let owner = d.stack.steering.tracked_job(JobId::new(1)).unwrap().owner();
    assert!(owner.raw() > 0);
    assert_eq!(
        d.stack.steering.jobs_of(owner),
        vec![JobId::new(1)],
        "the session user owns the job"
    );
    d.server.stop();
}

#[test]
fn submit_with_preference_and_restriction() {
    let d = deploy();
    let mut client = TcpRpcClient::connect(d.server.addr());
    client.login("alice", "pw").unwrap();
    // Restrict to the slow site explicitly.
    let plan = client
        .call(
            "scheduler.submit_job",
            vec![
                job_to_value(&demo_job()),
                Value::from("fast"),
                Value::Array(vec![Value::from(1u64)]),
            ],
        )
        .unwrap();
    for a in plan.member("assignments").unwrap().as_array().unwrap() {
        assert_eq!(a.member("site").unwrap().as_u64().unwrap(), 1);
    }
    // Garbage preference faults.
    let err = client
        .call(
            "scheduler.submit_job",
            vec![job_to_value(&demo_job()), Value::from("warp-speed")],
        )
        .unwrap_err();
    assert!(matches!(err, GaeError::Parse(_)));
    // Invalid job (cycle) faults.
    let mut bad = demo_job();
    bad.add_dependency(TaskId::new(2), TaskId::new(1));
    let err = client
        .call("scheduler.submit_job", vec![job_to_value(&bad)])
        .unwrap_err();
    assert!(matches!(err, GaeError::InvalidPlan(_)), "{err}");
    d.server.stop();
}
