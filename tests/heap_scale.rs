//! Event-heap scale proof (DESIGN.md §15): the simulation core must
//! drive 1,000+ sites with 100k+ in-flight tasks to settlement, and
//! the sharded driver must produce a byte-identical event schedule —
//! checked here as equal FNV-1a digests over every drained event, so
//! the full streams never have to be held side by side.
//!
//! The 64-site smoke variant always runs; the 1,000-site run is
//! skipped under unoptimised builds unless `HEAP_SCALE=1` forces it
//! (it is release-speed work — CI's `heap-scale` job runs it with
//! `--release`).

use gae::prelude::*;

/// FNV-1a over the byte-relevant fields of one drained event stream.
#[derive(Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn mix_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn event(&mut self, site: SiteId, e: &gae::exec::ExecEvent) {
        self.mix(site.raw());
        self.mix(e.seq);
        self.mix(e.at.as_micros());
        self.mix(e.condor.raw());
        self.mix(e.task.raw());
        self.mix_bytes(e.status.to_string().as_bytes());
        self.mix(e.node.map_or(u64::MAX, |n| n.raw()));
        self.mix_bytes(e.detail.as_bytes());
    }
}

/// Builds a grid of `sites` free sites (2 nodes × 2 slots) carrying
/// `tasks_per_site` queued tasks each, every 16th staging a 50 MB
/// input from the next site over, and drives it to settlement in
/// coarse one-hour strides. Returns the event digest, the event
/// count, and the settlement instant.
fn settle(sites: u64, tasks_per_site: u64, driver: DriverMode) -> (u64, u64, SimTime) {
    let mut builder = GridBuilder::new().driver(driver);
    for s in 1..=sites {
        builder = builder.site(SiteDescription::new(SiteId::new(s), format!("s{s}"), 2, 2));
    }
    let grid = builder.build();
    for s in 1..=sites {
        for k in 0..tasks_per_site {
            let id = s * 1_000_000 + k;
            let mut spec = TaskSpec::new(TaskId::new(id), format!("t{id}"), "app")
                .with_cpu_demand(SimDuration::from_secs(((s + k) % 50 + 1) * 60));
            if k % 16 == 0 {
                let src = SiteId::new(s % sites + 1);
                spec = spec.with_inputs(vec![
                    FileRef::new(format!("in{id}.root"), 50_000_000).with_replicas(vec![src])
                ]);
            }
            grid.submit(SiteId::new(s), spec, None).expect("free site");
        }
    }
    let mut digest = Digest::new();
    let mut count = 0u64;
    let mut hour = 0u64;
    loop {
        hour += 1;
        assert!(hour <= 2_000, "workload failed to settle");
        grid.advance_to(SimTime::from_secs(hour * 3_600));
        for (site, event) in grid.drain_events() {
            digest.event(site, &event);
            count += 1;
        }
        if grid.next_event_time().is_none() {
            break;
        }
    }
    assert_eq!(
        grid.next_event_time_uncached(),
        None,
        "cached index says settled but the site scan disagrees"
    );
    (digest.0, count, grid.now())
}

fn assert_drivers_agree(sites: u64, tasks_per_site: u64, threads: usize) {
    let (seq_digest, seq_count, seq_now) = settle(sites, tasks_per_site, DriverMode::Sequential);
    let (sh_digest, sh_count, sh_now) = settle(sites, tasks_per_site, DriverMode::sharded(threads));
    assert_eq!(seq_count, sh_count, "event counts diverged");
    assert_eq!(seq_now, sh_now, "settlement instants diverged");
    assert_eq!(seq_digest, sh_digest, "event streams diverged");
    // Every submitted task must have produced at least its queued /
    // running / terminal transitions.
    assert!(
        seq_count >= sites * tasks_per_site * 3,
        "only {seq_count} events for {} tasks",
        sites * tasks_per_site
    );
}

#[test]
fn smoke_64_sites_settle_identically() {
    assert_drivers_agree(64, 8, 4);
}

#[test]
fn thousand_sites_hundred_thousand_tasks_settle_identically() {
    if cfg!(debug_assertions) && std::env::var("HEAP_SCALE").is_err() {
        eprintln!("skipping 1,000-site run under an unoptimised build (set HEAP_SCALE=1 to force)");
        return;
    }
    assert_drivers_agree(1_000, 100, 8);
}
