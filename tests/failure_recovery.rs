//! Backup & Recovery (§4.2.4) under every failure mode the substrate
//! can inject: node failure, execution-service failure, repeated
//! failure until the attempt budget runs out, and recovery of the
//! site itself.

use gae::core::steering::{MoveReason, SteeringPolicy};
use gae::prelude::*;
use std::sync::Arc;

fn grid3() -> Arc<gae::core::Grid> {
    GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 2, 1))
        .site(SiteDescription::new(SiteId::new(2), "beta", 2, 1))
        .site(SiteDescription::new(SiteId::new(3), "gamma", 2, 1))
        .build()
}

fn one_task_job(demand_s: u64) -> (JobSpec, TaskId) {
    let mut job = JobSpec::new(JobId::new(1), "fragile", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "reco")
            .with_cpu_demand(SimDuration::from_secs(demand_s)),
    );
    (job, task)
}

#[test]
fn site_failure_triggers_rescheduling_and_completion() {
    let grid = grid3();
    let stack = ServiceStack::over(grid.clone());
    let (job, task) = one_task_job(300);
    let plan = stack.submit_job(job).unwrap();
    let first = plan.site_of(task).unwrap();

    stack.run_until(SimTime::from_secs(100));
    grid.exec(first).unwrap().lock().fail_site();
    stack.run_until(SimTime::from_secs(600));

    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(info.status, TaskStatus::Completed);
    assert_ne!(info.site, first);
    // Restarted from scratch after ~105 s (first poll past the
    // failure): completion ≈ 405.
    let done = info.completed_at.unwrap().as_secs_f64();
    assert!((done - 405.0).abs() < 10.0, "completion {done}");

    let notes = stack.steering.drain_notifications();
    assert!(notes
        .iter()
        .any(|n| matches!(n, Notification::TaskFailed { .. })));
    assert!(notes.iter().any(|n| matches!(
        n,
        Notification::TaskMoved {
            reason: MoveReason::Recovery,
            ..
        }
    )));
    assert!(notes
        .iter()
        .any(|n| matches!(n, Notification::JobCompleted { .. })));
}

#[test]
fn node_failure_fails_task_then_recovers_on_same_or_other_site() {
    let grid = grid3();
    let stack = ServiceStack::over(grid.clone());
    let (job, task) = one_task_job(300);
    let plan = stack.submit_job(job).unwrap();
    let first = plan.site_of(task).unwrap();
    stack.run_until(SimTime::from_secs(50));

    // Fail exactly the node hosting the task.
    let node = {
        let exec = grid.exec(first).unwrap();
        let guard = exec.lock();
        let condor = guard.condor_of(task).unwrap();
        guard.record(condor).unwrap().node.unwrap()
    };
    grid.exec(first).unwrap().lock().fail_node(node).unwrap();

    stack.run_until(SimTime::from_secs(600));
    let info = stack.jobmon.job_info(task).unwrap();
    assert_eq!(
        info.status,
        TaskStatus::Completed,
        "recovered after node failure"
    );
    // Recovery excluded the *site* of the failure, so it moved.
    assert_ne!(info.site, first);
}

#[test]
fn recovery_attempts_exhaust_into_job_failure() {
    // Two sites only; we keep killing whichever site hosts the task.
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "alpha", 1, 1))
        .site(SiteDescription::new(SiteId::new(2), "beta", 1, 1))
        .build();
    let policy = SteeringPolicy {
        max_recovery_attempts: 2,
        ..SteeringPolicy::default()
    };
    let stack = ServiceStack::with_policy(grid.clone(), policy, SimDuration::from_secs(5));
    let (job, task) = one_task_job(10_000);
    stack.submit_job(job).unwrap();

    for round in 0..4 {
        stack.run_until(SimTime::from_secs(20 * (round + 1)));
        if let Ok(info) = stack.jobmon.job_info(task) {
            if info.status.is_live() {
                // Revive the other site so the scheduler always has a
                // target, then kill the current host.
                for s in grid.site_ids() {
                    if s != info.site && !grid.is_alive(s) {
                        grid.exec(s).unwrap().lock().recover_site();
                    }
                }
                grid.exec(info.site).unwrap().lock().fail_site();
            }
        }
    }
    stack.run_until(SimTime::from_secs(200));
    let tracked = stack.steering.tracked_job(JobId::new(1)).unwrap();
    assert!(
        tracked.is_failed(),
        "task must be abandoned after 2 attempts"
    );
    let notes = stack.steering.drain_notifications();
    assert!(notes
        .iter()
        .any(|n| matches!(n, Notification::JobFailed { .. })));
}

#[test]
fn failure_with_no_replacement_site_fails_the_job() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "only", 1, 1))
        .build();
    let stack = ServiceStack::over(grid.clone());
    let (job, task) = one_task_job(500);
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(50));
    grid.exec(SiteId::new(1)).unwrap().lock().fail_site();
    stack.run_until(SimTime::from_secs(100));
    let tracked = stack.steering.tracked_job(JobId::new(1)).unwrap();
    assert!(tracked.is_failed());
    let notes = stack.steering.drain_notifications();
    assert!(
        notes.iter().any(|n| matches!(
            n,
            Notification::JobFailed { reason, .. } if reason.contains("no replacement site")
        )),
        "{notes:?}"
    );
    let _ = task;
}

#[test]
fn recovered_site_accepts_new_work() {
    let grid = grid3();
    let stack = ServiceStack::over(grid.clone());
    grid.exec(SiteId::new(1)).unwrap().lock().fail_site();
    assert!(!grid.is_alive(SiteId::new(1)));

    // Scheduling avoids the dead site.
    let (job, task) = one_task_job(50);
    let plan = stack.submit_job(job).unwrap();
    assert_ne!(plan.site_of(task).unwrap(), SiteId::new(1));

    grid.exec(SiteId::new(1)).unwrap().lock().recover_site();
    assert!(grid.is_alive(SiteId::new(1)));
    let mut job2 = JobSpec::new(JobId::new(2), "j2", UserId::new(1));
    let t2 = job2.add_task(
        TaskSpec::new(TaskId::new(2), "t2", "reco").with_cpu_demand(SimDuration::from_secs(50)),
    );
    let plan2 = stack
        .submit_plan(&AbstractPlan::new(job2).restricted_to(vec![SiteId::new(1)]))
        .unwrap();
    assert_eq!(plan2.site_of(t2).unwrap(), SiteId::new(1));
    stack.run_until(SimTime::from_secs(120));
    assert_eq!(
        stack.jobmon.job_info(t2).unwrap().status,
        TaskStatus::Completed
    );
}

#[test]
fn dag_job_survives_mid_pipeline_failure() {
    let grid = grid3();
    let stack = ServiceStack::over(grid.clone());
    let mut job = JobSpec::new(JobId::new(1), "pipeline", UserId::new(1));
    let a = job.add_task(
        TaskSpec::new(TaskId::new(1), "a", "step").with_cpu_demand(SimDuration::from_secs(60)),
    );
    let b = job.add_task(
        TaskSpec::new(TaskId::new(2), "b", "step").with_cpu_demand(SimDuration::from_secs(60)),
    );
    job.add_dependency(a, b);
    stack.submit_job(job).unwrap();

    // Let a finish, let b start, then kill b's site.
    stack.run_until(SimTime::from_secs(80));
    let b_site = stack.jobmon.job_info(b).unwrap().site;
    grid.exec(b_site).unwrap().lock().fail_site();
    stack.run_until(SimTime::from_secs(400));

    assert_eq!(
        stack.jobmon.job_info(a).unwrap().status,
        TaskStatus::Completed
    );
    let b_info = stack.jobmon.job_info(b).unwrap();
    assert_eq!(b_info.status, TaskStatus::Completed);
    assert_ne!(b_info.site, b_site);
    assert_eq!(stack.jobmon.job_status(JobId::new(1)), JobStatus::Completed);
}

#[test]
fn sharded_driver_recovers_each_task_exactly_once() {
    // Backup & Recovery under the parallel driver: kill a site while
    // the sharded workers are mid-run, then check every stranded task
    // is resubmitted exactly once (one Recovery move each, one
    // recovery_attempt each) and completes elsewhere.
    let grid = GridBuilder::new()
        .driver(DriverMode::sharded(3))
        .site(SiteDescription::new(SiteId::new(1), "alpha", 2, 1))
        .site(SiteDescription::new(SiteId::new(2), "beta", 2, 1))
        .site(SiteDescription::new(SiteId::new(3), "gamma", 2, 1))
        .build();
    let stack = ServiceStack::over(grid.clone());
    let mut job = JobSpec::new(JobId::new(1), "wide", UserId::new(1));
    let tasks: Vec<TaskId> = (1..=4)
        .map(|i| {
            job.add_task(
                TaskSpec::new(TaskId::new(i), format!("t{i}"), "reco")
                    .with_cpu_demand(SimDuration::from_secs(300)),
            )
        })
        .collect();
    stack.submit_job(job).unwrap();

    stack.run_until(SimTime::from_secs(100));
    // Kill whichever site hosts task 1; its whole queue is stranded.
    let victim = stack.jobmon.job_info(tasks[0]).unwrap().site;
    let stranded: Vec<TaskId> = tasks
        .iter()
        .copied()
        .filter(|t| stack.jobmon.job_info(*t).unwrap().site == victim)
        .collect();
    assert!(!stranded.is_empty());
    grid.exec(victim).unwrap().lock().fail_site();
    stack.run_until(SimTime::from_secs(1200));

    let notes = stack.steering.drain_notifications();
    let tracked = stack.steering.tracked_job(JobId::new(1)).unwrap();
    for t in &tasks {
        let info = stack.jobmon.job_info(*t).unwrap();
        assert_eq!(info.status, TaskStatus::Completed, "task {t}");
        let recoveries = notes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Notification::TaskMoved {
                        task,
                        reason: MoveReason::Recovery,
                        ..
                    } if task == t
                )
            })
            .count();
        let expected = usize::from(stranded.contains(t));
        assert_eq!(recoveries, expected, "recovery moves for task {t}");
        assert_eq!(
            tracked.tasks[t].recovery_attempts, expected as u32,
            "recovery attempts for task {t}"
        );
        if stranded.contains(t) {
            assert_ne!(info.site, victim, "task {t} must have left the dead site");
        }
    }
}

#[test]
fn sharded_driver_respects_recovery_attempt_cap() {
    // Same attempt-budget semantics as the sequential driver: with
    // max_recovery_attempts = 2, the third failure abandons the task.
    let grid = GridBuilder::new()
        .driver(DriverMode::sharded(2))
        .site(SiteDescription::new(SiteId::new(1), "alpha", 1, 1))
        .site(SiteDescription::new(SiteId::new(2), "beta", 1, 1))
        .build();
    let policy = SteeringPolicy {
        max_recovery_attempts: 2,
        ..SteeringPolicy::default()
    };
    let stack = ServiceStack::with_policy(grid.clone(), policy, SimDuration::from_secs(5));
    let (job, task) = one_task_job(10_000);
    stack.submit_job(job).unwrap();

    for round in 0..4 {
        stack.run_until(SimTime::from_secs(20 * (round + 1)));
        if let Ok(info) = stack.jobmon.job_info(task) {
            if info.status.is_live() {
                for s in grid.site_ids() {
                    if s != info.site && !grid.is_alive(s) {
                        grid.exec(s).unwrap().lock().recover_site();
                    }
                }
                grid.exec(info.site).unwrap().lock().fail_site();
            }
        }
    }
    stack.run_until(SimTime::from_secs(200));
    let tracked = stack.steering.tracked_job(JobId::new(1)).unwrap();
    assert!(tracked.is_failed(), "abandoned after the attempt budget");
    assert_eq!(tracked.tasks[&task].recovery_attempts, 3);
    let notes = stack.steering.drain_notifications();
    assert!(notes
        .iter()
        .any(|n| matches!(n, Notification::JobFailed { .. })));
}
