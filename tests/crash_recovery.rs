//! Crash-injection recovery, property-tested (DESIGN.md §8).
//!
//! Each case runs the same randomly generated workload twice: a
//! reference stack that records a digest of all persisted state at
//! every commit point, and a persisted stack that writes a WAL and
//! snapshots while running. The persisted stack is then "killed"
//! (dropped mid-history), its on-disk store is corrupted at a random
//! point — torn tail, flipped bit, or duplicated tail — and a fresh
//! stack is rebuilt with `recover_from_disk`. Recovery must always
//! succeed, and the rebuilt state must be *prefix-consistent*: exactly
//! equal to the reference digest at the reported commit index, under
//! both the sequential and the sharded driver.

use gae::durable::fault::unique_temp_dir;
use gae::prelude::*;
use proptest::prelude::*;

#[path = "harness/mod.rs"]
mod harness;
use harness::{
    arb_scenario, build_grid, corrupt_store, digest, driver_for, estimate_probe, persisted_run,
    reference_digests, reference_stack_at, Scenario,
};

proptest! {
    // 128 cases by default (CI raises this via PROPTEST_CASES); the
    // `sharded` flag inside the scenario alternates drivers, so both
    // DriverMode::Sequential and DriverMode::Sharded recovery paths
    // see ~half the corpus each.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn recovery_is_prefix_consistent_with_uncrashed_run(scenario in arb_scenario()) {
        let dir = unique_temp_dir("crash-recovery");
        let config = PersistenceConfig::new(&dir)
            .snapshot_every(SimDuration::from_secs(
                scenario.snapshot_steps * scenario.step_secs,
            ))
            .fsync(false);
        let digests = reference_digests(&scenario);
        persisted_run(&scenario, &config);
        let what = corrupt_store(&scenario, &dir);

        // Recovery must always succeed under a single fault, and may
        // recover with the opposite driver mode from the writer.
        let grid = build_grid(&scenario, driver_for(&scenario), None);
        let (stack, report) = ServiceStack::recover_from_disk(
            grid,
            SteeringPolicy::default(),
            SimDuration::from_secs(5),
            &config,
        )
        .unwrap_or_else(|e| panic!("recovery failed after {what}: {e}"));

        let j = report.commit_index as usize;
        prop_assert!(
            j < digests.len(),
            "recovered commit index {j} beyond {} reference commits ({what})",
            digests.len() - 1
        );
        prop_assert_eq!(
            digest(&stack),
            digests[j].clone(),
            "state diverged at commit {} ({}) scenario={:?}",
            j,
            what,
            scenario
        );
        // Every resubmitted task must have been in the Submitted phase
        // of the recovered tracker.
        for t in &report.resubmitted {
            let job = stack.steering.export_jobs()
                .into_iter()
                .find(|jb| jb.tasks.contains_key(t))
                .expect("resubmitted task is tracked");
            prop_assert!(matches!(
                job.tasks[t].phase,
                gae::core::steering::TaskPhase::Submitted { .. }
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crash recovery under *scenario* load (DESIGN.md §12): instead of
/// the uniform proptest workload, the submissions follow the chaos-
/// grid scenario's non-uniform arrival pattern — heavy-tailed task
/// demands at bursty instants, staggered across step boundaries. The
/// persisted sharded run crashes at the scenario's own crash tick;
/// recovery must land exactly on the sequential reference digest at
/// that commit point and then drive the remaining work to settlement.
#[test]
fn recovery_is_prefix_consistent_under_scenario_load() {
    use gae::trace::ScenarioSpec;

    let spec = ScenarioSpec::chaos_grid(7).smoke();
    let crash_at = spec.crash_at_s.expect("chaos grid declares a crash tick");

    // One commit point (run_until) per 60 s boundary; the crash tick
    // itself is always a boundary so the persisted run dies exactly
    // on a commit the reference also recorded.
    let step = 60u64;
    let mut boundaries: Vec<u64> = (1..)
        .map(|k| k * step)
        .take_while(|t| *t < crash_at)
        .collect();
    boundaries.push(crash_at);

    let build = |driver: DriverMode, persist: Option<&PersistenceConfig>| {
        let mut builder = GridBuilder::new().driver(driver);
        for (i, site) in spec.sites.iter().enumerate() {
            let desc = SiteDescription::new(
                SiteId::new(i as u64 + 1),
                format!("s{i}"),
                site.nodes,
                site.slots,
            );
            builder = if site.load > 0.0 {
                builder.site_with_load(desc, site.load)
            } else {
                builder.site(desc)
            };
        }
        if let Some(config) = persist {
            builder = builder.persist(config.clone());
        }
        builder.build()
    };

    // Submit every arrival with `at_s` in [from, to) — plain compute
    // jobs shaped by the scenario's heavy-tailed demands. Both runs
    // see the identical sequence, so scheduling refusals (if any) are
    // equivalence-preserving.
    let submit_window = |stack: &ServiceStack, from: u64, to: u64| {
        for (n, arrival) in spec.arrivals.iter().enumerate() {
            if arrival.at_s < from || arrival.at_s >= to {
                continue;
            }
            let job_no = n as u64 + 1;
            let mut job = JobSpec::new(
                JobId::new(job_no),
                format!("chaos{job_no}"),
                UserId::new(arrival.vo as u64),
            );
            let mut prev = None;
            for (k, shape) in arrival.tasks.iter().enumerate() {
                let id = TaskId::new(job_no * 1000 + k as u64);
                job.add_task(
                    TaskSpec::new(id, format!("c{job_no}-{k}"), "analysis")
                        .with_cpu_demand(SimDuration::from_secs(shape.demand_s)),
                );
                if let Some(p) = prev {
                    job.add_dependency(p, id);
                }
                prev = Some(id);
            }
            let _ = stack.submit_job(job);
        }
    };

    // Reference: sequential, no persistence, digest at every commit.
    let reference = {
        let stack = ServiceStack::over(build(DriverMode::Sequential, None));
        let mut digests = vec![digest(&stack)];
        let mut from = 0;
        for &t in &boundaries {
            submit_window(&stack, from, t);
            stack.run_until(SimTime::from_secs(t));
            digests.push(digest(&stack));
            from = t;
        }
        digests
    };

    // Persisted sharded run, killed right after the crash-tick commit
    // (dropped before any further submission).
    let dir = unique_temp_dir("crash-scenario-load");
    let config = PersistenceConfig::new(&dir)
        .snapshot_every(SimDuration::from_secs(3 * step))
        .fsync(false);
    {
        let stack = ServiceStack::over(build(DriverMode::sharded(2), Some(&config)));
        let mut from = 0;
        for &t in &boundaries {
            submit_window(&stack, from, t);
            stack.run_until(SimTime::from_secs(t));
            from = t;
        }
    }

    let (stack, report) = ServiceStack::recover_from_disk(
        build(DriverMode::sharded(2), None),
        SteeringPolicy::default(),
        SimDuration::from_secs(5),
        &config,
    )
    .expect("uncorrupted recovery under scenario load");
    let j = report.commit_index as usize;
    assert_eq!(j, boundaries.len(), "recovered the full commit history");
    assert_eq!(
        digest(&stack),
        reference[j],
        "scenario-load recovery diverged from the reference at commit {j}"
    );

    // The continuation is live: submit the post-crash tail of the
    // scenario (virtual time restarts at zero after recovery, so the
    // remaining arrivals are re-anchored there) and settle everything.
    submit_window(&stack, crash_at, u64::MAX);
    stack.run_until(SimTime::from_secs(spec.drain_s));
    for job in &stack.steering.export_jobs() {
        for (t, tracked) in &job.tasks {
            assert!(
                tracked.phase.is_settled(),
                "{t} did not settle after scenario-load recovery: {:?}",
                tracked.phase
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// After recovery the stack is live: driving it onwards settles every
/// recovered task exactly once (no duplicate submissions, no losses).
#[test]
fn recovered_stack_runs_to_completion() {
    let dir = unique_temp_dir("crash-continue");
    let config = PersistenceConfig::new(&dir)
        .snapshot_every(SimDuration::from_secs(30))
        .fsync(false);
    let scenario = Scenario {
        sites: vec![(2, 2, 0), (1, 1, 2), (2, 1, 0)],
        flock_edges: vec![],
        jobs: vec![
            (vec![40, 25, 30], vec![(0, 1), (1, 2)]),
            (vec![15, 0], vec![]),
        ],
        steps: 3,
        step_secs: 20,
        snapshot_steps: 1,
        sharded: false,
        victim: 0,
        kind: 0,
        extent: 0,
        bit: 0,
    };
    persisted_run(&scenario, &config);

    let grid = build_grid(&scenario, DriverMode::sharded(2), None);
    let (stack, report) = ServiceStack::recover_from_disk(
        grid,
        SteeringPolicy::default(),
        SimDuration::from_secs(5),
        &config,
    )
    .expect("uncorrupted recovery");
    assert_eq!(report.commit_index, 3, "three run_until commit points");
    assert!(!report.tail_was_torn);
    assert!(!report.used_fallback);

    // The recovered columnar history drives the same estimates as the
    // uncrashed reference at the same commit point — segment digests
    // match (via `digest`), and so do the estimates derived from them.
    let reference = reference_stack_at(&scenario, 3);
    assert_eq!(digest(&stack), digest(&reference));
    assert_eq!(
        estimate_probe(&stack),
        estimate_probe(&reference),
        "recovered history store produced different estimates"
    );

    // Finish the work: every tracked task must settle.
    stack.run_until(SimTime::from_secs(400));
    let jobs = stack.steering.export_jobs();
    assert!(!jobs.is_empty(), "recovered tracker lost the jobs");
    for job in &jobs {
        for (t, tracked) in &job.tasks {
            assert!(
                tracked.phase.is_settled(),
                "{t} did not settle after recovery: {:?}",
                tracked.phase
            );
        }
    }
    // Exactly-once accounting: one completion charge per task, spread
    // over the pre-crash ledger (restored) and the post-crash run.
    let total_tasks: usize = jobs.iter().map(|j| j.tasks.len()).sum();
    assert!(stack.quota.ledger().len() <= total_tasks);
    std::fs::remove_dir_all(&dir).ok();
}
