//! Crash-injection recovery, property-tested (DESIGN.md §8).
//!
//! Each case runs the same randomly generated workload twice: a
//! reference stack that records a digest of all persisted state at
//! every commit point, and a persisted stack that writes a WAL and
//! snapshots while running. The persisted stack is then "killed"
//! (dropped mid-history), its on-disk store is corrupted at a random
//! point — torn tail, flipped bit, or duplicated tail — and a fresh
//! stack is rebuilt with `recover_from_disk`. Recovery must always
//! succeed, and the rebuilt state must be *prefix-consistent*: exactly
//! equal to the reference digest at the reported commit index, under
//! both the sequential and the sharded driver.

use gae::durable::fault::{inject, store_files, unique_temp_dir};
use gae::durable::Corruption;
use gae::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Per job: task demands in seconds and raw dependency index pairs.
type JobShape = (Vec<u64>, Vec<(usize, usize)>);

/// One generated grid + workload + crash point, in plain data form so
/// the same scenario can be materialised several times.
#[derive(Clone, Debug)]
struct Scenario {
    /// Per site: (nodes, slots per node, external load in quarters).
    sites: Vec<(u32, u32, u64)>,
    /// Flocking edges as site-index pairs (self-edges skipped).
    flock_edges: Vec<(usize, usize)>,
    /// Per job: task demands and dependency edges (applied low → high).
    jobs: Vec<JobShape>,
    /// run_until steps to drive before the crash (= commit points).
    steps: usize,
    /// Seconds of virtual time per step.
    step_secs: u64,
    /// Snapshot cadence in steps (1 = rotate at every checkpoint).
    snapshot_steps: u64,
    /// Whether the persisted run and the recovered run use the
    /// sharded driver (the reference is always sequential).
    sharded: bool,
    /// Which store file the corruption lands in (modulo file count).
    victim: u64,
    /// Corruption kind selector (0 truncate, 1 bit flip, 2 duplicate).
    kind: u8,
    /// Byte length / offset raw material (modulo file length).
    extent: u64,
    /// Bit to flip within the victim byte.
    bit: u8,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let site = (1u32..4, 1u32..3, 0u64..4);
    let edge = (any::<prop::sample::Index>(), any::<prop::sample::Index>());
    let job = (
        prop::collection::vec(0u64..60, 1..6),
        prop::collection::vec(edge, 0..4),
    );
    (
        (
            prop::collection::vec(site, 1..9),
            prop::collection::vec(edge, 0..4),
            prop::collection::vec(job, 1..4),
            1usize..6,
            5u64..40,
            1u64..4,
        ),
        (
            any::<bool>(),
            0u64..1_000_000,
            0u8..3,
            0u64..1_000_000,
            0u8..8,
        ),
    )
        .prop_map(
            |(
                (sites, raw_flocks, raw_jobs, steps, step_secs, snapshot_steps),
                (sharded, victim, kind, extent, bit),
            )| {
                let n = sites.len();
                let flock_edges = raw_flocks
                    .into_iter()
                    .map(|(a, b)| (a.index(n), b.index(n)))
                    .collect();
                let jobs = raw_jobs
                    .into_iter()
                    .map(|(demands, raw_deps)| {
                        let t = demands.len();
                        let deps = raw_deps
                            .into_iter()
                            .map(|(a, b)| (a.index(t), b.index(t)))
                            .collect();
                        (demands, deps)
                    })
                    .collect();
                Scenario {
                    sites,
                    flock_edges,
                    jobs,
                    steps,
                    step_secs,
                    snapshot_steps,
                    sharded,
                    victim,
                    kind,
                    extent,
                    bit,
                }
            },
        )
}

fn build_grid(
    scenario: &Scenario,
    driver: DriverMode,
    persist: Option<&PersistenceConfig>,
) -> Arc<Grid> {
    let mut builder = GridBuilder::new().driver(driver);
    for (i, (nodes, slots, load_quarters)) in scenario.sites.iter().enumerate() {
        let desc = SiteDescription::new(SiteId::new(i as u64 + 1), format!("s{i}"), *nodes, *slots);
        builder = if *load_quarters == 0 {
            builder.site(desc)
        } else {
            builder.site_with_load(desc, *load_quarters as f64 * 0.25)
        };
    }
    if let Some(config) = persist {
        builder = builder.persist(config.clone());
    }
    let grid = builder.build();
    for (a, b) in &scenario.flock_edges {
        if a != b {
            grid.enable_flocking(SiteId::new(*a as u64 + 1), SiteId::new(*b as u64 + 1));
        }
    }
    grid
}

fn submit_workload(scenario: &Scenario, stack: &ServiceStack) {
    for (j, (demands, deps)) in scenario.jobs.iter().enumerate() {
        let job_no = j as u64 + 1;
        let mut job = JobSpec::new(JobId::new(job_no), format!("job{job_no}"), UserId::new(1));
        let mut ids = Vec::new();
        for (k, demand) in demands.iter().enumerate() {
            let id = TaskId::new(job_no * 1000 + k as u64);
            job.add_task(
                TaskSpec::new(id, format!("t{job_no}-{k}"), "app")
                    .with_cpu_demand(SimDuration::from_secs(*demand)),
            );
            ids.push(id);
        }
        for (a, b) in deps {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi {
                job.add_dependency(ids[*lo], ids[*hi]);
            }
        }
        // Scheduling can legitimately fail; both runs see the same
        // spec, so failures are equivalence-preserving.
        let _ = stack.submit_job(job);
    }
}

/// A deterministic digest of everything the durability contract
/// promises to reconstruct: the job repository, the retained MonALISA
/// event log and eviction counter, the steering tracker (minus Condor
/// ids, which are legitimately reissued on re-arm), and accounting.
/// Metric *series* are snapshot-only by contract and excluded.
fn digest(stack: &ServiceStack) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "evicted={}", stack.grid.monitor().evicted_count()).unwrap();
    for e in stack.grid.monitor().events_snapshot() {
        writeln!(out, "event {e:?}").unwrap();
    }
    for info in stack.jobmon.db_snapshot() {
        writeln!(out, "jobmon {info:?}").unwrap();
    }
    for job in stack.steering.export_jobs() {
        writeln!(
            out,
            "job {} rev={} notified={}",
            job.plan.job_id(),
            job.plan.revision,
            job.completion_notified
        )
        .unwrap();
        for a in &job.plan.assignments {
            writeln!(out, "  assign {} -> {}", a.task, a.site).unwrap();
        }
        let mut task_ids: Vec<_> = job.tasks.keys().copied().collect();
        task_ids.sort();
        for t in task_ids {
            let tracked = &job.tasks[&t];
            let phase = match tracked.phase {
                gae::core::steering::TaskPhase::WaitingPrereqs => "waiting".to_string(),
                gae::core::steering::TaskPhase::Submitted { site, .. } => {
                    format!("submitted@{site}")
                }
                gae::core::steering::TaskPhase::Done { site } => format!("done@{site}"),
                gae::core::steering::TaskPhase::Failed => "failed".to_string(),
                gae::core::steering::TaskPhase::Killed => "killed".to_string(),
            };
            writeln!(
                out,
                "  task {t} {phase} attempts={} moves={}",
                tracked.recovery_attempts, tracked.moves
            )
            .unwrap();
        }
    }
    for (user, balance) in stack.quota.balances_snapshot() {
        writeln!(out, "balance {user} {balance:?}").unwrap();
    }
    for c in stack.quota.ledger() {
        writeln!(out, "charge {c:?}").unwrap();
    }
    out
}

/// Reference run (no persistence, sequential driver): the digest at
/// every commit point `0..=steps`.
fn reference_digests(scenario: &Scenario) -> Vec<String> {
    let grid = build_grid(scenario, DriverMode::Sequential, None);
    let stack = ServiceStack::over(grid);
    // Commit 0 is the state before anything was committed: empty.
    let mut digests = vec![digest(&stack)];
    submit_workload(scenario, &stack);
    for step in 1..=scenario.steps {
        stack.run_until(SimTime::from_secs(step as u64 * scenario.step_secs));
        digests.push(digest(&stack));
    }
    digests
}

fn driver_for(scenario: &Scenario) -> DriverMode {
    if scenario.sharded {
        DriverMode::sharded(3)
    } else {
        DriverMode::Sequential
    }
}

/// Runs the persisted stack to the crash horizon and drops it.
fn persisted_run(scenario: &Scenario, config: &PersistenceConfig) {
    let grid = build_grid(scenario, driver_for(scenario), Some(config));
    let stack = ServiceStack::over(grid);
    submit_workload(scenario, &stack);
    for step in 1..=scenario.steps {
        stack.run_until(SimTime::from_secs(step as u64 * scenario.step_secs));
    }
    // Process death: the stack is dropped with no orderly shutdown.
}

/// Applies the scenario's corruption to one on-disk store file.
/// Returns a description of what was done (for failure messages).
fn corrupt_store(scenario: &Scenario, dir: &std::path::Path) -> String {
    let files = store_files(dir).expect("list store files");
    assert!(!files.is_empty(), "persisted run left no store files");
    let victim = &files[scenario.victim as usize % files.len()];
    let len = std::fs::metadata(victim)
        .map(|m| m.len() as usize)
        .unwrap_or(0)
        .max(1);
    let extent = scenario.extent as usize % len;
    let corruption = match scenario.kind {
        0 => Corruption::TruncateTail {
            bytes: extent as u64 + 1,
        },
        1 => Corruption::FlipBit {
            offset: extent as u64,
            bit: scenario.bit,
        },
        _ => Corruption::DuplicateTail {
            bytes: extent as u64 + 1,
        },
    };
    let applied = inject(victim, &corruption).expect("inject corruption");
    format!("{corruption:?} applied={applied} to {}", victim.display())
}

proptest! {
    // 128 cases by default (CI raises this via PROPTEST_CASES); the
    // `sharded` flag inside the scenario alternates drivers, so both
    // DriverMode::Sequential and DriverMode::Sharded recovery paths
    // see ~half the corpus each.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn recovery_is_prefix_consistent_with_uncrashed_run(scenario in arb_scenario()) {
        let dir = unique_temp_dir("crash-recovery");
        let config = PersistenceConfig::new(&dir)
            .snapshot_every(SimDuration::from_secs(
                scenario.snapshot_steps * scenario.step_secs,
            ))
            .fsync(false);
        let digests = reference_digests(&scenario);
        persisted_run(&scenario, &config);
        let what = corrupt_store(&scenario, &dir);

        // Recovery must always succeed under a single fault, and may
        // recover with the opposite driver mode from the writer.
        let grid = build_grid(&scenario, driver_for(&scenario), None);
        let (stack, report) = ServiceStack::recover_from_disk(
            grid,
            SteeringPolicy::default(),
            SimDuration::from_secs(5),
            &config,
        )
        .unwrap_or_else(|e| panic!("recovery failed after {what}: {e}"));

        let j = report.commit_index as usize;
        prop_assert!(
            j < digests.len(),
            "recovered commit index {j} beyond {} reference commits ({what})",
            digests.len() - 1
        );
        prop_assert_eq!(
            digest(&stack),
            digests[j].clone(),
            "state diverged at commit {} ({}) scenario={:?}",
            j,
            what,
            scenario
        );
        // Every resubmitted task must have been in the Submitted phase
        // of the recovered tracker.
        for t in &report.resubmitted {
            let job = stack.steering.export_jobs()
                .into_iter()
                .find(|jb| jb.tasks.contains_key(t))
                .expect("resubmitted task is tracked");
            prop_assert!(matches!(
                job.tasks[t].phase,
                gae::core::steering::TaskPhase::Submitted { .. }
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crash recovery under *scenario* load (DESIGN.md §12): instead of
/// the uniform proptest workload, the submissions follow the chaos-
/// grid scenario's non-uniform arrival pattern — heavy-tailed task
/// demands at bursty instants, staggered across step boundaries. The
/// persisted sharded run crashes at the scenario's own crash tick;
/// recovery must land exactly on the sequential reference digest at
/// that commit point and then drive the remaining work to settlement.
#[test]
fn recovery_is_prefix_consistent_under_scenario_load() {
    use gae::trace::ScenarioSpec;

    let spec = ScenarioSpec::chaos_grid(7).smoke();
    let crash_at = spec.crash_at_s.expect("chaos grid declares a crash tick");

    // One commit point (run_until) per 60 s boundary; the crash tick
    // itself is always a boundary so the persisted run dies exactly
    // on a commit the reference also recorded.
    let step = 60u64;
    let mut boundaries: Vec<u64> = (1..)
        .map(|k| k * step)
        .take_while(|t| *t < crash_at)
        .collect();
    boundaries.push(crash_at);

    let build = |driver: DriverMode, persist: Option<&PersistenceConfig>| {
        let mut builder = GridBuilder::new().driver(driver);
        for (i, site) in spec.sites.iter().enumerate() {
            let desc = SiteDescription::new(
                SiteId::new(i as u64 + 1),
                format!("s{i}"),
                site.nodes,
                site.slots,
            );
            builder = if site.load > 0.0 {
                builder.site_with_load(desc, site.load)
            } else {
                builder.site(desc)
            };
        }
        if let Some(config) = persist {
            builder = builder.persist(config.clone());
        }
        builder.build()
    };

    // Submit every arrival with `at_s` in [from, to) — plain compute
    // jobs shaped by the scenario's heavy-tailed demands. Both runs
    // see the identical sequence, so scheduling refusals (if any) are
    // equivalence-preserving.
    let submit_window = |stack: &ServiceStack, from: u64, to: u64| {
        for (n, arrival) in spec.arrivals.iter().enumerate() {
            if arrival.at_s < from || arrival.at_s >= to {
                continue;
            }
            let job_no = n as u64 + 1;
            let mut job = JobSpec::new(
                JobId::new(job_no),
                format!("chaos{job_no}"),
                UserId::new(arrival.vo as u64),
            );
            let mut prev = None;
            for (k, shape) in arrival.tasks.iter().enumerate() {
                let id = TaskId::new(job_no * 1000 + k as u64);
                job.add_task(
                    TaskSpec::new(id, format!("c{job_no}-{k}"), "analysis")
                        .with_cpu_demand(SimDuration::from_secs(shape.demand_s)),
                );
                if let Some(p) = prev {
                    job.add_dependency(p, id);
                }
                prev = Some(id);
            }
            let _ = stack.submit_job(job);
        }
    };

    // Reference: sequential, no persistence, digest at every commit.
    let reference = {
        let stack = ServiceStack::over(build(DriverMode::Sequential, None));
        let mut digests = vec![digest(&stack)];
        let mut from = 0;
        for &t in &boundaries {
            submit_window(&stack, from, t);
            stack.run_until(SimTime::from_secs(t));
            digests.push(digest(&stack));
            from = t;
        }
        digests
    };

    // Persisted sharded run, killed right after the crash-tick commit
    // (dropped before any further submission).
    let dir = unique_temp_dir("crash-scenario-load");
    let config = PersistenceConfig::new(&dir)
        .snapshot_every(SimDuration::from_secs(3 * step))
        .fsync(false);
    {
        let stack = ServiceStack::over(build(DriverMode::sharded(2), Some(&config)));
        let mut from = 0;
        for &t in &boundaries {
            submit_window(&stack, from, t);
            stack.run_until(SimTime::from_secs(t));
            from = t;
        }
    }

    let (stack, report) = ServiceStack::recover_from_disk(
        build(DriverMode::sharded(2), None),
        SteeringPolicy::default(),
        SimDuration::from_secs(5),
        &config,
    )
    .expect("uncorrupted recovery under scenario load");
    let j = report.commit_index as usize;
    assert_eq!(j, boundaries.len(), "recovered the full commit history");
    assert_eq!(
        digest(&stack),
        reference[j],
        "scenario-load recovery diverged from the reference at commit {j}"
    );

    // The continuation is live: submit the post-crash tail of the
    // scenario (virtual time restarts at zero after recovery, so the
    // remaining arrivals are re-anchored there) and settle everything.
    submit_window(&stack, crash_at, u64::MAX);
    stack.run_until(SimTime::from_secs(spec.drain_s));
    for job in &stack.steering.export_jobs() {
        for (t, tracked) in &job.tasks {
            assert!(
                tracked.phase.is_settled(),
                "{t} did not settle after scenario-load recovery: {:?}",
                tracked.phase
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// After recovery the stack is live: driving it onwards settles every
/// recovered task exactly once (no duplicate submissions, no losses).
#[test]
fn recovered_stack_runs_to_completion() {
    let dir = unique_temp_dir("crash-continue");
    let config = PersistenceConfig::new(&dir)
        .snapshot_every(SimDuration::from_secs(30))
        .fsync(false);
    let scenario = Scenario {
        sites: vec![(2, 2, 0), (1, 1, 2), (2, 1, 0)],
        flock_edges: vec![],
        jobs: vec![
            (vec![40, 25, 30], vec![(0, 1), (1, 2)]),
            (vec![15, 0], vec![]),
        ],
        steps: 3,
        step_secs: 20,
        snapshot_steps: 1,
        sharded: false,
        victim: 0,
        kind: 0,
        extent: 0,
        bit: 0,
    };
    persisted_run(&scenario, &config);

    let grid = build_grid(&scenario, DriverMode::sharded(2), None);
    let (stack, report) = ServiceStack::recover_from_disk(
        grid,
        SteeringPolicy::default(),
        SimDuration::from_secs(5),
        &config,
    )
    .expect("uncorrupted recovery");
    assert_eq!(report.commit_index, 3, "three run_until commit points");
    assert!(!report.tail_was_torn);
    assert!(!report.used_fallback);

    // Finish the work: every tracked task must settle.
    stack.run_until(SimTime::from_secs(400));
    let jobs = stack.steering.export_jobs();
    assert!(!jobs.is_empty(), "recovered tracker lost the jobs");
    for job in &jobs {
        for (t, tracked) in &job.tasks {
            assert!(
                tracked.phase.is_settled(),
                "{t} did not settle after recovery: {:?}",
                tracked.phase
            );
        }
    }
    // Exactly-once accounting: one completion charge per task, spread
    // over the pre-crash ledger (restored) and the post-crash run.
    let total_tasks: usize = jobs.iter().map(|j| j.tasks.len()).sum();
    assert!(stack.quota.ledger().len() <= total_tasks);
    std::fs::remove_dir_all(&dir).ok();
}
