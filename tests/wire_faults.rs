//! Fault paths of the wire layer (ISSUE 2 satellite): truncated
//! framing, oversized declared lengths, and invalid UTF-8 must all
//! surface as typed `GaeError`s — never a panic. The byte-level
//! mutations reuse the durable layer's crash-injection helpers.

use gae::durable::fault::{corrupt_bytes, Corruption};
use gae::rpc::http::read_request;
use gae::types::GaeError;
use gae::wire::{parse_call, parse_response, parse_value_document, write_call, MethodCall, Value};
use proptest::prelude::*;
use std::io::BufReader;

#[test]
fn invalid_utf8_is_a_typed_parse_error() {
    // A valid document with one byte swapped for a lone continuation
    // byte, plus some classic invalid sequences.
    let mut doc = write_call(&MethodCall {
        name: "ping".into(),
        params: vec![Value::from(1u64)],
    })
    .into_bytes();
    doc[10] = 0xFF;
    for body in [
        doc.as_slice(),
        &[0xC0, 0xAF],             // overlong encoding
        &[0xED, 0xA0, 0x80],       // UTF-16 surrogate half
        &[0xF5, 0x80, 0x80, 0x80], // beyond U+10FFFF
    ] {
        assert!(
            matches!(parse_call(body), Err(GaeError::Parse(_))),
            "parse_call accepted invalid UTF-8"
        );
        assert!(
            matches!(parse_response(body), Err(GaeError::Parse(_))),
            "parse_response accepted invalid UTF-8"
        );
    }
}

#[test]
fn bad_entities_and_documents_are_typed_errors() {
    for doc in [
        "<value><int>&#xD800;</int></value>", // surrogate code point
        "<value><int>&#99999999999;</int></value>", // beyond char range
        "<value><int>&nosuch;</int></value>", // unknown entity
        "<value><int>1</int>",                // unterminated
        "<value><base64>@@@@</base64></value>", // invalid base64
        "<value><dateTime.iso8601>20250101T99:99:99</dateTime.iso8601></value>",
    ] {
        let out = parse_value_document(doc);
        assert!(out.is_err(), "{doc:?} parsed as {out:?}");
    }
}

#[test]
fn truncated_content_length_is_io_error() {
    // Declares ten body bytes, supplies five: a torn frame.
    let torn: &[u8] = b"POST /RPC2 HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
    assert!(matches!(
        read_request(&mut BufReader::new(torn)),
        Err(GaeError::Io(_))
    ));
}

#[test]
fn oversized_declared_length_is_rejected_up_front() {
    // Just past the 16 MiB body cap: refused before any allocation.
    let huge = format!(
        "POST /RPC2 HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        16 * 1024 * 1024 + 1
    );
    assert!(matches!(
        read_request(&mut BufReader::new(huge.as_bytes())),
        Err(GaeError::ResourceExhausted(_))
    ));
    // Wider than usize itself: a parse error, not a panic.
    let absurd: &[u8] =
        b"POST /RPC2 HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n";
    assert!(matches!(
        read_request(&mut BufReader::new(absurd)),
        Err(GaeError::Parse(_))
    ));
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        (1u64..256).prop_map(|bytes| Corruption::TruncateTail { bytes }),
        (0u64..512, 0u8..8).prop_map(|(offset, bit)| Corruption::FlipBit { offset, bit }),
        (1u64..256).prop_map(|bytes| Corruption::DuplicateTail { bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any single corruption of a well-formed call document — torn
    /// tail, flipped bit, duplicated segment — must yield either a
    /// clean parse or a typed error. The proptest harness treats a
    /// panic as a failure, so reaching the end of the case body is
    /// the assertion.
    #[test]
    fn corrupted_call_documents_never_panic(
        method in "[a-z]{1,12}",
        arg in any::<u64>(),
        text in "[ -~]{0,40}",
        corruption in arb_corruption(),
    ) {
        let mut doc = write_call(&MethodCall {
            name: method,
            params: vec![Value::from(arg), Value::from(text)],
        })
        .into_bytes();
        corrupt_bytes(&mut doc, &corruption);
        let _ = parse_call(&doc);
        let _ = parse_response(&doc);
        if let Ok(s) = std::str::from_utf8(&doc) {
            let _ = parse_value_document(s);
        }
    }
}
