//! Fault paths of the wire layer (ISSUE 2 satellite): truncated
//! framing, oversized declared lengths, and invalid UTF-8 must all
//! surface as typed `GaeError`s — never a panic. The byte-level
//! mutations reuse the durable layer's crash-injection helpers.

use gae::durable::fault::{corrupt_bytes, Corruption};
use gae::rpc::http::{read_request, FrameLimits, FrameParser};
use gae::types::GaeError;
use gae::wire::{parse_call, parse_response, parse_value_document, write_call, MethodCall, Value};
use proptest::prelude::*;
use std::io::BufReader;

#[test]
fn invalid_utf8_is_a_typed_parse_error() {
    // A valid document with one byte swapped for a lone continuation
    // byte, plus some classic invalid sequences.
    let mut doc = write_call(&MethodCall {
        name: "ping".into(),
        params: vec![Value::from(1u64)],
    })
    .into_bytes();
    doc[10] = 0xFF;
    for body in [
        doc.as_slice(),
        &[0xC0, 0xAF],             // overlong encoding
        &[0xED, 0xA0, 0x80],       // UTF-16 surrogate half
        &[0xF5, 0x80, 0x80, 0x80], // beyond U+10FFFF
    ] {
        assert!(
            matches!(parse_call(body), Err(GaeError::Parse(_))),
            "parse_call accepted invalid UTF-8"
        );
        assert!(
            matches!(parse_response(body), Err(GaeError::Parse(_))),
            "parse_response accepted invalid UTF-8"
        );
    }
}

#[test]
fn bad_entities_and_documents_are_typed_errors() {
    for doc in [
        "<value><int>&#xD800;</int></value>", // surrogate code point
        "<value><int>&#99999999999;</int></value>", // beyond char range
        "<value><int>&nosuch;</int></value>", // unknown entity
        "<value><int>1</int>",                // unterminated
        "<value><base64>@@@@</base64></value>", // invalid base64
        "<value><dateTime.iso8601>20250101T99:99:99</dateTime.iso8601></value>",
    ] {
        let out = parse_value_document(doc);
        assert!(out.is_err(), "{doc:?} parsed as {out:?}");
    }
}

#[test]
fn truncated_content_length_is_io_error() {
    // Declares ten body bytes, supplies five: a torn frame.
    let torn: &[u8] = b"POST /RPC2 HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
    assert!(matches!(
        read_request(&mut BufReader::new(torn)),
        Err(GaeError::Io(_))
    ));
}

#[test]
fn oversized_declared_length_is_rejected_up_front() {
    // Just past the 16 MiB body cap: a typed 413 before any
    // allocation, from both the blocking reader and the incremental
    // parser (they share `FrameLimits`).
    let huge = format!(
        "POST /RPC2 HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        16 * 1024 * 1024 + 1
    );
    assert!(matches!(
        read_request(&mut BufReader::new(huge.as_bytes())),
        Err(GaeError::PayloadTooLarge(_))
    ));
    let mut parser = FrameParser::new(FrameLimits::DEFAULT);
    assert!(matches!(
        parser.feed(huge.as_bytes()),
        Err(GaeError::PayloadTooLarge(_))
    ));
    // Wider than usize itself: a parse error, not a panic.
    let absurd: &[u8] =
        b"POST /RPC2 HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n";
    assert!(matches!(
        read_request(&mut BufReader::new(absurd)),
        Err(GaeError::Parse(_))
    ));
}

#[test]
fn header_flood_is_a_typed_413() {
    // A client streaming endless header lines (no terminating blank
    // line) hits the header cap, not an unbounded buffer.
    let mut flood = String::from("POST /RPC2 HTTP/1.1\r\n");
    for i in 0..2_000 {
        flood.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
    }
    assert!(matches!(
        read_request(&mut BufReader::new(flood.as_bytes())),
        Err(GaeError::PayloadTooLarge(_))
    ));
    let mut parser = FrameParser::new(FrameLimits::DEFAULT);
    assert!(matches!(
        parser.feed(flood.as_bytes()),
        Err(GaeError::PayloadTooLarge(_))
    ));
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        (1u64..256).prop_map(|bytes| Corruption::TruncateTail { bytes }),
        (0u64..512, 0u8..8).prop_map(|(offset, bit)| Corruption::FlipBit { offset, bit }),
        (1u64..256).prop_map(|bytes| Corruption::DuplicateTail { bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incremental `FrameParser` must agree with the blocking
    /// reader on every well-formed request, no matter how the bytes
    /// are chunked — one byte at a time, odd split points, or one
    /// big slab all parse to the same frame.
    #[test]
    fn frame_parser_agrees_with_blocking_reader_under_any_chunking(
        method in "[a-z]{1,10}",
        arg in any::<u64>(),
        splits in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let body = write_call(&MethodCall {
            name: method,
            params: vec![Value::from(arg)],
        })
        .into_bytes();
        let mut raw = Vec::new();
        gae::rpc::http::HttpRequest::xmlrpc(body, None)
            .write_to(&mut raw)
            .unwrap();

        let blocking = read_request(&mut BufReader::new(raw.as_slice()))
            .unwrap()
            .expect("well-formed request");

        let mut cuts: Vec<usize> = splits
            .iter()
            .map(|&s| s as usize % raw.len().max(1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut parser = FrameParser::new(FrameLimits::DEFAULT);
        let mut start = 0;
        for cut in cuts.into_iter().chain([raw.len()]) {
            let mut chunk = &raw[start..cut];
            while !chunk.is_empty() {
                let n = parser.feed(chunk).unwrap();
                chunk = &chunk[n..];
            }
            start = cut;
        }
        prop_assert!(parser.is_complete());
        let incremental = parser.take_request().unwrap();
        prop_assert_eq!(incremental, blocking);
    }

    /// Arbitrary corruption of the raw HTTP bytes must never panic
    /// the incremental parser: every outcome is a parsed frame or a
    /// typed error, even fed one byte at a time.
    #[test]
    fn corrupted_http_bytes_never_panic_the_frame_parser(
        arg in any::<u64>(),
        corruption in arb_corruption(),
    ) {
        let body = write_call(&MethodCall {
            name: "ping".into(),
            params: vec![Value::from(arg)],
        })
        .into_bytes();
        let mut raw = Vec::new();
        gae::rpc::http::HttpRequest::xmlrpc(body, None)
            .write_to(&mut raw)
            .unwrap();
        corrupt_bytes(&mut raw, &corruption);
        let mut parser = FrameParser::new(FrameLimits::DEFAULT);
        for byte in raw {
            match parser.feed(&[byte]) {
                // Typed rejection: fine, and terminal.
                Err(_) => break,
                Ok(_) if parser.is_complete() => {
                    let _ = parser.take_request();
                    break;
                }
                Ok(_) => {}
            }
        }
    }

    /// Any single corruption of a well-formed call document — torn
    /// tail, flipped bit, duplicated segment — must yield either a
    /// clean parse or a typed error. The proptest harness treats a
    /// panic as a failure, so reaching the end of the case body is
    /// the assertion.
    #[test]
    fn corrupted_call_documents_never_panic(
        method in "[a-z]{1,12}",
        arg in any::<u64>(),
        text in "[ -~]{0,40}",
        corruption in arb_corruption(),
    ) {
        let mut doc = write_call(&MethodCall {
            name: method,
            params: vec![Value::from(arg), Value::from(text)],
        })
        .into_bytes();
        corrupt_bytes(&mut doc, &corruption);
        let _ = parse_call(&doc);
        let _ = parse_response(&doc);
        if let Ok(s) = std::str::from_utf8(&doc) {
            let _ = parse_value_document(s);
        }
    }
}
