//! Link flapping against the transfer plane: a deterministic flap
//! schedule must never push retry counts past the configured attempt
//! bound, dead-link estimates must recover once the link heals, and
//! a permanently dead link must fail the task onward — never wedge
//! it in `Pending`.

use gae::core::replica::ReplicaCatalog;
use gae::core::steering::MoveReason;
use gae::prelude::*;
use gae::sim::{Link, NetworkModel};
use gae::types::AbstractPlan;
use std::sync::Arc;

fn s(n: u64) -> SiteId {
    SiteId::new(n)
}

fn mb(n: u64) -> u64 {
    n * 1_000_000
}

/// Two sites joined by 1 MB/s zero-latency links, with a bounded
/// retry policy tight enough to exhaust inside a test horizon.
fn flappy_grid(max_attempts: u32, backoff_secs: u64) -> Arc<Grid> {
    GridBuilder::new()
        .site(SiteDescription::new(s(1), "home", 1, 1))
        .site(SiteDescription::new(s(2), "compute", 1, 1))
        .network(NetworkModel::new(Link::new(1e6, SimDuration::ZERO)))
        .xfer(XferConfig {
            retry: RetryPolicy {
                max_attempts,
                backoff_base: SimDuration::from_secs(backoff_secs),
            },
            ..XferConfig::with_defaults()
        })
        .build()
}

/// The deterministic flap schedule: down at 0, up at 3, down again at
/// 4, up at 5. Attempt 1 (t=0) and attempt 2 (t=2, first backoff)
/// both hit the dead link; attempt 3 (t=6, doubled backoff) lands in
/// the healed window and drains. Attempts stay well under the bound
/// and the second flap (4–5 s) never touches the backed-off transfer.
#[test]
fn flap_schedule_stays_within_the_attempt_bound() {
    let g = flappy_grid(4, 2);
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/flap", mb(1)).with_replicas(vec![s(1)]));

    g.with_xfer(|x| x.fail_link(s(1), s(2)));
    catalog.replicate("lfn:/flap", s(2)).unwrap();
    assert_eq!(g.with_xfer(|x| x.counters().retried), 1, "attempt 1 fails");

    g.advance_to(SimTime::from_secs(3));
    // Attempt 2 fired at 2 s into the still-dead link.
    assert_eq!(g.with_xfer(|x| x.counters().retried), 2);
    g.with_xfer(|x| x.heal_link(s(1), s(2)));
    g.advance_to(SimTime::from_secs(4));
    g.with_xfer(|x| x.fail_link(s(1), s(2)));
    g.advance_to(SimTime::from_secs(5));
    g.with_xfer(|x| x.heal_link(s(1), s(2)));

    // Attempt 3 at 6 s (backoff 2 s then 4 s) drains 1 MB in 1 s.
    g.advance_to(SimTime::from_secs(8));
    assert_eq!(catalog.poll(), 1, "transfer lands after the heal");
    let history = catalog.transfer_history();
    assert_eq!(history.len(), 1);
    assert_eq!(history[0].attempts, 3);
    assert!(history[0].attempts <= 4, "attempt bound respected");
    assert_eq!(history[0].arrives, SimTime::from_secs(7));
    let counters = g.with_xfer(|x| x.counters());
    assert_eq!(counters.completed, 1);
    assert_eq!(counters.failed, 0);
    assert_eq!(counters.retried, 2, "exactly the two dead-link attempts");
    assert!(catalog.in_flight().is_empty());
}

/// Dead-link estimates are typed errors while the link is down and
/// recover to the pre-fault value once it heals — the signal the
/// scheduler (and the xfer-aware Optimizer) keys off.
#[test]
fn dead_link_estimates_recover_after_heal() {
    let stack = ServiceStack::over(flappy_grid(5, 2));
    let file = FileRef::new("lfn:/est", mb(10)).with_replicas(vec![s(1)]);

    // The estimator disperses its answer with measurement noise
    // (§6.3's error study), so bound it rather than pinning it:
    // 10 MB at 1 MB/s is 10 s ground truth.
    let healthy = stack
        .estimators
        .estimate_transfer(std::slice::from_ref(&file), s(2))
        .expect("healthy link estimates");
    assert!(
        healthy > SimDuration::from_secs(2) && healthy < SimDuration::from_secs(50),
        "estimate {healthy} wildly off the 10 s ground truth"
    );

    stack.grid.with_xfer(|x| x.fail_link(s(1), s(2)));
    assert!(stack.grid.with_xfer(|x| x.link_blocked(s(1), s(2))));
    assert!(
        stack
            .estimators
            .estimate_transfer(std::slice::from_ref(&file), s(2))
            .is_err(),
        "a dead link must estimate as a typed error, not a number"
    );

    stack.grid.with_xfer(|x| x.heal_link(s(1), s(2)));
    let recovered = stack
        .estimators
        .estimate_transfer(std::slice::from_ref(&file), s(2))
        .expect("healed link estimates again");
    assert_eq!(
        recovered, healthy,
        "estimate recovers to the pre-fault value"
    );
}

/// A link that dies mid-staging and never heals: the in-flight
/// transfer enters retry, exhausts its bounded attempts, and the
/// staging failure fails the task typed into Backup & Recovery —
/// which relocates it to the one site the dead link cannot poison,
/// the file's home, where it completes without staging. Either way
/// the job settles and no task is ever left `Pending`. (A link
/// already dead at submission is refused up front: the estimate
/// error means the site never bids.)
#[test]
fn permanent_flap_fails_the_task_instead_of_wedging_pending() {
    let grid = flappy_grid(2, 1);
    let stack = ServiceStack::over(grid);

    let mut job = JobSpec::new(JobId::new(1), "doomed-staging", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(1), "t1", "analysis")
            .with_cpu_demand(SimDuration::from_secs(30))
            .with_inputs(vec![
                FileRef::new("lfn:/unreachable", mb(2)).with_replicas(vec![s(1)])
            ]),
    );
    // Force the compute site so the scheduler cannot dodge the link
    // by running at the file's home.
    let plan = AbstractPlan::new(job).restricted_to(vec![s(2)]);
    stack
        .submit_plan(&plan)
        .expect("schedulable while the link is up");

    // The 2 MB stage-in needs 2 s; the link dies under it at 1 s and
    // stays dead.
    stack.run_until(SimTime::from_secs(1));
    stack.grid.with_xfer(|x| x.fail_link(s(1), s(2)));
    stack.run_until(SimTime::from_secs(600));

    let counters = stack.grid.with_xfer(|x| x.counters());
    assert!(counters.failed >= 1, "the staging chain failed typed");
    assert_eq!(
        counters.completed, 0,
        "the dead link never delivered a byte"
    );

    let info = stack.jobmon.job_info(task).expect("tracked");
    assert_ne!(
        info.status,
        TaskStatus::Pending,
        "a permanently failed staging chain must not leave the task Pending"
    );
    let tracked = stack
        .steering
        .tracked_job(JobId::new(1))
        .expect("job tracked");
    assert!(tracked.is_settled(), "the job must settle, not starve");
    match info.status {
        // Backup & Recovery dodged the dead link: the only admissible
        // resubmission target is the file's home, where staging is a
        // no-op.
        TaskStatus::Completed => {
            assert_eq!(info.site, s(1), "recovery must avoid the dead link");
            let recovery_moves = stack
                .steering
                .move_log()
                .iter()
                .filter(|m| m.task == task && m.reason == MoveReason::Recovery)
                .count();
            assert_eq!(recovery_moves, 1, "exactly one recovery relocation");
        }
        TaskStatus::Failed | TaskStatus::Killed => {
            assert!(tracked.is_failed());
        }
        other => panic!("staging failure left the task in {other:?}"),
    }
}
