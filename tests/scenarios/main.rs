//! The scenario fleet (DESIGN.md §12): named, seeded end-to-end
//! workloads — flash crowds, diurnal load, chaos grids, hot-replica
//! storms — executed through the full service stack with
//! machine-checked invariants.
//!
//! Structure:
//! * [`fleet`] — every named scenario runs end to end and must keep
//!   its declared invariants; Sequential ≡ Sharded byte-identical
//!   digests under scenario load; the chaos-grid migration payoff.
//! * [`gate_inversion`] — the admission queue's priority contract
//!   under every scenario arrival process (proptest).
//! * [`link_flapping`] — deterministic link-flap schedules against
//!   the transfer plane's bounded retry/backoff, and estimator
//!   recovery after heal.
//!
//! Smoke mode: set `SCENARIO_SMOKE=1` (the CI `scenarios` job does)
//! to run the fleet on reduced horizons.

mod fleet;
mod gate_inversion;
mod link_flapping;

/// Smoke mode reduces every scenario horizon (CI sets this).
pub fn smoke_mode() -> bool {
    std::env::var("SCENARIO_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// A spec, in smoke form when the environment asks for it.
pub fn maybe_smoke(spec: gae::trace::ScenarioSpec) -> gae::trace::ScenarioSpec {
    if smoke_mode() {
        spec.smoke()
    } else {
        spec
    }
}
