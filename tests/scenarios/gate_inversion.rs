//! Gate priority-inversion bound, property-tested under every
//! scenario arrival process.
//!
//! The contract: once an Interactive request is admitted to the
//! bounded queue, Scavenger (or Production) traffic can never delay
//! it by more than the single in-service slot — the queue always
//! serves the best class present, and an Interactive entry can never
//! be displaced by anything (there is no higher class to displace
//! it). The arrival *instants* come from the same processes the
//! scenario fleet uses — Poisson, diurnal, flash-crowd — so the bound
//! holds under bursts, not just steady state.

use gae::gate::{
    AdmissionQueue, GateClass, GateMetrics, ManualClock, Popped, QueueConfig, RejectReason,
};
use gae::sim::rng::seeded_rng;
use gae::trace::{ArrivalProcess, Burst, DiurnalArrivals, FlashCrowdArrivals, PoissonArrivals};
use gae::types::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::Rng;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

fn process_for(kind: usize, mean: f64) -> Box<dyn ArrivalProcess> {
    match kind {
        0 => Box::new(PoissonArrivals::new(mean)),
        1 => Box::new(DiurnalArrivals::new(mean, 0.9, 600.0, 120.0)),
        _ => Box::new(FlashCrowdArrivals::new(
            mean,
            vec![Burst {
                start: 200.0,
                end: 800.0,
                multiplier: 15.0,
            }],
        )),
    }
}

fn class_for(roll: f64) -> GateClass {
    if roll < 0.25 {
        GateClass::Interactive
    } else if roll < 0.6 {
        GateClass::Production
    } else {
        GateClass::Scavenger
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    ))]

    #[test]
    fn interactive_is_never_delayed_by_more_than_one_slot(
        kind in 0usize..3,
        seed in any::<u64>(),
        capacity in 2usize..9,
        arrivals in 20usize..120,
        mean in 5.0f64..120.0,
    ) {
        let clock = Arc::new(ManualClock::new());
        // A deadline far beyond every arrival keeps expiry out of
        // this model: inversion is about ordering, not timeouts.
        let queue: AdmissionQueue<u64> = AdmissionQueue::new(
            QueueConfig::new(capacity, SimDuration::from_secs(1 << 30)),
            clock.clone(),
            Arc::new(GateMetrics::new()),
        );
        let mut process = process_for(kind, mean);
        let mut rng = seeded_rng(seed);
        // Shadow multiset of what must be queued, as (class, id).
        let mut shadow: BTreeSet<(GateClass, u64)> = BTreeSet::new();

        for id in 0..arrivals as u64 {
            let at = process.next_arrival(&mut rng);
            clock.set(SimTime::from_secs_f64(at));
            let class = class_for(rng.gen_range(0.0..1.0));
            match queue.push(class, id) {
                Ok(displaced) => {
                    shadow.insert((class, id));
                    for victim in displaced {
                        // No entry can outrank Interactive, so an
                        // admitted Interactive is never displaced.
                        prop_assert!(
                            !(victim.class == GateClass::Interactive
                                && victim.reason == RejectReason::Displaced),
                            "Interactive request {} displaced by {class:?}",
                            victim.item
                        );
                        prop_assert!(
                            shadow.remove(&(victim.class, victim.item)),
                            "victim {} not in shadow", victim.item
                        );
                        // Displacement only ever strikes a class
                        // strictly worse than the arrival.
                        if victim.reason == RejectReason::Displaced {
                            prop_assert!(victim.class > class);
                        }
                    }
                }
                Err(_refused) => {
                    // The incoming request was refused: legal only
                    // when the queue is full of its class or better.
                    prop_assert!(shadow.len() == capacity);
                    prop_assert!(
                        shadow.iter().all(|(c, _)| *c <= class),
                        "refused {class:?} while worse entries were queued"
                    );
                }
            }

            // Serve a few entries between arrivals, verifying class
            // order each time: the popped entry must be the best
            // class present — an Interactive waits on nothing but
            // the one in-service slot.
            while !shadow.is_empty() && rng.gen_range(0.0..1.0) < 0.4 {
                let best = shadow.iter().next().copied().expect("non-empty");
                match queue.pop_blocking(Duration::ZERO) {
                    Some(Popped::Run(class, item)) => {
                        prop_assert_eq!(
                            (class, item),
                            best,
                            "queue served {class:?} ahead of {:?}",
                            best.0
                        );
                        shadow.remove(&(class, item));
                    }
                    other => prop_assert!(false, "expected a run, got {other:?}"),
                }
            }
        }

        // Drain: the remaining entries come out in exact class-then-
        // arrival order.
        while let Some(popped) = queue.pop_blocking(Duration::ZERO) {
            let best = shadow.iter().next().copied().expect("shadow tracks queue");
            match popped {
                Popped::Run(class, item) => {
                    prop_assert_eq!((class, item), best);
                    shadow.remove(&(class, item));
                }
                Popped::Expired(..) => prop_assert!(false, "deadline excluded expiry"),
            }
        }
        prop_assert!(shadow.is_empty());
    }
}
