//! The fleet itself: every named scenario end to end, invariants
//! asserted; Sequential ≡ Sharded equivalence under scenario load;
//! the chaos-grid adaptive-loop payoff.

use crate::maybe_smoke;
use gae::durable::fault::unique_temp_dir;
use gae::prelude::DriverMode;
use gae::trace::ScenarioSpec;
use gae_bench::scenario::{run_scenario, ScenarioOptions};
use proptest::prelude::*;

/// The fleet seed: every deterministic scenario artifact in this file
/// derives from it.
const SEED: u64 = 2005;

/// Each named scenario runs end to end through gate, scheduler,
/// xfer, steering and (for chaos) recovery — and must keep every
/// invariant it declares.
#[test]
fn every_named_scenario_keeps_its_invariants() {
    for spec in ScenarioSpec::all(SEED) {
        let spec = maybe_smoke(spec);
        let report = run_scenario(&spec, &ScenarioOptions::default());
        assert!(
            report.invariant_failures.is_empty(),
            "{}: {:?}",
            spec.name,
            report.invariant_failures
        );
        assert!(report.submitted > 0, "{}: no jobs admitted", spec.name);
        assert!(report.completed > 0, "{}: nothing completed", spec.name);
        assert_eq!(
            report.submitted + report.shed,
            report.offered,
            "{}: arrivals neither admitted nor shed",
            spec.name
        );
    }
}

/// The flash crowd must actually stress the front door: the gate
/// sheds some of the burst while baseline traffic still gets through.
#[test]
fn flash_crowd_sheds_under_burst_but_serves_baseline() {
    let spec = ScenarioSpec::flash_crowd(SEED);
    let report = run_scenario(&spec, &ScenarioOptions::default());
    assert!(
        report.shed > 0,
        "a 12x flash crowd should overflow the admission gate"
    );
    assert!(
        report.submitted > report.shed,
        "shedding ({}) must not drown service ({})",
        report.shed,
        report.submitted
    );
}

/// Chaos grid with the durability path armed: the scenario's own
/// crash tick drops the stack mid-run, recovery re-arms exactly once
/// (the ExactlyOnceRearm invariant), and the continuation settles
/// every admitted job.
#[test]
fn chaos_grid_crash_recovers_exactly_once() {
    let dir = unique_temp_dir("scenario-fleet-chaos");
    let spec = maybe_smoke(ScenarioSpec::chaos_grid(SEED));
    assert!(
        spec.crash_at_s.is_some(),
        "chaos grid declares a crash tick"
    );
    let report = run_scenario(
        &spec,
        &ScenarioOptions {
            crash: true,
            persist_dir: Some(dir.clone()),
            ..ScenarioOptions::default()
        },
    );
    assert!(
        report.invariant_failures.is_empty(),
        "{:?}",
        report.invariant_failures
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Leader loss with replication armed: the scenario's `LeaderLoss`
/// fault kills the leader mid-schedule, a follower is promoted by
/// deterministic election, and the run continues prefix-consistently
/// (the PrefixConsistentFailover invariant compares the promoted
/// follower's recovery against the dead leader's own) while re-arming
/// in-flight tasks exactly once.
#[test]
fn leader_loss_fails_over_prefix_consistently() {
    let dir = unique_temp_dir("scenario-fleet-leader-loss");
    let spec = maybe_smoke(ScenarioSpec::leader_loss(SEED));
    let report = run_scenario(
        &spec,
        &ScenarioOptions {
            replication: 2,
            persist_dir: Some(dir.clone()),
            ..ScenarioOptions::default()
        },
    );
    assert!(
        report.invariant_failures.is_empty(),
        "{:?}",
        report.invariant_failures
    );
    assert!(report.submitted > 0, "no jobs admitted");
    assert!(report.completed > 0, "nothing completed");
    std::fs::remove_dir_all(&dir).ok();
}

/// Sequential ≡ Sharded must survive a failover: running the
/// leader-loss scenario under both driver modes (replication on for
/// each, separate stores) yields byte-identical end-state digests.
#[test]
fn leader_loss_keeps_sequential_sharded_equivalence() {
    let spec = maybe_smoke(ScenarioSpec::leader_loss(SEED));
    let run = |driver: DriverMode, tag: &str| {
        let dir = unique_temp_dir(&format!("scenario-fleet-ll-{tag}"));
        let report = run_scenario(
            &spec,
            &ScenarioOptions {
                driver,
                replication: 2,
                persist_dir: Some(dir.clone()),
                ..ScenarioOptions::default()
            },
        );
        std::fs::remove_dir_all(&dir).ok();
        report
    };
    let sequential = run(DriverMode::Sequential, "seq");
    let sharded = run(DriverMode::sharded(3), "shard");
    assert_eq!(
        sequential.digest, sharded.digest,
        "driver modes diverged across the failover"
    );
}

/// The adaptive loop pays: with the xfer-aware Optimizer migrating
/// work off the loaded survivor after the heal, the chaos grid
/// finishes sooner than with migration off. (The EXPERIMENTS.md
/// numbers come from `cargo run -p gae-bench --bin scenario --
/// chaos-grid --compare`.)
#[test]
fn chaos_grid_migration_beats_migration_off() {
    let spec = ScenarioSpec::chaos_grid(SEED);
    let on = run_scenario(&spec, &ScenarioOptions::default());
    let off = run_scenario(
        &spec,
        &ScenarioOptions {
            migration: false,
            ..ScenarioOptions::default()
        },
    );
    assert!(
        on.invariant_failures.is_empty(),
        "{:?}",
        on.invariant_failures
    );
    assert!(
        on.makespan_s < off.makespan_s,
        "migration-on makespan {:.0} s must beat migration-off {:.0} s",
        on.makespan_s,
        off.makespan_s
    );
    assert!(
        on.moves > off.moves,
        "the Optimizer must actually move work ({} vs {} moves)",
        on.moves,
        off.moves
    );
}

proptest! {
    // The Sequential ≡ Sharded contract under adversarial load: for
    // any seed and any named scenario (reduced horizon), both driver
    // modes must produce byte-identical run digests — task terminal
    // states, placements, instants, gate and xfer counters.
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4)
    ))]

    #[test]
    fn sequential_and_sharded_schedules_are_byte_identical(
        seed in 0u64..1_000_000,
        which in 0usize..5,
        threads in 2usize..5,
    ) {
        let spec = ScenarioSpec::all(seed).swap_remove(which).smoke();
        let sequential = run_scenario(&spec, &ScenarioOptions::default());
        let sharded = run_scenario(
            &spec,
            &ScenarioOptions {
                driver: DriverMode::sharded(threads),
                ..ScenarioOptions::default()
            },
        );
        prop_assert_eq!(
            sequential.digest,
            sharded.digest,
            "driver modes diverged on {} (seed {})",
            spec.name,
            seed
        );
    }
}
