//! DAG workflows, scheduling preferences, priorities, and the Quota
//! and Accounting Service across the whole stack.

use gae::prelude::*;
use std::sync::Arc;

fn priced_grid() -> Arc<gae::core::Grid> {
    GridBuilder::new()
        // Fast but expensive.
        .site(
            SiteDescription::new(SiteId::new(1), "premium", 4, 1)
                .with_speed(2.0)
                .with_charge(10.0, 1.0),
        )
        // Slow but cheap.
        .site(
            SiteDescription::new(SiteId::new(2), "economy", 4, 1)
                .with_speed(1.0)
                .with_charge(1.0, 0.1),
        )
        .build()
}

#[test]
fn fast_and_cheap_preferences_pick_different_sites() {
    let stack = ServiceStack::over(priced_grid());
    let make_job = |id: u64| {
        let mut job = JobSpec::new(JobId::new(id), format!("j{id}"), UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(id), "t", "reco")
                .with_cpu_demand(SimDuration::from_secs(100)),
        );
        job
    };
    let fast = stack
        .submit_plan(&AbstractPlan::new(make_job(1)).with_preference(OptimizationPreference::Fast))
        .unwrap();
    assert_eq!(
        fast.site_of(TaskId::new(1)),
        Some(SiteId::new(1)),
        "fast → premium"
    );
    let cheap = stack
        .submit_plan(&AbstractPlan::new(make_job(2)).with_preference(OptimizationPreference::Cheap))
        .unwrap();
    assert_eq!(
        cheap.site_of(TaskId::new(2)),
        Some(SiteId::new(2)),
        "cheap → economy"
    );
}

#[test]
fn completed_work_is_charged_to_the_owner() {
    let stack = ServiceStack::over(priced_grid());
    let owner = UserId::new(7);
    stack.quota.grant(owner, 100.0);
    let mut job = JobSpec::new(JobId::new(1), "billed", owner);
    job.add_task(
        TaskSpec::new(TaskId::new(1), "t", "reco").with_cpu_demand(SimDuration::from_secs(3600)),
    );
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(2)]))
        .unwrap();
    stack.run_until(SimTime::from_secs(4_000));
    // 3600 CPU-seconds at 1.0/cpu-hour = 1.0 charged.
    let charged = stack.quota.total_charged(owner);
    assert!((charged - 1.0).abs() < 1e-9, "charged {charged}");
    assert!((stack.quota.balance(owner) - 99.0).abs() < 1e-9);
    let ledger = stack.quota.ledger();
    assert_eq!(ledger.len(), 1);
    assert_eq!(ledger[0].site, SiteId::new(2));
}

#[test]
fn diamond_dag_completes_in_dependency_order() {
    let stack = ServiceStack::over(priced_grid());
    let mut job = JobSpec::new(JobId::new(1), "diamond", UserId::new(1));
    let gen = job.add_task(
        TaskSpec::new(TaskId::new(1), "gen", "gen").with_cpu_demand(SimDuration::from_secs(50)),
    );
    let reco1 = job.add_task(
        TaskSpec::new(TaskId::new(2), "reco1", "reco").with_cpu_demand(SimDuration::from_secs(80)),
    );
    let reco2 = job.add_task(
        TaskSpec::new(TaskId::new(3), "reco2", "reco").with_cpu_demand(SimDuration::from_secs(120)),
    );
    let merge = job.add_task(
        TaskSpec::new(TaskId::new(4), "merge", "merge").with_cpu_demand(SimDuration::from_secs(30)),
    );
    job.add_dependency(gen, reco1);
    job.add_dependency(gen, reco2);
    job.add_dependency(reco1, merge);
    job.add_dependency(reco2, merge);
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(1_000));

    let at = |t: TaskId| {
        let i = stack.jobmon.job_info(t).unwrap();
        (i.started_at.unwrap(), i.completed_at.unwrap())
    };
    let (gen_s, gen_c) = at(gen);
    let (r1_s, r1_c) = at(reco1);
    let (r2_s, r2_c) = at(reco2);
    let (m_s, _m_c) = at(merge);
    assert_eq!(gen_s, SimTime::ZERO);
    assert!(
        r1_s >= gen_c && r2_s >= gen_c,
        "recos start after gen completes"
    );
    assert!(m_s >= r1_c.max(r2_c), "merge starts after both recos");
    assert_eq!(stack.jobmon.job_status(JobId::new(1)), JobStatus::Completed);
}

#[test]
fn wide_fanout_saturates_slots_and_queues() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "only", 2, 1))
        .build();
    let stack = ServiceStack::over(grid.clone());
    let mut job = JobSpec::new(JobId::new(1), "fanout", UserId::new(1));
    for i in 1..=6 {
        job.add_task(
            TaskSpec::new(TaskId::new(i), format!("t{i}"), "x")
                .with_cpu_demand(SimDuration::from_secs(100)),
        );
    }
    stack.submit_job(job).unwrap();
    {
        let exec = grid.exec(SiteId::new(1)).unwrap();
        let guard = exec.lock();
        assert_eq!(guard.running_count(), 2, "two slots");
        assert_eq!(guard.queue_length(), 4);
    }
    // Queue positions are part of the monitoring API.
    let queued: Vec<_> = (1..=6)
        .filter_map(|i| stack.jobmon.job_info(TaskId::new(i)).ok())
        .filter(|info| info.status == TaskStatus::Queued)
        .collect();
    assert_eq!(queued.len(), 4);
    assert!(queued.iter().any(|i| i.queue_position == Some(0)));
    // 6 tasks × 100 s over 2 slots = 300 s.
    stack.run_until(SimTime::from_secs(300));
    assert_eq!(stack.jobmon.job_status(JobId::new(1)), JobStatus::Completed);
}

#[test]
fn high_priority_tasks_jump_the_shared_queue() {
    let grid = GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "only", 1, 1))
        .build();
    let stack = ServiceStack::over(grid);
    let mut job = JobSpec::new(JobId::new(1), "mixed", UserId::new(1));
    let filler = job.add_task(
        TaskSpec::new(TaskId::new(1), "filler", "x").with_cpu_demand(SimDuration::from_secs(100)),
    );
    let low = job.add_task(
        TaskSpec::new(TaskId::new(2), "low", "x")
            .with_cpu_demand(SimDuration::from_secs(100))
            .with_priority(Priority::LOW),
    );
    let high = job.add_task(
        TaskSpec::new(TaskId::new(3), "high", "x")
            .with_cpu_demand(SimDuration::from_secs(100))
            .with_priority(Priority::HIGH),
    );
    stack.submit_job(job).unwrap();
    stack.run_until(SimTime::from_secs(350));
    let started = |t| stack.jobmon.job_info(t).unwrap().started_at.unwrap();
    assert!(started(high) < started(low));
    assert_eq!(started(filler), SimTime::ZERO);
}

#[test]
fn estimated_and_remaining_time_exposed_by_monitoring() {
    let stack = ServiceStack::over(priced_grid());
    // Teach site 2's estimator this executable's runtime.
    for i in 1..=3u64 {
        let mut job = JobSpec::new(JobId::new(i), format!("warm{i}"), UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(i), "t", "reco").with_cpu_demand(SimDuration::from_secs(400)),
        );
        stack
            .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(2)]))
            .unwrap();
        stack.run_until(SimTime::from_secs(500 * i));
    }
    let mut job = JobSpec::new(JobId::new(9), "probe", UserId::new(1));
    let task = job.add_task(
        TaskSpec::new(TaskId::new(9), "t", "reco").with_cpu_demand(SimDuration::from_secs(400)),
    );
    stack
        .submit_plan(&AbstractPlan::new(job).restricted_to(vec![SiteId::new(2)]))
        .unwrap();
    let t0 = stack.grid.now();
    stack.run_until(t0 + SimDuration::from_secs(100));
    let info = stack.jobmon.job_info(task).unwrap();
    let est = info
        .estimated_runtime
        .expect("history-backed estimate")
        .as_secs_f64();
    assert!((est - 400.0).abs() < 1.0, "estimate {est}");
    let remaining = info
        .remaining_time
        .expect("estimate minus cpu")
        .as_secs_f64();
    assert!((remaining - 300.0).abs() < 1.0, "remaining {remaining}");
}
