//! Replica RPC facade error paths: every malformed or impossible
//! request must come back as a typed fault with a stable wire code —
//! never a panic, never a silent success. The 2005 deployment's
//! Clarens clients match on fault codes, so the codes are part of the
//! contract: 400 for parse faults, 404 for unknown names, 521 for
//! transfer-plane failures.

use gae::core::replica::{ReplicaCatalog, ReplicaRpc};
use gae::core::{Grid, GridBuilder};
use gae::prelude::*;
use gae::rpc::{CallContext, Service};
use gae::sim::{Link, NetworkModel};
use gae::wire::Value;
use std::sync::Arc;

fn grid() -> Arc<Grid> {
    let net = NetworkModel::new(Link::new(1e6, SimDuration::ZERO));
    GridBuilder::new()
        .site(SiteDescription::new(SiteId::new(1), "a", 1, 1))
        .site(SiteDescription::new(SiteId::new(2), "b", 1, 1))
        .network(net)
        .build()
}

fn svc() -> ReplicaRpc {
    let catalog = ReplicaCatalog::new(grid());
    catalog.register(FileRef::new("lfn:/present", 1_000_000).with_replicas(vec![SiteId::new(1)]));
    ReplicaRpc::new(catalog)
}

fn call(svc: &ReplicaRpc, method: &str, params: &[Value]) -> GaeResult<Value> {
    svc.call(&CallContext::anonymous("test"), method, params)
}

#[test]
fn missing_params_are_parse_faults() {
    let svc = svc();
    for method in ["register", "lookup", "replicate", "delete_replica"] {
        let e = call(&svc, method, &[]).expect_err(method);
        assert_eq!(e.fault_code(), 400, "{method}: {e}");
    }
    // Too few for the arity, even with one param present.
    let e = call(&svc, "replicate", &[Value::from("lfn:/present")]).unwrap_err();
    assert_eq!(e.fault_code(), 400, "{e}");
    let e = call(&svc, "register", &[Value::from("lfn:/x")]).unwrap_err();
    assert_eq!(e.fault_code(), 400, "{e}");
}

#[test]
fn ill_typed_params_are_parse_faults() {
    let svc = svc();
    // A string where a site number belongs.
    let e = call(
        &svc,
        "replicate",
        &[Value::from("lfn:/present"), Value::from("not-a-site")],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 400, "{e}");
    // A number where the lfn belongs.
    let e = call(
        &svc,
        "delete_replica",
        &[Value::from(7u64), Value::from(1u64)],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 400, "{e}");
    // Replica list that is not an array.
    let e = call(
        &svc,
        "register",
        &[
            Value::from("lfn:/y"),
            Value::from(10u64),
            Value::from("sites"),
        ],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 400, "{e}");
    // Replica list holding a non-numeric site.
    let e = call(
        &svc,
        "register",
        &[
            Value::from("lfn:/y"),
            Value::from(10u64),
            Value::Array(vec![Value::from("one")]),
        ],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 400, "{e}");
}

#[test]
fn unknown_lfn_is_not_found() {
    let svc = svc();
    // Lookup of an unknown file is a soft miss (nil), but mutating an
    // unknown file is a typed 404.
    assert!(call(&svc, "lookup", &[Value::from("lfn:/ghost")])
        .unwrap()
        .is_nil());
    let e = call(
        &svc,
        "replicate",
        &[Value::from("lfn:/ghost"), Value::from(2u64)],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 404, "{e}");
    let e = call(
        &svc,
        "delete_replica",
        &[Value::from("lfn:/ghost"), Value::from(1u64)],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 404, "{e}");
}

#[test]
fn replicate_to_unknown_site_is_not_found() {
    let svc = svc();
    let e = call(
        &svc,
        "replicate",
        &[Value::from("lfn:/present"), Value::from(99u64)],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 404, "{e}");
    assert!(e.to_string().contains("99"), "names the site: {e}");
}

#[test]
fn replicate_with_no_usable_source_is_a_transfer_fault() {
    let catalog = ReplicaCatalog::new(grid());
    // Registered but with zero replicas: nothing to copy from.
    catalog.register(FileRef::new("lfn:/orphan", 5));
    let svc = ReplicaRpc::new(catalog);
    let e = call(
        &svc,
        "replicate",
        &[Value::from("lfn:/orphan"), Value::from(2u64)],
    )
    .unwrap_err();
    assert_eq!(e.fault_code(), 404, "no replica exists: {e}");

    // A source exists but its only link is dead at request time: the
    // transfer is accepted and retried in the background instead of
    // faulting the call (bounded retry is the data plane's job).
    let g = grid();
    let catalog = ReplicaCatalog::new(g.clone());
    catalog.register(FileRef::new("lfn:/walled", 1_000).with_replicas(vec![SiteId::new(1)]));
    g.with_xfer(|x| x.fail_link(SiteId::new(1), SiteId::new(2)));
    let svc = ReplicaRpc::new(catalog);
    let arrives = call(
        &svc,
        "replicate",
        &[Value::from("lfn:/walled"), Value::from(2u64)],
    )
    .unwrap();
    assert!(arrives.as_u64().unwrap() > 0, "projected past the backoff");
}

#[test]
fn unknown_method_is_a_typed_fault() {
    let svc = svc();
    let e = call(&svc, "defragment", &[]).unwrap_err();
    assert!(e.to_string().contains("defragment"), "{e}");
}
