//! Crash/corruption injection for recovery testing.
//!
//! Simulates the writer dying mid-write (torn tails), media
//! corruption (bit flips), and botched retries (duplicated segments).
//! The byte-level operations are exposed separately from the file
//! operations so the same corruption corpus can be fed to other
//! parsers (e.g. the `gae-wire` fault-path tests).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One corruption to apply to a byte string or file.
#[derive(Clone, Debug)]
pub enum Corruption {
    /// Drop the last `bytes` bytes — a torn tail / mid-write crash.
    TruncateTail {
        /// Number of bytes to drop (clamped to the data length).
        bytes: u64,
    },
    /// XOR one bit — checksum-detectable media corruption.
    FlipBit {
        /// Byte offset (clamped into range; no-op on empty data).
        offset: u64,
        /// Bit index 0..8 (taken modulo 8).
        bit: u8,
    },
    /// Re-append the last `bytes` bytes — a duplicated segment.
    DuplicateTail {
        /// Length of the duplicated suffix (clamped to the length).
        bytes: u64,
    },
}

/// Applies `corruption` to `data` in place. Offsets and lengths are
/// clamped so any corruption is applicable to any data; returns false
/// when the operation was a no-op (e.g. empty input).
pub fn corrupt_bytes(data: &mut Vec<u8>, corruption: &Corruption) -> bool {
    match corruption {
        Corruption::TruncateTail { bytes } => {
            let cut = (*bytes as usize).min(data.len());
            if cut == 0 {
                return false;
            }
            data.truncate(data.len() - cut);
            true
        }
        Corruption::FlipBit { offset, bit } => {
            if data.is_empty() {
                return false;
            }
            let at = (*offset as usize).min(data.len() - 1);
            data[at] ^= 1 << (bit % 8);
            true
        }
        Corruption::DuplicateTail { bytes } => {
            let take = (*bytes as usize).min(data.len());
            if take == 0 {
                return false;
            }
            let tail = data[data.len() - take..].to_vec();
            data.extend_from_slice(&tail);
            true
        }
    }
}

/// Applies `corruption` to the file at `path`. Returns false when the
/// corruption was a no-op on that file's contents.
pub fn inject(path: &Path, corruption: &Corruption) -> io::Result<bool> {
    let mut data = fs::read(path)?;
    let changed = corrupt_bytes(&mut data, corruption);
    if changed {
        fs::write(path, &data)?;
    }
    Ok(changed)
}

fn listed(dir: &Path, prefix: &str) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with(prefix) && !name.ends_with(".tmp") {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// WAL segment files in `dir`, name-sorted.
pub fn wal_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    listed(dir, "wal.")
}

/// Snapshot files in `dir`, name-sorted.
pub fn snapshot_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    listed(dir, "snapshot.")
}

/// All store files in `dir` (snapshots then WALs), name-sorted — the
/// target list for randomized corruption.
pub fn store_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = snapshot_files(dir)?;
    out.extend(wal_files(dir)?);
    Ok(out)
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Creates and returns a unique scratch directory under the system
/// temp dir. Deterministic-friendly: uniqueness comes from the pid
/// plus a process-wide counter, not the clock.
pub fn unique_temp_dir(tag: &str) -> PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gae-durable-{tag}-{}-{n}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruptions_are_clamped_and_reported() {
        let mut empty = Vec::new();
        assert!(!corrupt_bytes(
            &mut empty,
            &Corruption::FlipBit { offset: 5, bit: 1 }
        ));
        assert!(!corrupt_bytes(
            &mut empty,
            &Corruption::TruncateTail { bytes: 9 }
        ));

        let mut data = b"abcdef".to_vec();
        assert!(corrupt_bytes(
            &mut data,
            &Corruption::TruncateTail { bytes: 100 }
        ));
        assert!(data.is_empty());

        let mut data = b"abcdef".to_vec();
        assert!(corrupt_bytes(
            &mut data,
            &Corruption::FlipBit {
                offset: 100,
                bit: 0
            }
        ));
        assert_eq!(data, b"abcdeg");

        let mut data = b"abcdef".to_vec();
        assert!(corrupt_bytes(
            &mut data,
            &Corruption::DuplicateTail { bytes: 2 }
        ));
        assert_eq!(data, b"abcdefef");
    }

    #[test]
    fn inject_rewrites_files() {
        let dir = unique_temp_dir("inject");
        let path = dir.join("wal.000000");
        fs::write(&path, b"0123456789").unwrap();
        assert!(inject(&path, &Corruption::TruncateTail { bytes: 4 }).unwrap());
        assert_eq!(fs::read(&path).unwrap(), b"012345");
        assert_eq!(wal_files(&dir).unwrap(), vec![path.clone()]);
        assert!(snapshot_files(&dir).unwrap().is_empty());
        assert_eq!(store_files(&dir).unwrap(), vec![path]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
