//! `gae-durable` — write-ahead-log + snapshot persistence for the GAE
//! services (paper §4 "Backup & Recovery", §5 job repository).
//!
//! Everything in-memory in `gae-core`/`gae-monitor` dies with the
//! process; this crate provides the durable substrate: an append-only,
//! CRC-32-checksummed, length-prefixed WAL with group-commit batching
//! ([`DurableStore::commit`]), periodic compacting snapshots
//! ([`DurableStore::rotate`]), and a deterministic, read-only recovery
//! path ([`DurableStore::recover`]) that always lands on a
//! prefix-consistent committed state — even with torn tails,
//! bit flips, or duplicated segments injected by [`fault`].
//!
//! Built on `std::fs` only, consistent with the workspace's offline
//! shim policy. The service-level wiring (what gets logged, how state
//! is rebuilt) lives in `gae-core::persist`.

#![warn(missing_docs)]

pub mod crc32;
pub mod fault;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use fault::Corruption;
pub use store::{DurableStore, Recovered, StoreStats};
pub use wal::TailState;

#[cfg(test)]
mod prop_tests {
    use crate::fault::{self, Corruption};
    use crate::store::DurableStore;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Recovery of a corrupted store always yields an exact prefix
        /// of the committed record stream, ending at a commit point.
        #[test]
        fn recovery_is_prefix_consistent(
            batches in prop::collection::vec(prop::collection::vec(0u8..255, 0..40), 1..8),
            rotate_after in any::<prop::sample::Index>(),
            target in any::<prop::sample::Index>(),
            kind in 0u8..3,
            offset in any::<prop::sample::Index>(),
            bit in 0u8..8,
        ) {
            let dir = fault::unique_temp_dir("prop");
            let mut store = DurableStore::create(&dir, false).unwrap();
            // Committed records per commit point, cumulatively.
            let mut per_commit: Vec<Vec<Vec<u8>>> = vec![Vec::new()];
            let rotate_at = rotate_after.index(batches.len());
            for (i, batch) in batches.iter().enumerate() {
                store.append(batch.clone());
                store.commit().unwrap();
                let mut all = per_commit.last().unwrap().clone();
                all.push(batch.clone());
                per_commit.push(all);
                if i == rotate_at {
                    store.rotate(b"rotation-snapshot").unwrap();
                }
            }
            drop(store);

            let files = fault::store_files(&dir).unwrap();
            let file = &files[target.index(files.len())];
            let len = std::fs::metadata(file).unwrap().len().max(1);
            let corruption = match kind {
                0 => Corruption::TruncateTail { bytes: offset.index(len as usize) as u64 + 1 },
                1 => Corruption::FlipBit { offset: offset.index(len as usize) as u64, bit },
                _ => Corruption::DuplicateTail { bytes: offset.index(len as usize) as u64 + 1 },
            };
            fault::inject(file, &corruption).unwrap();

            let rec = DurableStore::recover(&dir).unwrap();
            let j = rec.commit_index as usize;
            prop_assert!(j < per_commit.len());
            // Reconstruct: snapshot replaces the records up to the
            // rotation point, so compare full streams.
            let mut replayed: Vec<Vec<u8>> = Vec::new();
            if rec.snapshot == b"rotation-snapshot" {
                replayed.extend(per_commit[rotate_at + 1].clone());
            } else {
                prop_assert!(rec.snapshot.is_empty());
            }
            replayed.extend(rec.records.iter().cloned());
            prop_assert_eq!(&replayed, &per_commit[j]);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
