//! The durable store: one live WAL segment plus a base snapshot,
//! organised in *generations*.
//!
//! Generation `g` on disk is the pair `snapshot.g` + `wal.g`: the
//! snapshot captures all state up to its commit index, and the WAL
//! holds every record appended since. Rotation (compaction) writes
//! `snapshot.(g+1)` reflecting the current commit point, starts an
//! empty `wal.(g+1)`, and prunes generations `<= g-1`, so at most two
//! generations exist at once. Keeping the previous generation makes
//! the store single-fault tolerant: if `snapshot.g` is corrupted,
//! recovery replays `snapshot.(g-1)` + all of `wal.(g-1)` + the valid
//! prefix of `wal.g`.
//!
//! Appends are buffered in memory (group commit); [`DurableStore::commit`]
//! writes all buffered frames plus a commit marker in a single
//! `write_all` and optionally fsyncs. Recovery replays data records up
//! to the last valid marker and deduplicates by the store-wide record
//! sequence number, so duplicated segments cannot double-apply.

use crate::snapshot::{read_snapshot, write_snapshot};
use crate::wal::{encode_commit_frame, encode_data_frame, scan_segment, SegmentScan, TailState};
use gae_types::{GaeError, GaeResult};
use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Path of `snapshot.<generation>` in `dir`.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation:06}"))
}

/// Path of `wal.<generation>` in `dir`.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation:06}"))
}

fn io_err(context: &str, e: std::io::Error) -> GaeError {
    GaeError::Io(format!("{context}: {e}"))
}

/// Cumulative I/O statistics, for the benches.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Data records appended since the store was opened.
    pub records_appended: u64,
    /// Commits performed (markers written).
    pub commits: u64,
    /// Bytes written to WAL segments.
    pub wal_bytes: u64,
}

/// Everything recovery could read from a persistence directory.
#[derive(Debug)]
pub struct Recovered {
    /// Base snapshot payload (empty = empty state).
    pub snapshot: Vec<u8>,
    /// Committed data records after the snapshot, deduplicated and in
    /// append order.
    pub records: Vec<Vec<u8>>,
    /// The commit point the combined state corresponds to.
    pub commit_index: u64,
    /// Highest data-record sequence number applied.
    pub record_seq: u64,
    /// Generation whose snapshot anchored the recovery.
    pub generation: u64,
    /// Tail state of the newest WAL segment (reported, not fatal).
    pub tail: TailState,
    /// True when the newest snapshot was unusable and recovery fell
    /// back to the previous generation.
    pub used_fallback: bool,
}

/// An open, writable durable store (the "writer" side).
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    generation: u64,
    commit_index: u64,
    record_seq: u64,
    pending: Vec<Vec<u8>>,
    file: File,
    fsync: bool,
    stats: StoreStats,
}

impl DurableStore {
    /// Creates a fresh store in `dir` (created if missing). Fails if
    /// the directory already holds a store — recover it instead of
    /// silently overwriting history.
    pub fn create(dir: &Path, fsync: bool) -> GaeResult<Self> {
        fs::create_dir_all(dir).map_err(|e| io_err("create persistence dir", e))?;
        if !list_generations(dir)?.is_empty() {
            return Err(GaeError::Io(format!(
                "persistence dir {} already holds a store; recover it instead of creating anew",
                dir.display()
            )));
        }
        Self::start_generation(dir, 0, 0, 0, &[], fsync)
    }

    /// Opens generation `recovered.generation + 1` seeded with a fresh
    /// snapshot of the recovered state. Called once after replay.
    pub fn resume(
        dir: &Path,
        recovered: &Recovered,
        snapshot: &[u8],
        fsync: bool,
    ) -> GaeResult<Self> {
        Self::start_generation(
            dir,
            recovered.generation + 1,
            recovered.commit_index,
            recovered.record_seq,
            snapshot,
            fsync,
        )
    }

    fn start_generation(
        dir: &Path,
        generation: u64,
        commit_index: u64,
        record_seq: u64,
        snapshot: &[u8],
        fsync: bool,
    ) -> GaeResult<Self> {
        write_snapshot(
            &snapshot_path(dir, generation),
            commit_index,
            record_seq,
            snapshot,
            fsync,
        )
        .map_err(|e| io_err("write snapshot", e))?;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(wal_path(dir, generation))
            .map_err(|e| io_err("open wal segment", e))?;
        prune_before(dir, generation.saturating_sub(1))?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            generation,
            commit_index,
            record_seq,
            pending: Vec::new(),
            file,
            fsync,
            stats: StoreStats::default(),
        })
    }

    /// Buffers one record for the next commit (group commit).
    pub fn append(&mut self, record: Vec<u8>) {
        self.pending.push(record);
    }

    /// Number of records buffered but not yet committed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Writes all buffered records plus a commit marker in one batch,
    /// fsyncing if configured. An empty commit still writes a marker —
    /// checkpoints advance the commit index even when nothing changed.
    pub fn commit(&mut self) -> GaeResult<u64> {
        self.commit_index += 1;
        let mut batch = Vec::new();
        for record in self.pending.drain(..) {
            self.record_seq += 1;
            self.stats.records_appended += 1;
            encode_data_frame(self.record_seq, &record, &mut batch);
        }
        encode_commit_frame(self.commit_index, &mut batch);
        self.file
            .write_all(&batch)
            .and_then(|_| self.file.flush())
            .map_err(|e| io_err("append wal batch", e))?;
        if self.fsync {
            self.file.sync_data().map_err(|e| io_err("fsync wal", e))?;
        }
        self.stats.commits += 1;
        self.stats.wal_bytes += batch.len() as u64;
        Ok(self.commit_index)
    }

    /// Rotates to a new generation anchored at `snapshot` (which must
    /// describe the state at the current commit point). Buffered
    /// records are committed first so the snapshot supersedes them.
    pub fn rotate(&mut self, snapshot: &[u8]) -> GaeResult<()> {
        if !self.pending.is_empty() {
            self.commit()?;
        }
        let next = Self::start_generation(
            &self.dir,
            self.generation + 1,
            self.commit_index,
            self.record_seq,
            snapshot,
            self.fsync,
        )?;
        let stats = self.stats;
        *self = next;
        self.stats = stats;
        Ok(())
    }

    /// The current commit index (count of commits since creation).
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// The on-disk generation currently being written.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The last data-frame sequence number written (count of records
    /// since creation). Replication anchors snapshot installs at
    /// `(commit_index, record_seq)` so a follower's next generation
    /// numbers frames exactly like the leader's.
    pub fn record_seq(&self) -> u64 {
        self.record_seq
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Read-only recovery: reconstructs the longest prefix-consistent
    /// committed state from `dir`. Never writes; call [`Self::resume`]
    /// afterwards to continue appending.
    pub fn recover(dir: &Path) -> GaeResult<Recovered> {
        let generations = list_generations(dir)?;
        let Some(&newest) = generations.last() else {
            return Err(GaeError::Io(format!(
                "no durable store found in {}",
                dir.display()
            )));
        };
        let snap =
            read_snapshot(&snapshot_path(dir, newest)).map_err(|e| io_err("read snapshot", e))?;
        if let Some(snap) = snap {
            let scan = scan_wal(dir, newest)?;
            return Ok(assemble(
                snap.payload,
                snap.commit_index,
                snap.record_seq,
                vec![scan],
                newest,
                false,
            ));
        }
        // Newest snapshot unusable. Generation 0's snapshot is always
        // empty, so it can be substituted wholesale; otherwise fall
        // back to the previous generation's snapshot plus both WALs.
        if newest == 0 {
            let scan = scan_wal(dir, 0)?;
            return Ok(assemble(Vec::new(), 0, 0, vec![scan], 0, true));
        }
        let prev = read_snapshot(&snapshot_path(dir, newest - 1))
            .map_err(|e| io_err("read fallback snapshot", e))?
            .ok_or_else(|| {
                GaeError::Io(format!(
                    "snapshots {} and {} both unreadable",
                    newest,
                    newest - 1
                ))
            })?;
        let prev_scan = scan_wal(dir, newest - 1)?;
        let cur_scan = scan_wal(dir, newest)?;
        Ok(assemble(
            prev.payload,
            prev.commit_index,
            prev.record_seq,
            vec![prev_scan, cur_scan],
            newest - 1,
            true,
        ))
    }
}

fn scan_wal(dir: &Path, generation: u64) -> GaeResult<SegmentScan> {
    scan_segment(&wal_path(dir, generation)).map_err(|e| io_err("scan wal segment", e))
}

/// Merges a base snapshot with one or two WAL scans, deduplicating
/// records by sequence number and tracking the final commit index.
fn assemble(
    snapshot: Vec<u8>,
    base_commit: u64,
    base_seq: u64,
    scans: Vec<SegmentScan>,
    generation: u64,
    used_fallback: bool,
) -> Recovered {
    let mut records = Vec::new();
    let mut commit_index = base_commit;
    let mut record_seq = base_seq;
    let mut tail = TailState::Clean;
    for scan in scans {
        for (seq, record) in scan.committed {
            if seq > record_seq {
                record_seq = seq;
                records.push(record);
            }
        }
        if let Some(index) = scan.last_commit_index {
            commit_index = commit_index.max(index);
        }
        tail = scan.tail; // newest segment's tail wins
    }
    Recovered {
        snapshot,
        records,
        commit_index,
        record_seq,
        generation,
        tail,
        used_fallback,
    }
}

/// Sorted generations present in `dir` (union over snapshot/wal files).
fn list_generations(dir: &Path) -> GaeResult<Vec<u64>> {
    let mut generations = BTreeSet::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("list persistence dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list persistence dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = name
            .strip_prefix("snapshot.")
            .or_else(|| name.strip_prefix("wal."))
        {
            if let Ok(g) = g.parse::<u64>() {
                generations.insert(g);
            }
        }
    }
    Ok(generations.into_iter().collect())
}

/// Removes snapshot/wal files of generations strictly below `keep_from`.
fn prune_before(dir: &Path, keep_from: u64) -> GaeResult<()> {
    for g in list_generations(dir)? {
        if g < keep_from {
            let _ = fs::remove_file(snapshot_path(dir, g));
            let _ = fs::remove_file(wal_path(dir, g));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{self, Corruption};

    fn temp() -> PathBuf {
        fault::unique_temp_dir("store")
    }

    fn recs(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("record-{i}").into_bytes()).collect()
    }

    #[test]
    fn roundtrip_across_commits_and_rotation() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, true).unwrap();
        for r in recs(3) {
            store.append(r);
        }
        assert_eq!(store.commit().unwrap(), 1);
        store.append(b"late".to_vec());
        assert_eq!(store.commit().unwrap(), 2);
        store.rotate(b"snapshot-at-2").unwrap();
        assert_eq!(store.generation(), 1);
        store.append(b"post-rotate".to_vec());
        assert_eq!(store.commit().unwrap(), 3);
        drop(store);

        let rec = DurableStore::recover(&dir).unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.commit_index, 3);
        assert_eq!(rec.snapshot, b"snapshot-at-2");
        assert_eq!(rec.records, vec![b"post-rotate".to_vec()]);
        assert!(rec.tail.is_clean());
        assert!(!rec.used_fallback);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = temp();
        let store = DurableStore::create(&dir, false).unwrap();
        drop(store);
        assert!(DurableStore::create(&dir, false).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_commits_advance_the_index() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, false).unwrap();
        store.commit().unwrap();
        store.commit().unwrap();
        store.commit().unwrap();
        drop(store);
        let rec = DurableStore::recover(&dir).unwrap();
        assert_eq!(rec.commit_index, 3);
        assert!(rec.records.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_commit() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, false).unwrap();
        store.append(b"committed".to_vec());
        store.commit().unwrap();
        store.append(b"lost".to_vec());
        store.commit().unwrap();
        drop(store);
        // Chop a few bytes off the second batch.
        fault::inject(&wal_path(&dir, 0), &Corruption::TruncateTail { bytes: 3 }).unwrap();
        let rec = DurableStore::recover(&dir).unwrap();
        assert_eq!(rec.commit_index, 1);
        assert_eq!(rec.records, vec![b"committed".to_vec()]);
        assert!(!rec.tail.is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_a_generation() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, false).unwrap();
        store.append(b"one".to_vec());
        store.commit().unwrap();
        store.rotate(b"snap-1").unwrap();
        store.append(b"two".to_vec());
        store.commit().unwrap();
        drop(store);
        fault::inject(
            &snapshot_path(&dir, 1),
            &Corruption::FlipBit { offset: 20, bit: 2 },
        )
        .unwrap();
        let rec = DurableStore::recover(&dir).unwrap();
        assert!(rec.used_fallback);
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.commit_index, 2);
        // Fallback replays gen-0 WAL fully, then gen-1's prefix.
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_generation_zero_snapshot_substitutes_empty_state() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, false).unwrap();
        store.append(b"only".to_vec());
        store.commit().unwrap();
        drop(store);
        fault::inject(
            &snapshot_path(&dir, 0),
            &Corruption::TruncateTail { bytes: 10 },
        )
        .unwrap();
        let rec = DurableStore::recover(&dir).unwrap();
        assert!(rec.used_fallback);
        assert_eq!(rec.commit_index, 1);
        assert_eq!(rec.records, vec![b"only".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicated_tail_does_not_double_apply() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, false).unwrap();
        store.append(b"a".to_vec());
        store.commit().unwrap();
        store.append(b"b".to_vec());
        store.commit().unwrap();
        drop(store);
        let path = wal_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        // Duplicate the entire segment onto its own tail: every frame
        // re-appears with an already-seen sequence number.
        fault::inject(&path, &Corruption::DuplicateTail { bytes: len }).unwrap();
        let rec = DurableStore::recover(&dir).unwrap();
        assert_eq!(rec.commit_index, 2);
        assert_eq!(rec.records, vec![b"a".to_vec(), b"b".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_continues_commit_sequence() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, false).unwrap();
        store.append(b"before-crash".to_vec());
        store.commit().unwrap();
        drop(store);
        let rec = DurableStore::recover(&dir).unwrap();
        let mut store = DurableStore::resume(&dir, &rec, b"resumed-state", false).unwrap();
        assert_eq!(store.generation(), rec.generation + 1);
        assert_eq!(store.commit_index(), 1);
        store.append(b"after-crash".to_vec());
        assert_eq!(store.commit().unwrap(), 2);
        drop(store);
        let rec2 = DurableStore::recover(&dir).unwrap();
        assert_eq!(rec2.snapshot, b"resumed-state");
        assert_eq!(rec2.records, vec![b"after-crash".to_vec()]);
        assert_eq!(rec2.commit_index, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_prunes_to_two_generations() {
        let dir = temp();
        let mut store = DurableStore::create(&dir, false).unwrap();
        for i in 0..4u64 {
            store.append(format!("r{i}").into_bytes());
            store.commit().unwrap();
            store.rotate(format!("snap-{i}").as_bytes()).unwrap();
        }
        assert_eq!(store.generation(), 4);
        drop(store);
        let gens = list_generations(&dir).unwrap();
        assert_eq!(gens, vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
