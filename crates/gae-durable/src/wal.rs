//! WAL segment frame format and the recovery-side scanner.
//!
//! A segment is a flat file of frames:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [kind: u8] [payload: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the payload; `crc` is the CRC-32 of
//! exactly those `len` bytes. Two frame kinds exist:
//!
//! * `kind = 0` — **data**: payload is `[seq: u64 LE][record bytes]`.
//!   `seq` is a store-wide monotone record number used to deduplicate
//!   replay when corruption duplicates whole frames.
//! * `kind = 1` — **commit marker**: payload is `[index: u64 LE]`, the
//!   absolute commit index. Replay applies data frames only up to the
//!   last valid marker; everything after it is uncommitted and
//!   discarded.
//!
//! The scanner never fails on a malformed tail: it reports where and
//! why the segment stopped being parseable and returns the longest
//! committed prefix.

use crate::crc32::Crc32;
use std::fs;
use std::io;
use std::path::Path;

/// Data frame: `[seq u64][record]` payload.
pub const KIND_DATA: u8 = 0;
/// Commit marker frame: `[commit index u64]` payload.
pub const KIND_COMMIT: u8 = 1;

/// Upper bound on a sane frame length; a larger declared length is
/// treated as tail corruption rather than attempted as an allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Fixed bytes in front of every frame payload (len + crc + kind).
pub const FRAME_HEADER_BYTES: usize = 9;

/// How a segment scan ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TailState {
    /// Every byte of the segment parsed as valid frames.
    Clean,
    /// Parsing stopped early; bytes from `offset` on are discarded.
    Torn {
        /// Byte offset of the first unparseable frame.
        offset: u64,
        /// Human-readable reason (truncation, bad checksum, ...).
        reason: String,
    },
}

impl TailState {
    /// True when the segment had no torn tail.
    pub fn is_clean(&self) -> bool {
        matches!(self, TailState::Clean)
    }
}

/// Result of scanning one WAL segment.
#[derive(Debug)]
pub struct SegmentScan {
    /// `(seq, record)` for every data frame at or before the last
    /// valid commit marker, in append order (duplicates included —
    /// the store deduplicates by `seq` across segments).
    pub committed: Vec<(u64, Vec<u8>)>,
    /// Absolute index of the last valid commit marker, if any.
    pub last_commit_index: Option<u64>,
    /// Valid data frames found *after* the last marker (uncommitted).
    pub uncommitted: usize,
    /// Whether and where the segment tail was unparseable.
    pub tail: TailState,
}

impl SegmentScan {
    fn empty() -> Self {
        SegmentScan {
            committed: Vec::new(),
            last_commit_index: None,
            uncommitted: 0,
            tail: TailState::Clean,
        }
    }
}

/// Encodes one frame into `out`.
pub fn encode_frame(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    let len = 1 + payload.len() as u32;
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(payload);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
}

/// Encodes a data frame carrying `(seq, record)`.
pub fn encode_data_frame(seq: u64, record: &[u8], out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(8 + record.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(record);
    encode_frame(KIND_DATA, &payload, out);
}

/// Encodes a commit-marker frame for `index`.
pub fn encode_commit_frame(index: u64, out: &mut Vec<u8>) {
    encode_frame(KIND_COMMIT, &index.to_le_bytes(), out);
}

/// Scans a WAL segment, tolerating any malformed tail. A missing file
/// scans as an empty, clean segment (a crash can land between snapshot
/// creation and first WAL write).
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let data = match fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SegmentScan::empty()),
        Err(e) => return Err(e),
    };
    Ok(scan_bytes(&data))
}

/// Scans raw segment bytes (the file-free core of [`scan_segment`]).
pub fn scan_bytes(data: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan::empty();
    let mut pending: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut pos = 0usize;
    let torn = |pos: usize, reason: &str| TailState::Torn {
        offset: pos as u64,
        reason: reason.to_string(),
    };
    loop {
        if pos == data.len() {
            break; // clean end
        }
        if data.len() - pos < FRAME_HEADER_BYTES {
            scan.tail = torn(pos, "truncated frame header");
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_BYTES {
            scan.tail = torn(pos, "implausible frame length");
            break;
        }
        let body_start = pos + 8;
        let body_end = body_start + len as usize;
        if body_end > data.len() {
            scan.tail = torn(pos, "truncated frame body");
            break;
        }
        let body = &data[body_start..body_end];
        if crate::crc32::crc32(body) != crc {
            scan.tail = torn(pos, "checksum mismatch");
            break;
        }
        let kind = body[0];
        let payload = &body[1..];
        match kind {
            KIND_DATA => {
                if payload.len() < 8 {
                    scan.tail = torn(pos, "data frame shorter than its sequence number");
                    break;
                }
                let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
                pending.push((seq, payload[8..].to_vec()));
            }
            KIND_COMMIT => {
                if payload.len() != 8 {
                    scan.tail = torn(pos, "malformed commit marker");
                    break;
                }
                let index = u64::from_le_bytes(payload.try_into().unwrap());
                scan.committed.append(&mut pending);
                scan.last_commit_index = Some(index);
            }
            _ => {
                scan.tail = torn(pos, "unknown frame kind");
                break;
            }
        }
        pos = body_end;
    }
    scan.uncommitted = pending.len();
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (kind, payload) in frames {
            encode_frame(*kind, payload, &mut out);
        }
        out
    }

    fn data_payload(seq: u64, record: &[u8]) -> Vec<u8> {
        let mut p = seq.to_le_bytes().to_vec();
        p.extend_from_slice(record);
        p
    }

    #[test]
    fn roundtrip_committed_prefix() {
        let bytes = segment(&[
            (KIND_DATA, data_payload(1, b"a")),
            (KIND_DATA, data_payload(2, b"b")),
            (KIND_COMMIT, 1u64.to_le_bytes().to_vec()),
            (KIND_DATA, data_payload(3, b"c")),
        ]);
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.committed.len(), 2);
        assert_eq!(scan.committed[1], (2, b"b".to_vec()));
        assert_eq!(scan.last_commit_index, Some(1));
        assert_eq!(scan.uncommitted, 1);
        assert!(scan.tail.is_clean());
    }

    #[test]
    fn truncation_at_every_offset_never_loses_committed_prefix() {
        let bytes = segment(&[
            (KIND_DATA, data_payload(1, b"alpha")),
            (KIND_COMMIT, 1u64.to_le_bytes().to_vec()),
            (KIND_DATA, data_payload(2, b"beta")),
            (KIND_COMMIT, 2u64.to_le_bytes().to_vec()),
        ]);
        // Frame boundaries: cuts exactly there leave a clean segment.
        let mut boundaries = vec![0usize];
        {
            let mut acc = Vec::new();
            encode_data_frame(1, b"alpha", &mut acc);
            boundaries.push(acc.len());
            encode_commit_frame(1, &mut acc);
            boundaries.push(acc.len());
            encode_data_frame(2, b"beta", &mut acc);
            boundaries.push(acc.len());
            encode_commit_frame(2, &mut acc);
            boundaries.push(acc.len());
        }
        for cut in 0..=bytes.len() {
            let scan = scan_bytes(&bytes[..cut]);
            let expected = if cut >= boundaries[4] {
                2
            } else if cut >= boundaries[2] {
                1
            } else {
                0
            };
            assert_eq!(scan.committed.len(), expected, "cut at {cut}");
            assert_eq!(
                scan.last_commit_index,
                if expected == 0 {
                    None
                } else {
                    Some(expected as u64)
                },
                "cut at {cut}"
            );
            // Mid-frame cuts must be reported as torn.
            assert_eq!(
                scan.tail.is_clean(),
                boundaries.contains(&cut),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flip_anywhere_is_detected_or_isolated() {
        let mut bytes = segment(&[
            (KIND_DATA, data_payload(1, b"payload-one")),
            (KIND_COMMIT, 1u64.to_le_bytes().to_vec()),
        ]);
        let clean = scan_bytes(&bytes);
        assert_eq!(clean.committed.len(), 1);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                bytes[byte] ^= 1 << bit;
                let scan = scan_bytes(&bytes);
                // A flip may truncate the usable prefix but must never
                // yield a record that differs from the original.
                for (seq, rec) in &scan.committed {
                    assert_eq!((*seq, rec.as_slice()), (1, b"payload-one".as_slice()));
                }
                bytes[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn oversized_declared_length_is_torn_tail() {
        let mut bytes = Vec::new();
        encode_data_frame(1, b"ok", &mut bytes);
        encode_commit_frame(1, &mut bytes);
        let torn_at = bytes.len();
        bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.last_commit_index, Some(1));
        assert_eq!(
            scan.tail,
            TailState::Torn {
                offset: torn_at as u64,
                reason: "implausible frame length".into()
            }
        );
    }

    #[test]
    fn missing_file_scans_empty() {
        let scan = scan_segment(Path::new("/nonexistent/gae-durable-wal-test")).unwrap();
        assert!(scan.committed.is_empty());
        assert!(scan.tail.is_clean());
    }
}
