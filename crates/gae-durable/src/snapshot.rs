//! Compacting snapshot files.
//!
//! A snapshot captures the full service state at one commit point so
//! earlier WAL segments can be pruned. Format:
//!
//! ```text
//! [magic: 8 bytes "GAESNAP1"]
//! [commit_index: u64 LE]  — commit point the payload reflects
//! [record_seq: u64 LE]    — data-record sequence counter at that point
//! [len: u64 LE]           — payload length
//! [crc: u32 LE]           — CRC-32 of commit_index‖record_seq‖len‖payload
//! [payload]
//! ```
//!
//! The checksum covers the header fields too: a bit flip in the
//! commit-index field must invalidate the snapshot (forcing fallback
//! to the previous generation), not silently shift the recovered
//! commit point.
//!
//! Snapshots are written to a temp file in the same directory, fsynced,
//! then atomically renamed into place, so a crash mid-write leaves the
//! previous generation intact. Trailing junk after the payload is
//! ignored (a duplicated tail cannot invalidate a snapshot).

use crate::crc32::Crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Snapshot file magic.
pub const MAGIC: &[u8; 8] = b"GAESNAP1";
const HEADER_BYTES: usize = 8 + 8 + 8 + 8 + 4;

/// A decoded snapshot header + payload.
#[derive(Debug)]
pub struct Snapshot {
    /// Commit point the payload reflects.
    pub commit_index: u64,
    /// Data-record sequence counter at that point.
    pub record_seq: u64,
    /// Opaque service-state payload (empty = empty state).
    pub payload: Vec<u8>,
}

/// Writes a snapshot atomically (temp file + rename + dir sync).
pub fn write_snapshot(
    path: &Path,
    commit_index: u64,
    record_seq: u64,
    payload: &[u8],
    fsync: bool,
) -> io::Result<()> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&commit_index.to_le_bytes());
        header.extend_from_slice(&record_seq.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&header[8..]);
        crc.update(payload);
        header.extend_from_slice(&crc.finish().to_le_bytes());
        f.write_all(&header)?;
        f.write_all(payload)?;
        if fsync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, path)?;
    if fsync {
        // Persist the rename itself.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates a snapshot. Returns `Ok(None)` when the file is
/// missing, truncated, or fails its checksum — the caller falls back to
/// the previous generation. Only unexpected I/O errors propagate.
pub fn read_snapshot(path: &Path) -> io::Result<Option<Snapshot>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    Ok(decode(&data))
}

fn decode(data: &[u8]) -> Option<Snapshot> {
    if data.len() < HEADER_BYTES || &data[..8] != MAGIC {
        return None;
    }
    let commit_index = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let record_seq = u64::from_le_bytes(data[16..24].try_into().unwrap());
    let len = u64::from_le_bytes(data[24..32].try_into().unwrap());
    let crc = u32::from_le_bytes(data[32..36].try_into().unwrap());
    let end = HEADER_BYTES.checked_add(usize::try_from(len).ok()?)?;
    // Trailing bytes beyond `end` are tolerated (duplicated tails).
    let payload = data.get(HEADER_BYTES..end)?;
    let mut check = Crc32::new();
    check.update(&data[8..32]);
    check.update(payload);
    if check.finish() != crc {
        return None;
    }
    Some(Snapshot {
        commit_index,
        record_seq,
        payload: payload.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::unique_temp_dir;

    #[test]
    fn roundtrip() {
        let dir = unique_temp_dir("snap-roundtrip");
        let path = dir.join("snapshot.000001");
        write_snapshot(&path, 7, 42, b"state-bytes", true).unwrap();
        let snap = read_snapshot(&path).unwrap().expect("valid snapshot");
        assert_eq!(snap.commit_index, 7);
        assert_eq!(snap.record_seq, 42);
        assert_eq!(snap.payload, b"state-bytes");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payload_is_valid() {
        let dir = unique_temp_dir("snap-empty");
        let path = dir.join("snapshot.000000");
        write_snapshot(&path, 0, 0, b"", false).unwrap();
        let snap = read_snapshot(&path).unwrap().expect("valid snapshot");
        assert_eq!(snap.commit_index, 0);
        assert!(snap.payload.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_rejected_not_propagated() {
        let dir = unique_temp_dir("snap-corrupt");
        let path = dir.join("snapshot.000002");
        write_snapshot(&path, 3, 9, b"payload-under-test", false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x10;
            fs::write(&path, &bytes).unwrap();
            // The checksum covers header and payload alike: any flip
            // invalidates the whole snapshot.
            assert!(read_snapshot(&path).unwrap().is_none(), "flip at {i}");
            bytes[i] ^= 0x10;
        }
        // Truncation at every length.
        fs::write(&path, &bytes).unwrap();
        for cut in 0..bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(read_snapshot(&path).unwrap().is_none(), "cut at {cut}");
        }
        // Trailing junk is fine.
        let mut dup = bytes.clone();
        dup.extend_from_slice(&bytes[bytes.len() - 8..]);
        fs::write(&path, &dup).unwrap();
        assert!(read_snapshot(&path).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_none() {
        assert!(read_snapshot(Path::new("/nonexistent/gae-snap"))
            .unwrap()
            .is_none());
    }
}
