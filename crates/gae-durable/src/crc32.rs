//! CRC-32 (IEEE 802.3 polynomial), table-driven, no external deps.
//!
//! Every WAL frame and snapshot payload is protected by this
//! checksum; recovery treats a mismatch as a torn or corrupted record
//! and stops replay at the previous commit point.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming a frame without
/// concatenating its parts.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        for &b in data {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"hello, durable world".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
