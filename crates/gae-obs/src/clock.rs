//! Injected time source for every observability measurement.
//!
//! Mirrors gae-gate's `GateClock` split: production RPC servers run
//! on wall time, the grid composition root injects the simulation's
//! virtual clock, and tests drive a manual clock — so recorded spans
//! and histogram samples are deterministic wherever the underlying
//! timeline is.

use gae_types::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The time source every [`crate::ObsHub`] measurement reads.
pub trait ObsClock: Send + Sync {
    /// The current instant on the observed timeline.
    fn now(&self) -> SimTime;
}

/// A hand-driven clock for tests: starts at zero, only moves when
/// told to, never regresses.
#[derive(Debug, Default)]
pub struct ManualObsClock {
    micros: AtomicU64,
}

impl ManualObsClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute instant (panics on regression).
    pub fn set(&self, at: SimTime) {
        let prev = self.micros.swap(at.as_micros(), Ordering::SeqCst);
        assert!(prev <= at.as_micros(), "ManualObsClock moved backwards");
    }
}

impl ObsClock for ManualObsClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

/// Wall time, expressed as microseconds since the clock was created.
/// The default for standalone RPC servers (no virtual timeline).
#[derive(Debug)]
pub struct WallObsClock {
    origin: Instant,
}

impl WallObsClock {
    /// A wall clock whose zero is now.
    pub fn new() -> Self {
        WallObsClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallObsClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsClock for WallObsClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.origin.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualObsClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_micros(5);
        assert_eq!(c.now().as_micros(), 5);
        c.set(SimTime::from_micros(9));
        assert_eq!(c.now().as_micros(), 9);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_refuses_regression() {
        let c = ManualObsClock::new();
        c.advance_micros(10);
        c.set(SimTime::from_micros(3));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallObsClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
