//! Observability layer for the GAE reproduction (DESIGN.md §10).
//!
//! The paper's services lean on MonALISA for *aggregate* visibility;
//! this crate adds the causal half: request-scoped trace contexts
//! minted at the RPC door and threaded through steering, scheduling,
//! and execution; log-linear latency histograms (lock-free atomic
//! bucket counters, on the pattern of gae-gate's `ClassCounters`);
//! and per-CondorId job lifecycle timelines.
//!
//! Everything is clocked through the injected [`ObsClock`] — under
//! the grid's virtual clock, traces are a deterministic function of
//! the workload and replay byte-identically in both driver modes.

#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod hub;
pub mod timeline;
pub mod trace;

pub use clock::{ManualObsClock, ObsClock, WallObsClock};
pub use hist::{Histogram, HistogramSet, HistogramSnapshot};
pub use hub::ObsHub;
pub use timeline::{Timeline, TimelineEvent, TimelineStore};
pub use trace::{SpanId, SpanRecord, TraceContext, TraceId, TraceStore};
