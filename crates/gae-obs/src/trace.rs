//! Request-scoped trace contexts and the span store.
//!
//! A trace is one causal tree: a root span minted where a request
//! enters the system (the RPC door, or a task submission inside the
//! steering loop) plus child spans appended as the request crosses
//! services. Identifiers carry no wall-clock or random component —
//! door-minted traces count up from 1, job traces derive from the
//! CondorId — so the same workload yields byte-identical trees in
//! both driver modes.

use gae_types::SimTime;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;

/// Identifies one causal tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// High bit marks CondorId-derived trace ids, keeping them disjoint
/// from the door's counter-minted ids.
const CONDOR_BIT: u64 = 1 << 63;

/// Second-highest bit marks transfer-derived trace ids (from the
/// transfer scheduler's sequential transfer ids), disjoint from both
/// of the families above.
const XFER_BIT: u64 = 1 << 62;

/// Third-highest bit marks replication-derived trace ids (from the
/// replicated log's commit indexes), disjoint from all the families
/// above.
const REPL_BIT: u64 = 1 << 61;

/// Fourth-highest bit marks history-query trace ids (from the history
/// facade's sequential query counter), disjoint from all the families
/// above.
const HIST_BIT: u64 = 1 << 60;

impl TraceId {
    /// Wraps a raw id (door-minted counters start at 1).
    pub const fn new(raw: u64) -> Self {
        TraceId(raw)
    }

    /// The deterministic trace id of a submitted task, derived from
    /// its CondorId so both driver modes agree without coordination.
    pub const fn for_condor(condor_raw: u64) -> Self {
        TraceId(condor_raw | CONDOR_BIT)
    }

    /// The deterministic trace id of a managed transfer, derived from
    /// the transfer scheduler's sequential transfer id.
    pub const fn for_xfer(transfer_id: u64) -> Self {
        TraceId(transfer_id | XFER_BIT)
    }

    /// The deterministic trace id of a replicated-log commit, derived
    /// from the leader's commit index.
    pub const fn for_repl(commit_index: u64) -> Self {
        TraceId(commit_index | REPL_BIT)
    }

    /// The deterministic trace id of a history query, derived from the
    /// history facade's sequential query counter.
    pub const fn for_hist(query_id: u64) -> Self {
        TraceId(query_id | HIST_BIT)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// Identifies one span within its trace; ids are assigned
/// sequentially from 1, the root is always span 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The root span of every trace.
    pub const ROOT: SpanId = SpanId(1);

    /// Wraps a raw id.
    pub const fn new(raw: u64) -> Self {
        SpanId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The pair a request carries across the wire: which tree it belongs
/// to and which span is its immediate parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The causal tree.
    pub trace: TraceId,
    /// The span new work should attach under.
    pub span: SpanId,
}

impl TraceContext {
    /// Wire encoding, carried in the `X-GAE-Trace` header.
    pub fn encode(&self) -> String {
        format!("{:x}:{:x}", self.trace.0, self.span.0)
    }

    /// Parses the wire encoding; `None` on malformed input.
    pub fn parse(s: &str) -> Option<TraceContext> {
        let (t, sp) = s.trim().split_once(':')?;
        Some(TraceContext {
            trace: TraceId(u64::from_str_radix(t, 16).ok()?),
            span: SpanId(u64::from_str_radix(sp, 16).ok()?),
        })
    }
}

/// One recorded span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The tree this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span (`None` for the root).
    pub parent: Option<SpanId>,
    /// What the span covers (e.g. `steer.submit`, `exec.run`).
    pub name: String,
    /// When the spanned work began.
    pub start: SimTime,
    /// When it ended.
    pub end: SimTime,
}

/// The span repository: every recorded trace, plus the CondorId →
/// trace index job-lifecycle lookups go through.
#[derive(Default)]
pub struct TraceStore {
    traces: RwLock<HashMap<TraceId, Vec<SpanRecord>>>,
    by_condor: RwLock<HashMap<u64, TraceId>>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `trace` has a root span (creating one named `name`
    /// starting at `at` if absent) and returns the context new child
    /// spans should attach under.
    pub fn root(&self, trace: TraceId, name: &str, at: SimTime) -> TraceContext {
        let mut traces = self.traces.write();
        traces.entry(trace).or_insert_with(|| {
            vec![SpanRecord {
                trace,
                span: SpanId::ROOT,
                parent: None,
                name: name.to_string(),
                start: at,
                end: at,
            }]
        });
        TraceContext {
            trace,
            span: SpanId::ROOT,
        }
    }

    /// Appends a child span under `ctx` and stretches the root to
    /// cover it; span ids are assigned in recording order. Recording
    /// into a trace with no root creates one spanning the child.
    pub fn child(&self, ctx: TraceContext, name: &str, start: SimTime, end: SimTime) -> SpanId {
        let mut traces = self.traces.write();
        let spans = traces.entry(ctx.trace).or_insert_with(|| {
            vec![SpanRecord {
                trace: ctx.trace,
                span: SpanId::ROOT,
                parent: None,
                name: "trace".to_string(),
                start,
                end,
            }]
        });
        let id = SpanId(spans.len() as u64 + 1);
        spans.push(SpanRecord {
            trace: ctx.trace,
            span: id,
            parent: Some(ctx.span),
            name: name.to_string(),
            start,
            end,
        });
        let root = &mut spans[0];
        root.end = root.end.max(end);
        root.start = root.start.min(start);
        id
    }

    /// Binds a CondorId to its trace for later lookup.
    pub fn bind_condor(&self, condor_raw: u64, trace: TraceId) {
        self.by_condor.write().insert(condor_raw, trace);
    }

    /// The trace a CondorId was bound to, if any.
    pub fn trace_for_condor(&self, condor_raw: u64) -> Option<TraceId> {
        self.by_condor.read().get(&condor_raw).copied()
    }

    /// Every span of a trace in span-id order; `None` for an unknown
    /// trace.
    pub fn spans(&self, trace: TraceId) -> Option<Vec<SpanRecord>> {
        self.traces.read().get(&trace).cloned()
    }

    /// All recorded trace ids, sorted.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.traces.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Number of recorded traces.
    pub fn len(&self) -> usize {
        self.traces.read().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable tree dump, deterministic: children in span-id
    /// order, instants in microseconds on the trace's own timeline.
    pub fn render(&self, trace: TraceId) -> Option<String> {
        let spans = self.spans(trace)?;
        let mut out = format!("trace {} ({} spans)\n", trace, spans.len());
        fn walk(out: &mut String, spans: &[SpanRecord], parent: SpanId, depth: usize) {
            for s in spans.iter().filter(|s| s.parent == Some(parent)) {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!(
                    "- {} [{}us..{}us]\n",
                    s.name,
                    s.start.as_micros(),
                    s.end.as_micros()
                ));
                walk(out, spans, s.span, depth + 1);
            }
        }
        if let Some(root) = spans.iter().find(|s| s.parent.is_none()) {
            out.push_str(&format!(
                "- {} [{}us..{}us]\n",
                root.name,
                root.start.as_micros(),
                root.end.as_micros()
            ));
            walk(&mut out, &spans, root.span, 1);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_wire_roundtrip() {
        let ctx = TraceContext {
            trace: TraceId::for_condor(42),
            span: SpanId::new(7),
        };
        assert_eq!(TraceContext::parse(&ctx.encode()), Some(ctx));
        assert_eq!(TraceContext::parse("junk"), None);
        assert_eq!(TraceContext::parse("12:zz"), None);
    }

    #[test]
    fn condor_ids_are_disjoint_from_counter_ids() {
        assert_ne!(TraceId::for_condor(1), TraceId::new(1));
        assert_eq!(TraceId::for_condor(5).raw() & !CONDOR_BIT, 5);
    }

    #[test]
    fn xfer_ids_are_disjoint_from_both_families() {
        assert_ne!(TraceId::for_xfer(1), TraceId::new(1));
        assert_ne!(TraceId::for_xfer(1), TraceId::for_condor(1));
        assert_eq!(TraceId::for_xfer(5).raw() & !XFER_BIT, 5);
    }

    #[test]
    fn repl_ids_are_disjoint_from_every_family() {
        assert_ne!(TraceId::for_repl(1), TraceId::new(1));
        assert_ne!(TraceId::for_repl(1), TraceId::for_condor(1));
        assert_ne!(TraceId::for_repl(1), TraceId::for_xfer(1));
        assert_eq!(TraceId::for_repl(5).raw() & !REPL_BIT, 5);
    }

    #[test]
    fn hist_ids_are_disjoint_from_every_family() {
        assert_ne!(TraceId::for_hist(1), TraceId::new(1));
        assert_ne!(TraceId::for_hist(1), TraceId::for_condor(1));
        assert_ne!(TraceId::for_hist(1), TraceId::for_xfer(1));
        assert_ne!(TraceId::for_hist(1), TraceId::for_repl(1));
        assert_eq!(TraceId::for_hist(5).raw() & !HIST_BIT, 5);
    }

    #[test]
    fn root_is_created_once_and_stretched() {
        let store = TraceStore::new();
        let t = TraceId::new(1);
        let ctx = store.root(t, "job", SimTime::from_micros(10));
        assert_eq!(ctx.span, SpanId::ROOT);
        // Re-rooting is a no-op.
        store.root(t, "other", SimTime::from_micros(50));
        store.child(
            ctx,
            "work",
            SimTime::from_micros(20),
            SimTime::from_micros(90),
        );
        let spans = store.spans(t).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "job");
        assert_eq!(spans[0].end, SimTime::from_micros(90), "root stretched");
        assert_eq!(spans[1].parent, Some(SpanId::ROOT));
    }

    #[test]
    fn condor_binding_resolves() {
        let store = TraceStore::new();
        let t = TraceId::for_condor(9);
        store.root(t, "task", SimTime::ZERO);
        store.bind_condor(9, t);
        assert_eq!(store.trace_for_condor(9), Some(t));
        assert_eq!(store.trace_for_condor(10), None);
    }

    #[test]
    fn render_is_a_connected_tree() {
        let store = TraceStore::new();
        let t = TraceId::new(3);
        let root = store.root(t, "task j1/t1", SimTime::ZERO);
        let sched = store.child(root, "schedule", SimTime::ZERO, SimTime::ZERO);
        store.child(
            TraceContext {
                trace: t,
                span: sched,
            },
            "gate.admit",
            SimTime::ZERO,
            SimTime::ZERO,
        );
        let text = store.render(t).unwrap();
        assert!(text.contains("trace 3 (3 spans)"), "{text}");
        assert!(text.contains("- task j1/t1"), "{text}");
        assert!(text.contains("  - schedule"), "{text}");
        assert!(text.contains("    - gate.admit"), "{text}");
    }
}
