//! The [`ObsHub`]: one shared handle bundling the trace store, the
//! latency histograms, and the lifecycle timelines around a single
//! injected clock. The composition root builds one per deployment
//! and hands clones to the RPC host, the gate wiring, steering, and
//! jobmon.

use crate::clock::ObsClock;
use crate::hist::{HistogramSet, HistogramSnapshot};
use crate::timeline::{Timeline, TimelineEvent, TimelineStore};
use crate::trace::{SpanId, TraceContext, TraceId, TraceStore};
use gae_types::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The deployment-wide observability hub.
pub struct ObsHub {
    clock: Arc<dyn ObsClock>,
    traces: TraceStore,
    rpc: HistogramSet,
    gate: HistogramSet,
    xfer: HistogramSet,
    repl: HistogramSet,
    hist: HistogramSet,
    timelines: TimelineStore,
    next_trace: AtomicU64,
}

impl ObsHub {
    /// A hub measuring on `clock`'s timeline.
    pub fn new(clock: Arc<dyn ObsClock>) -> Arc<ObsHub> {
        Arc::new(ObsHub {
            clock,
            traces: TraceStore::new(),
            rpc: HistogramSet::new(),
            gate: HistogramSet::new(),
            xfer: HistogramSet::new(),
            repl: HistogramSet::new(),
            hist: HistogramSet::new(),
            timelines: TimelineStore::new(),
            next_trace: AtomicU64::new(1),
        })
    }

    /// The current instant on the hub's clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    // ---- traces ----

    /// Mints a fresh door trace (sequential ids, deterministic given
    /// a deterministic call order) rooted at `name`.
    pub fn mint_trace(&self, name: &str) -> TraceContext {
        let id = TraceId::new(self.next_trace.fetch_add(1, Ordering::Relaxed));
        self.traces.root(id, name, self.now())
    }

    /// The deterministic trace of a task submission, rooted on first
    /// use (both driver modes derive the same id from the CondorId).
    pub fn condor_trace(&self, condor_raw: u64, name: &str, at: SimTime) -> TraceContext {
        let ctx = self.traces.root(TraceId::for_condor(condor_raw), name, at);
        self.traces.bind_condor(condor_raw, ctx.trace);
        ctx
    }

    /// The deterministic trace of a managed transfer, rooted on first
    /// use (derived from the transfer scheduler's sequential id).
    pub fn xfer_trace(&self, transfer_id: u64, name: &str, at: SimTime) -> TraceContext {
        self.traces.root(TraceId::for_xfer(transfer_id), name, at)
    }

    /// The deterministic trace of a replicated-log commit, rooted on
    /// first use (derived from the leader's commit index).
    pub fn repl_trace(&self, commit_index: u64, name: &str, at: SimTime) -> TraceContext {
        self.traces.root(TraceId::for_repl(commit_index), name, at)
    }

    /// The deterministic trace of a history query, rooted on first use
    /// (derived from the history facade's sequential query counter).
    pub fn hist_trace(&self, query_id: u64, name: &str, at: SimTime) -> TraceContext {
        self.traces.root(TraceId::for_hist(query_id), name, at)
    }

    /// Appends a child span under `ctx`.
    pub fn span(&self, ctx: TraceContext, name: &str, start: SimTime, end: SimTime) -> SpanId {
        self.traces.child(ctx, name, start, end)
    }

    /// Appends a zero-width child span at `at`.
    pub fn span_at(&self, ctx: TraceContext, name: &str, at: SimTime) -> SpanId {
        self.traces.child(ctx, name, at, at)
    }

    /// The span store (RPC facades and tests read through this).
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    // ---- histograms ----

    /// Records one RPC's server-side latency under its full method
    /// name (`service.method`).
    pub fn record_rpc(&self, method: &str, latency: SimDuration) {
        self.rpc.record(method, latency);
    }

    /// Records the queue latency of one gate disposition (`run`,
    /// `shed`, `expired`, ...).
    pub fn record_gate(&self, disposition: &str, latency: SimDuration) {
        self.gate.record(disposition, latency);
    }

    /// Per-method latency snapshots, method-sorted.
    pub fn rpc_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.rpc.snapshot()
    }

    /// Per-disposition latency snapshots, disposition-sorted.
    pub fn gate_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.gate.snapshot()
    }

    /// Records one landed transfer's request-to-arrival latency under
    /// its directed link (`"from->to"`).
    pub fn record_xfer(&self, link: &str, latency: SimDuration) {
        self.xfer.record(link, latency);
    }

    /// Per-link transfer latency snapshots, link-sorted.
    pub fn xfer_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.xfer.snapshot()
    }

    /// Records one replication operation's latency (`commit` =
    /// leader-commit to leader-commit spacing, i.e. the window a
    /// failover could lose; `rotate` = snapshot forwarding).
    pub fn record_repl(&self, op: &str, latency: SimDuration) {
        self.repl.record(op, latency);
    }

    /// Per-operation replication latency snapshots, op-sorted.
    pub fn repl_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.repl.snapshot()
    }

    /// Records one history-facade call's wall-clock service time under
    /// its method (`query`, `export`, `stats`).
    pub fn record_hist(&self, method: &str, latency: SimDuration) {
        self.hist.record(method, latency);
    }

    /// Per-method history latency snapshots, method-sorted.
    pub fn hist_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.hist.snapshot()
    }

    // ---- timelines ----

    /// Marks a lifecycle instant for a CondorId at an explicit time
    /// (first write per event wins, so WAL replay cannot shift it).
    pub fn mark_at(&self, condor_raw: u64, event: TimelineEvent, at: SimTime) {
        self.timelines.mark(condor_raw, event, at);
    }

    /// Marks a lifecycle instant at the hub clock's now.
    pub fn mark(&self, condor_raw: u64, event: TimelineEvent) {
        self.mark_at(condor_raw, event, self.now());
    }

    /// The timeline of one CondorId.
    pub fn timeline(&self, condor_raw: u64) -> Option<Timeline> {
        self.timelines.get(condor_raw)
    }

    /// The timeline store (renders, exports).
    pub fn timelines(&self) -> &TimelineStore {
        &self.timelines
    }

    // ---- text dumps ----

    /// Human-readable dump of one CondorId: its trace tree and
    /// lifecycle timeline.
    pub fn render_condor(&self, condor_raw: u64) -> Option<String> {
        let trace = self.traces.trace_for_condor(condor_raw)?;
        let mut out = self.traces.render(trace)?;
        if let Some(tl) = self.timelines.render(condor_raw) {
            out.push_str(&tl);
        }
        Some(out)
    }

    /// Human-readable per-method latency table (bench bins print
    /// this).
    pub fn render_histograms(&self) -> String {
        let mut out =
            String::from("method                     count    p50us    p95us    p99us    maxus\n");
        for (name, s) in self.rpc_snapshot() {
            out.push_str(&format!(
                "{name:<24} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
            ));
        }
        for (name, s) in self.gate_snapshot() {
            out.push_str(&format!(
                "gate:{name:<19} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
            ));
        }
        for (name, s) in self.xfer_snapshot() {
            out.push_str(&format!(
                "xfer:{name:<19} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
            ));
        }
        for (name, s) in self.repl_snapshot() {
            out.push_str(&format!(
                "repl:{name:<19} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
            ));
        }
        for (name, s) in self.hist_snapshot() {
            out.push_str(&format!(
                "hist:{name:<19} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualObsClock;

    fn hub() -> (Arc<ObsHub>, Arc<ManualObsClock>) {
        let clock = Arc::new(ManualObsClock::new());
        (ObsHub::new(clock.clone()), clock)
    }

    #[test]
    fn minted_traces_are_sequential() {
        let (hub, _) = hub();
        let a = hub.mint_trace("rpc");
        let b = hub.mint_trace("rpc");
        assert_eq!(a.trace.raw(), 1);
        assert_eq!(b.trace.raw(), 2);
    }

    #[test]
    fn condor_trace_is_stable_and_indexed() {
        let (hub, clock) = hub();
        clock.advance_micros(100);
        let a = hub.condor_trace(7, "task", hub.now());
        let b = hub.condor_trace(7, "task", hub.now());
        assert_eq!(a, b);
        assert!(hub.render_condor(7).is_some());
        assert!(hub.render_condor(8).is_none());
    }

    #[test]
    fn histogram_table_renders_all_families() {
        let (hub, _) = hub();
        hub.record_rpc("steer.submit", SimDuration::from_micros(40));
        hub.record_gate("run", SimDuration::from_micros(3));
        hub.record_xfer("1->2", SimDuration::from_secs(8));
        hub.record_repl("commit", SimDuration::from_secs(15));
        hub.record_hist("query", SimDuration::from_micros(700));
        let table = hub.render_histograms();
        assert!(table.contains("steer.submit"), "{table}");
        assert!(table.contains("gate:run"), "{table}");
        assert!(table.contains("xfer:1->2"), "{table}");
        assert!(table.contains("repl:commit"), "{table}");
        assert!(table.contains("hist:query"), "{table}");
    }

    #[test]
    fn timeline_marks_use_clock() {
        let (hub, clock) = hub();
        hub.mark(5, TimelineEvent::Submit);
        clock.advance_micros(250);
        hub.mark(5, TimelineEvent::Complete);
        let tl = hub.timeline(5).unwrap();
        assert_eq!(tl.instant(TimelineEvent::Submit), Some(SimTime::ZERO));
        assert_eq!(
            tl.instant(TimelineEvent::Complete),
            Some(SimTime::from_micros(250))
        );
    }
}
