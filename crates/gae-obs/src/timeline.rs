//! Per-CondorId job lifecycle timelines.
//!
//! The DBManager (jobmon) assembles these from the instants it
//! already tracks: submit → admit → schedule → start → complete. A
//! timeline answers the steering question MonALISA aggregates cannot:
//! *where did this one job's latency go?*

use gae_types::SimTime;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;

/// A lifecycle instant of one task submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimelineEvent {
    /// Handed to an execution service.
    Submit,
    /// Passed the admission gate / breaker check.
    Admit,
    /// A site was chosen for it.
    Schedule,
    /// Began running.
    Start,
    /// Reached a terminal state.
    Complete,
}

impl TimelineEvent {
    /// Every event in lifecycle order.
    pub const ALL: [TimelineEvent; 5] = [
        TimelineEvent::Submit,
        TimelineEvent::Admit,
        TimelineEvent::Schedule,
        TimelineEvent::Start,
        TimelineEvent::Complete,
    ];

    /// Stable lowercase name (metric params, text dumps).
    pub fn name(self) -> &'static str {
        match self {
            TimelineEvent::Submit => "submit",
            TimelineEvent::Admit => "admit",
            TimelineEvent::Schedule => "schedule",
            TimelineEvent::Start => "start",
            TimelineEvent::Complete => "complete",
        }
    }
}

impl fmt::Display for TimelineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The recorded lifecycle instants of one CondorId. First write wins
/// per event: replayed stores must not shift an instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    instants: BTreeMap<TimelineEvent, SimTime>,
}

impl Timeline {
    /// The instant of `event`, if recorded.
    pub fn instant(&self, event: TimelineEvent) -> Option<SimTime> {
        self.instants.get(&event).copied()
    }

    /// Records `event` at `at` unless already recorded.
    fn mark(&mut self, event: TimelineEvent, at: SimTime) {
        self.instants.entry(event).or_insert(at);
    }

    /// Number of recorded instants.
    pub fn len(&self) -> usize {
        self.instants.len()
    }

    /// True when nothing is recorded yet.
    pub fn is_empty(&self) -> bool {
        self.instants.is_empty()
    }
}

/// Timelines of every observed CondorId, keyed by raw id (BTreeMap so
/// exports are id-sorted and deterministic).
#[derive(Default)]
pub struct TimelineStore {
    timelines: RwLock<BTreeMap<u64, Timeline>>,
}

impl TimelineStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `event` for `condor_raw` at `at` (first write wins).
    pub fn mark(&self, condor_raw: u64, event: TimelineEvent, at: SimTime) {
        self.timelines
            .write()
            .entry(condor_raw)
            .or_default()
            .mark(event, at);
    }

    /// The timeline of one CondorId, if observed.
    pub fn get(&self, condor_raw: u64) -> Option<Timeline> {
        self.timelines.read().get(&condor_raw).cloned()
    }

    /// Number of observed CondorIds.
    pub fn len(&self) -> usize {
        self.timelines.read().len()
    }

    /// True when no CondorId was observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable dump of one timeline: events in lifecycle
    /// order, µs instants, `-` for unrecorded events.
    pub fn render(&self, condor_raw: u64) -> Option<String> {
        let tl = self.get(condor_raw)?;
        let mut out = format!("condor {condor_raw}\n");
        for ev in TimelineEvent::ALL {
            match tl.instant(ev) {
                Some(at) => out.push_str(&format!("  {:<9} {}us\n", ev.name(), at.as_micros())),
                None => out.push_str(&format!("  {:<9} -\n", ev.name())),
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_wins() {
        let store = TimelineStore::new();
        store.mark(7, TimelineEvent::Submit, SimTime::from_secs(1));
        store.mark(7, TimelineEvent::Submit, SimTime::from_secs(9));
        assert_eq!(
            store.get(7).unwrap().instant(TimelineEvent::Submit),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn render_lists_all_events_in_order() {
        let store = TimelineStore::new();
        store.mark(3, TimelineEvent::Submit, SimTime::ZERO);
        store.mark(3, TimelineEvent::Complete, SimTime::from_secs(5));
        let text = store.render(3).unwrap();
        let submit = text.find("submit").unwrap();
        let complete = text.find("complete").unwrap();
        assert!(submit < complete, "{text}");
        assert!(text.contains("start     -"), "{text}");
        assert!(store.render(99).is_none());
    }
}
