//! Log-linear latency histograms (HDR-style).
//!
//! Lock-free on the hot path, on the pattern of gae-gate's
//! `ClassCounters`: recording a sample is one relaxed `fetch_add`
//! into a bucket array plus three bookkeeping atomics. The bucket
//! layout is log-linear over microseconds: 16 linear sub-buckets per
//! power-of-two octave, exact below 16 µs, ≤ 6.25 % relative error
//! above, covering the full `u64` range in 976 buckets (~8 KiB).

use gae_types::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: the linear region (16) plus 60 octaves of 16.
const BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;

/// Bucket index of a microsecond value.
fn bucket_index(us: u64) -> usize {
    if us < SUB {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros();
    let group = (msb - SUB_BITS + 1) as u64;
    let offset = (us >> (msb - SUB_BITS)) - SUB;
    (group * SUB + offset) as usize
}

/// Lower bound (µs) of the bucket at `idx` — the value quantile
/// snapshots report, so reported percentiles never exceed the true
/// sample.
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let group = idx / SUB;
    let offset = idx % SUB;
    (SUB + offset) << (group - 1)
}

/// One latency distribution: lock-free bucket counters plus count,
/// sum, and max.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one sample. Relaxed ordering end to end — these are
    /// monotonic counters, exactness of interleaving does not matter,
    /// and the hot path must stay a handful of uncontended atomics.
    pub fn record(&self, latency: SimDuration) {
        let us = latency.as_micros();
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary with nearest-rank percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (idx, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_floor(idx);
                }
            }
            bucket_floor(BUCKETS - 1)
        };
        HistogramSnapshot {
            count: total,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: quantile(0.50),
            p95_us: quantile(0.95),
            p99_us: quantile(0.99),
        }
    }
}

/// A point-in-time histogram summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// Median (µs, nearest-rank, bucket lower bound).
    pub p50_us: u64,
    /// 95th percentile (µs).
    pub p95_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
}

impl HistogramSnapshot {
    /// Mean sample (µs), zero when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// A keyed family of histograms (per RPC method, per gate
/// disposition). Key lookup takes a read lock; the miss path that
/// materialises a new histogram is once per key.
#[derive(Default)]
pub struct HistogramSet {
    hists: parking_lot::RwLock<std::collections::BTreeMap<String, std::sync::Arc<Histogram>>>,
}

impl HistogramSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample under `key`.
    pub fn record(&self, key: &str, latency: SimDuration) {
        if let Some(h) = self.hists.read().get(key) {
            h.record(latency);
            return;
        }
        let h = self
            .hists
            .write()
            .entry(key.to_string())
            .or_default()
            .clone();
        h.record(latency);
    }

    /// The histogram for `key`, if any samples were recorded.
    pub fn get(&self, key: &str) -> Option<std::sync::Arc<Histogram>> {
        self.hists.read().get(key).cloned()
    }

    /// Every key's snapshot, key-sorted (deterministic publication
    /// order).
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.hists
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for us in 0..16u64 {
            assert_eq!(bucket_index(us) as u64, us);
            assert_eq!(bucket_floor(us as usize), us);
        }
    }

    #[test]
    fn buckets_are_monotonic_and_in_range() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|exp| {
                let base = 1u64 << exp;
                [base, base | (base >> 1), base | (base - 1)]
            })
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v} -> {idx}");
            assert!(idx >= last, "index regressed at {v}: {idx} < {last}");
            assert!(
                bucket_floor(idx) <= v,
                "floor({idx})={} > {v}",
                bucket_floor(idx)
            );
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 123_456, 10_000_000, 1 << 40] {
            let floor = bucket_floor(bucket_index(v));
            let err = (v - floor) as f64 / v as f64;
            assert!(err <= 0.0625 + 1e-9, "value {v}: floor {floor}, err {err}");
        }
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let h = Histogram::new();
        // 100 samples: 1..=100 ms.
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 100_000);
        // Bucket floors undershoot by at most 6.25 %.
        assert!(s.p50_us <= 50_000 && s.p50_us >= 46_000, "p50 {}", s.p50_us);
        assert!(s.p95_us <= 95_000 && s.p95_us >= 88_000, "p95 {}", s.p95_us);
        assert!(s.p99_us <= 99_000 && s.p99_us >= 92_000, "p99 {}", s.p99_us);
        assert!((s.mean_us() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn set_snapshots_sorted_by_key() {
        let set = HistogramSet::new();
        set.record("steer.submit", SimDuration::from_micros(5));
        set.record("auth.login", SimDuration::from_micros(2));
        set.record("steer.submit", SimDuration::from_micros(9));
        let snap = set.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "auth.login");
        assert_eq!(snap[1].0, "steer.submit");
        assert_eq!(snap[1].1.count, 2);
    }
}
