//! Job plans: the scheduler's output and the steering service's input.
//!
//! The paper distinguishes an *abstract* job plan (what to run) from a
//! *concrete* job plan ("a job plan precisely describing the nodes
//! where the job will be executed", §4.2.1) which the scheduler sends
//! to the Steering Service. The steering Subscriber analyses the
//! concrete plan to learn which execution services host the job.

use crate::error::{GaeError, GaeResult};
use crate::ids::{JobId, PlanId, SiteId, TaskId};
use crate::job::JobSpec;
use std::collections::HashSet;
use std::fmt;

/// What to run: the job spec plus scheduling hints, before any site
/// has been chosen.
#[derive(Clone, PartialEq, Debug)]
pub struct AbstractPlan {
    /// The job to schedule.
    pub job: JobSpec,
    /// Sites the user explicitly allows (empty = all).
    pub allowed_sites: Vec<SiteId>,
    /// Optimization preference the Optimizer honours (§4.2.2).
    pub preference: OptimizationPreference,
}

/// The Optimizer's notion of "Best Site" depends on this preference
/// ("cheap or fast execution", §4.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OptimizationPreference {
    /// Minimise expected completion time (run + queue + transfer).
    #[default]
    Fast,
    /// Minimise monetary cost as reported by the Quota and Accounting
    /// Service.
    Cheap,
}

impl fmt::Display for OptimizationPreference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptimizationPreference::Fast => "fast",
            OptimizationPreference::Cheap => "cheap",
        })
    }
}

impl AbstractPlan {
    /// Wraps a job with default (fast, unrestricted) preferences.
    pub fn new(job: JobSpec) -> Self {
        AbstractPlan {
            job,
            allowed_sites: Vec::new(),
            preference: OptimizationPreference::Fast,
        }
    }

    /// Builder-style preference.
    pub fn with_preference(mut self, p: OptimizationPreference) -> Self {
        self.preference = p;
        self
    }

    /// Builder-style site restriction.
    pub fn restricted_to(mut self, sites: Vec<SiteId>) -> Self {
        self.allowed_sites = sites;
        self
    }

    /// True if `site` is permitted by the plan's restriction list.
    pub fn site_allowed(&self, site: SiteId) -> bool {
        self.allowed_sites.is_empty() || self.allowed_sites.contains(&site)
    }
}

/// One task→site placement inside a concrete plan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskAssignment {
    /// The task being placed.
    pub task: TaskId,
    /// The execution site that will run it.
    pub site: SiteId,
}

/// A fully-placed job plan, produced by the scheduler and consumed by
/// the steering service's Subscriber.
#[derive(Clone, PartialEq, Debug)]
pub struct ConcretePlan {
    /// Unique plan id (a resubmission after failure gets a new one).
    pub id: PlanId,
    /// The job this plan realises.
    pub job: JobSpec,
    /// Placement of every task.
    pub assignments: Vec<TaskAssignment>,
    /// Monotonic revision: 0 for the initial schedule, bumped on every
    /// reschedule (move/recovery).
    pub revision: u32,
}

impl ConcretePlan {
    /// Builds a concrete plan, checking that every task of the job is
    /// assigned exactly once and no stray assignments exist.
    pub fn new(
        id: PlanId,
        job: JobSpec,
        assignments: Vec<TaskAssignment>,
    ) -> GaeResult<ConcretePlan> {
        let task_ids: HashSet<TaskId> = job.task_ids().into_iter().collect();
        let mut assigned = HashSet::new();
        for a in &assignments {
            if !task_ids.contains(&a.task) {
                return Err(GaeError::InvalidPlan(format!(
                    "assignment for unknown task {}",
                    a.task
                )));
            }
            if !assigned.insert(a.task) {
                return Err(GaeError::InvalidPlan(format!(
                    "task {} assigned more than once",
                    a.task
                )));
            }
        }
        if assigned.len() != task_ids.len() {
            let missing: Vec<_> = task_ids
                .difference(&assigned)
                .map(|t| t.to_string())
                .collect();
            return Err(GaeError::InvalidPlan(format!(
                "tasks not assigned: {}",
                missing.join(", ")
            )));
        }
        Ok(ConcretePlan {
            id,
            job,
            assignments,
            revision: 0,
        })
    }

    /// The job this plan belongs to.
    pub fn job_id(&self) -> JobId {
        self.job.id
    }

    /// Site assigned to `task`, if any.
    pub fn site_of(&self, task: TaskId) -> Option<SiteId> {
        self.assignments
            .iter()
            .find(|a| a.task == task)
            .map(|a| a.site)
    }

    /// The distinct execution sites this plan uses — exactly what the
    /// steering Subscriber extracts (§4.2.1).
    pub fn sites(&self) -> Vec<SiteId> {
        let mut sites: Vec<SiteId> = Vec::new();
        for a in &self.assignments {
            if !sites.contains(&a.site) {
                sites.push(a.site);
            }
        }
        sites
    }

    /// Returns a new revision of this plan with `task` moved to
    /// `new_site` (used for the steering *move* command).
    pub fn reassigned(&self, task: TaskId, new_site: SiteId) -> GaeResult<ConcretePlan> {
        let mut next = self.clone();
        let slot = next
            .assignments
            .iter_mut()
            .find(|a| a.task == task)
            .ok_or_else(|| GaeError::NotFound(format!("{task} in plan {}", self.id)))?;
        slot.site = new_site;
        next.revision += 1;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use crate::job::TaskSpec;

    fn two_task_job() -> JobSpec {
        let mut job = JobSpec::new(JobId::new(1), "j", UserId::new(1));
        job.add_task(TaskSpec::new(TaskId::new(1), "a", "x"));
        job.add_task(TaskSpec::new(TaskId::new(2), "b", "x"));
        job
    }

    #[test]
    fn complete_assignment_accepted() {
        let job = two_task_job();
        let plan = ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![
                TaskAssignment {
                    task: TaskId::new(1),
                    site: SiteId::new(10),
                },
                TaskAssignment {
                    task: TaskId::new(2),
                    site: SiteId::new(20),
                },
            ],
        )
        .unwrap();
        assert_eq!(plan.site_of(TaskId::new(1)), Some(SiteId::new(10)));
        assert_eq!(plan.sites(), vec![SiteId::new(10), SiteId::new(20)]);
        assert_eq!(plan.revision, 0);
    }

    #[test]
    fn missing_assignment_rejected() {
        let job = two_task_job();
        let err = ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![TaskAssignment {
                task: TaskId::new(1),
                site: SiteId::new(10),
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("not assigned"));
    }

    #[test]
    fn duplicate_assignment_rejected() {
        let job = two_task_job();
        let err = ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![
                TaskAssignment {
                    task: TaskId::new(1),
                    site: SiteId::new(10),
                },
                TaskAssignment {
                    task: TaskId::new(1),
                    site: SiteId::new(20),
                },
                TaskAssignment {
                    task: TaskId::new(2),
                    site: SiteId::new(20),
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn unknown_task_rejected() {
        let job = two_task_job();
        let err = ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![
                TaskAssignment {
                    task: TaskId::new(1),
                    site: SiteId::new(10),
                },
                TaskAssignment {
                    task: TaskId::new(2),
                    site: SiteId::new(10),
                },
                TaskAssignment {
                    task: TaskId::new(3),
                    site: SiteId::new(10),
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown task"));
    }

    #[test]
    fn sites_deduplicates_in_order() {
        let job = two_task_job();
        let plan = ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![
                TaskAssignment {
                    task: TaskId::new(1),
                    site: SiteId::new(5),
                },
                TaskAssignment {
                    task: TaskId::new(2),
                    site: SiteId::new(5),
                },
            ],
        )
        .unwrap();
        assert_eq!(plan.sites(), vec![SiteId::new(5)]);
    }

    #[test]
    fn reassignment_bumps_revision() {
        let job = two_task_job();
        let plan = ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![
                TaskAssignment {
                    task: TaskId::new(1),
                    site: SiteId::new(5),
                },
                TaskAssignment {
                    task: TaskId::new(2),
                    site: SiteId::new(5),
                },
            ],
        )
        .unwrap();
        let moved = plan.reassigned(TaskId::new(2), SiteId::new(9)).unwrap();
        assert_eq!(moved.site_of(TaskId::new(2)), Some(SiteId::new(9)));
        assert_eq!(moved.revision, 1);
        // Original untouched.
        assert_eq!(plan.site_of(TaskId::new(2)), Some(SiteId::new(5)));
        assert!(plan.reassigned(TaskId::new(42), SiteId::new(9)).is_err());
    }

    #[test]
    fn abstract_plan_site_restriction() {
        let p = AbstractPlan::new(two_task_job())
            .with_preference(OptimizationPreference::Cheap)
            .restricted_to(vec![SiteId::new(1)]);
        assert!(p.site_allowed(SiteId::new(1)));
        assert!(!p.site_allowed(SiteId::new(2)));
        assert_eq!(p.preference, OptimizationPreference::Cheap);
        let open = AbstractPlan::new(two_task_job());
        assert!(open.site_allowed(SiteId::new(77)));
        assert_eq!(open.preference, OptimizationPreference::Fast);
    }

    #[test]
    fn preference_display() {
        assert_eq!(OptimizationPreference::Fast.to_string(), "fast");
        assert_eq!(OptimizationPreference::Cheap.to_string(), "cheap");
    }
}
