//! Jobs and tasks: the unit of work the GAE manages.
//!
//! A [`JobSpec`] is a DAG of [`TaskSpec`]s (the paper's "job plan
//! arranged to follow a directed acyclic graph structure", §2). Task
//! attributes deliberately mirror the SDSC Paragon accounting schema
//! used in §7 — requested nodes, CPU hours, queue, partition, job type
//! — because those are exactly the features the history-based runtime
//! estimator matches on.

use crate::error::{GaeError, GaeResult};
use crate::ids::{JobId, TaskId, UserId};
use crate::priority::Priority;
use crate::site::FileRef;
use crate::time::SimDuration;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Batch vs. interactive, straight from the Paragon accounting data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum JobType {
    /// Batch job: queued, no user at the terminal.
    #[default]
    Batch,
    /// Interactive job: a user analysis session.
    Interactive,
}

impl fmt::Display for JobType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobType::Batch => "batch",
            JobType::Interactive => "interactive",
        })
    }
}

impl std::str::FromStr for JobType {
    type Err = GaeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "batch" => Ok(JobType::Batch),
            "interactive" => Ok(JobType::Interactive),
            other => Err(GaeError::Parse(format!("unknown job type {other:?}"))),
        }
    }
}

/// The atomic component of a job (§6.1): one schedulable executable.
#[derive(Clone, PartialEq, Debug)]
pub struct TaskSpec {
    /// Unique id within the GAE.
    pub id: TaskId,
    /// The job this task belongs to (set by [`JobSpec::add_task`];
    /// zero for free-standing tasks).
    pub job: JobId,
    /// Human-readable name ("reco-step-2").
    pub name: String,
    /// Executable path or logical application name; the runtime
    /// estimator treats this as the strongest similarity feature.
    pub executable: String,
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Owner of the task (used by the Session Manager for
    /// authorization and by the estimator as a similarity feature).
    pub owner: UserId,
    /// Scheduling priority.
    pub priority: Priority,
    /// Number of nodes requested (Paragon schema).
    pub requested_nodes: u32,
    /// Requested CPU hours (Paragon schema).
    pub requested_cpu_hours: f64,
    /// Queue name the task targets (Paragon schema).
    pub queue: String,
    /// Partition the task targets (Paragon schema).
    pub partition: String,
    /// Batch or interactive (Paragon schema).
    pub job_type: JobType,
    /// Input files that must be present at the execution site.
    pub input_files: Vec<FileRef>,
    /// Output files the task produces.
    pub output_files: Vec<FileRef>,
    /// Environment variables (the job monitoring service reports
    /// these, §5).
    pub env: Vec<(String, String)>,
    /// True service demand in CPU-seconds on a free reference CPU.
    ///
    /// In a real grid this is unknown; the simulator uses it as ground
    /// truth while the estimators only ever see history. `None` means
    /// "unknown" (live mode).
    pub true_cpu_demand: Option<SimDuration>,
    /// Whether the task writes checkpoints, enabling warm migration
    /// (the paper notes the Fig 7 job "can complete even quicker if it
    /// is checkpoint-able").
    pub checkpointable: bool,
}

impl TaskSpec {
    /// Creates a task with sensible defaults for tests and examples.
    pub fn new(id: TaskId, name: impl Into<String>, executable: impl Into<String>) -> Self {
        TaskSpec {
            id,
            job: JobId::new(0),
            name: name.into(),
            executable: executable.into(),
            args: Vec::new(),
            owner: UserId::new(0),
            priority: Priority::NORMAL,
            requested_nodes: 1,
            requested_cpu_hours: 1.0,
            queue: "default".to_string(),
            partition: "compute".to_string(),
            job_type: JobType::Batch,
            input_files: Vec::new(),
            output_files: Vec::new(),
            env: Vec::new(),
            true_cpu_demand: None,
            checkpointable: false,
        }
    }

    /// Builder-style owner assignment.
    pub fn with_owner(mut self, owner: UserId) -> Self {
        self.owner = owner;
        self
    }

    /// Builder-style priority assignment.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Builder-style ground-truth CPU demand (simulation only).
    pub fn with_cpu_demand(mut self, d: SimDuration) -> Self {
        self.true_cpu_demand = Some(d);
        self
    }

    /// Builder-style node request.
    pub fn with_nodes(mut self, n: u32) -> Self {
        self.requested_nodes = n;
        self
    }

    /// Builder-style queue assignment.
    pub fn with_queue(mut self, q: impl Into<String>) -> Self {
        self.queue = q.into();
        self
    }

    /// Builder-style input file list.
    pub fn with_inputs(mut self, files: Vec<FileRef>) -> Self {
        self.input_files = files;
        self
    }

    /// Builder-style checkpointability flag.
    pub fn with_checkpointable(mut self, c: bool) -> Self {
        self.checkpointable = c;
        self
    }

    /// Total bytes of input the task must stage in.
    pub fn input_bytes(&self) -> u64 {
        self.input_files.iter().map(|f| f.size_bytes).sum()
    }
}

/// A job: a set of tasks plus precedence edges forming a DAG.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// Unique id within the GAE.
    pub id: JobId,
    /// Human-readable name.
    pub name: String,
    /// Owner (all tasks must share it; enforced by [`JobSpec::validate`]).
    pub owner: UserId,
    /// The tasks, in submission order.
    pub tasks: Vec<TaskSpec>,
    /// Precedence edges `(before, after)`: `after` may only start once
    /// `before` completed.
    pub dependencies: Vec<(TaskId, TaskId)>,
}

impl JobSpec {
    /// Creates an empty job.
    pub fn new(id: JobId, name: impl Into<String>, owner: UserId) -> Self {
        JobSpec {
            id,
            name: name.into(),
            owner,
            tasks: Vec::new(),
            dependencies: Vec::new(),
        }
    }

    /// Adds a task, forcing its owner and job id to the job's.
    pub fn add_task(&mut self, mut task: TaskSpec) -> TaskId {
        task.owner = self.owner;
        task.job = self.id;
        let id = task.id;
        self.tasks.push(task);
        id
    }

    /// Adds a precedence edge.
    pub fn add_dependency(&mut self, before: TaskId, after: TaskId) {
        self.dependencies.push((before, after));
    }

    /// Looks up a task by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Ids of all tasks, in submission order.
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.tasks.iter().map(|t| t.id).collect()
    }

    /// Validates the job: non-empty, unique task ids, edges reference
    /// known tasks, owner consistency, and acyclicity.
    pub fn validate(&self) -> GaeResult<()> {
        if self.tasks.is_empty() {
            return Err(GaeError::InvalidPlan(format!("{} has no tasks", self.id)));
        }
        let mut ids = HashSet::new();
        for t in &self.tasks {
            if !ids.insert(t.id) {
                return Err(GaeError::InvalidPlan(format!("duplicate task id {}", t.id)));
            }
            if t.owner != self.owner {
                return Err(GaeError::InvalidPlan(format!(
                    "task {} owned by {} but job {} owned by {}",
                    t.id, t.owner, self.id, self.owner
                )));
            }
        }
        for (a, b) in &self.dependencies {
            if !ids.contains(a) || !ids.contains(b) {
                return Err(GaeError::InvalidPlan(format!(
                    "dependency {a} -> {b} references unknown task"
                )));
            }
            if a == b {
                return Err(GaeError::InvalidPlan(format!("self-dependency on {a}")));
            }
        }
        self.topological_order().map(|_| ())
    }

    /// Kahn's algorithm; returns tasks in a valid execution order or
    /// an error if the dependency graph has a cycle.
    pub fn topological_order(&self) -> GaeResult<Vec<TaskId>> {
        let mut indegree: HashMap<TaskId, usize> = self.tasks.iter().map(|t| (t.id, 0)).collect();
        let mut successors: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
        for (a, b) in &self.dependencies {
            *indegree.entry(*b).or_insert(0) += 1;
            successors.entry(*a).or_default().push(*b);
        }
        // Seed with zero-indegree tasks in submission order for
        // determinism.
        let mut ready: VecDeque<TaskId> = self
            .tasks
            .iter()
            .map(|t| t.id)
            .filter(|id| indegree.get(id).copied().unwrap_or(0) == 0)
            .collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        while let Some(id) = ready.pop_front() {
            order.push(id);
            for succ in successors.get(&id).into_iter().flatten() {
                let d = indegree.get_mut(succ).expect("validated task id");
                *d -= 1;
                if *d == 0 {
                    ready.push_back(*succ);
                }
            }
        }
        if order.len() == self.tasks.len() {
            Ok(order)
        } else {
            Err(GaeError::InvalidPlan(format!(
                "{} dependency graph has a cycle",
                self.id
            )))
        }
    }

    /// Direct prerequisites of `task`.
    pub fn prerequisites(&self, task: TaskId) -> Vec<TaskId> {
        self.dependencies
            .iter()
            .filter(|(_, b)| *b == task)
            .map(|(a, _)| *a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_with_chain(n: u64) -> JobSpec {
        let mut job = JobSpec::new(JobId::new(1), "chain", UserId::new(7));
        for i in 0..n {
            job.add_task(TaskSpec::new(TaskId::new(i + 1), format!("t{i}"), "prime"));
        }
        for i in 1..n {
            job.add_dependency(TaskId::new(i), TaskId::new(i + 1));
        }
        job
    }

    #[test]
    fn builder_defaults() {
        let t = TaskSpec::new(TaskId::new(1), "t", "/bin/analyze")
            .with_priority(Priority::HIGH)
            .with_nodes(4)
            .with_queue("short");
        assert_eq!(t.requested_nodes, 4);
        assert_eq!(t.queue, "short");
        assert_eq!(t.priority, Priority::HIGH);
        assert_eq!(t.job_type, JobType::Batch);
        assert!(t.true_cpu_demand.is_none());
    }

    #[test]
    fn add_task_forces_owner() {
        let mut job = JobSpec::new(JobId::new(1), "j", UserId::new(3));
        job.add_task(TaskSpec::new(TaskId::new(1), "t", "x").with_owner(UserId::new(99)));
        assert_eq!(job.tasks[0].owner, UserId::new(3));
        assert!(job.validate().is_ok());
    }

    #[test]
    fn empty_job_is_invalid() {
        let job = JobSpec::new(JobId::new(1), "empty", UserId::new(1));
        assert!(matches!(job.validate(), Err(GaeError::InvalidPlan(_))));
    }

    #[test]
    fn duplicate_task_ids_rejected() {
        let mut job = JobSpec::new(JobId::new(1), "dup", UserId::new(1));
        job.add_task(TaskSpec::new(TaskId::new(1), "a", "x"));
        job.add_task(TaskSpec::new(TaskId::new(1), "b", "x"));
        assert!(job.validate().is_err());
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut job = JobSpec::new(JobId::new(1), "j", UserId::new(1));
        job.add_task(TaskSpec::new(TaskId::new(1), "a", "x"));
        job.add_dependency(TaskId::new(1), TaskId::new(42));
        assert!(job.validate().is_err());
    }

    #[test]
    fn self_dependency_rejected() {
        let mut job = JobSpec::new(JobId::new(1), "j", UserId::new(1));
        job.add_task(TaskSpec::new(TaskId::new(1), "a", "x"));
        job.add_dependency(TaskId::new(1), TaskId::new(1));
        assert!(job.validate().is_err());
    }

    #[test]
    fn chain_topological_order() {
        let job = job_with_chain(5);
        assert!(job.validate().is_ok());
        let order = job.topological_order().unwrap();
        assert_eq!(order, (1..=5).map(TaskId::new).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_detected() {
        let mut job = job_with_chain(3);
        job.add_dependency(TaskId::new(3), TaskId::new(1));
        let err = job.topological_order().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
        assert!(job.validate().is_err());
    }

    #[test]
    fn diamond_order_respects_edges() {
        // 1 -> {2,3} -> 4
        let mut job = JobSpec::new(JobId::new(1), "diamond", UserId::new(1));
        for i in 1..=4 {
            job.add_task(TaskSpec::new(TaskId::new(i), format!("t{i}"), "x"));
        }
        job.add_dependency(TaskId::new(1), TaskId::new(2));
        job.add_dependency(TaskId::new(1), TaskId::new(3));
        job.add_dependency(TaskId::new(2), TaskId::new(4));
        job.add_dependency(TaskId::new(3), TaskId::new(4));
        let order = job.topological_order().unwrap();
        let pos = |id: u64| order.iter().position(|t| *t == TaskId::new(id)).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4));
        assert!(pos(3) < pos(4));
    }

    #[test]
    fn prerequisites_lookup() {
        let mut job = job_with_chain(3);
        job.add_dependency(TaskId::new(1), TaskId::new(3));
        let mut pre = job.prerequisites(TaskId::new(3));
        pre.sort();
        assert_eq!(pre, vec![TaskId::new(1), TaskId::new(2)]);
        assert!(job.prerequisites(TaskId::new(1)).is_empty());
    }

    #[test]
    fn input_bytes_sums_files() {
        let t = TaskSpec::new(TaskId::new(1), "t", "x")
            .with_inputs(vec![FileRef::new("a", 100), FileRef::new("b", 250)]);
        assert_eq!(t.input_bytes(), 350);
    }

    #[test]
    fn job_type_roundtrip() {
        use std::str::FromStr;
        assert_eq!(JobType::from_str("batch").unwrap(), JobType::Batch);
        assert_eq!(
            JobType::from_str("interactive").unwrap(),
            JobType::Interactive
        );
        assert!(JobType::from_str("weird").is_err());
        assert_eq!(JobType::Interactive.to_string(), "interactive");
    }
}
