//! The error type shared by all GAE crates.

use std::fmt;

/// Result alias used throughout the GAE crates.
pub type GaeResult<T> = Result<T, GaeError>;

/// Errors produced by GAE substrates and services.
///
/// The variants mirror the failure surfaces of the paper's
/// architecture: lookup failures, illegal lifecycle transitions,
/// authorization failures from the Session Manager, RPC faults from
/// the Clarens layer, and estimator failures (e.g. no similar task in
/// the history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GaeError {
    /// A job, task, site, node, or session was not found.
    NotFound(String),
    /// A job-control command was illegal in the current state
    /// (e.g. resuming a completed job).
    InvalidTransition {
        /// Entity the command addressed.
        entity: String,
        /// State the entity was in.
        from: String,
        /// Operation that was attempted.
        attempted: String,
    },
    /// The Session Manager rejected the caller (§4.2.5).
    Unauthorized(String),
    /// A malformed identifier, message, or trace record.
    Parse(String),
    /// The Clarens RPC layer reported a fault.
    Rpc {
        /// XML-RPC fault code.
        code: i32,
        /// XML-RPC fault string.
        message: String,
    },
    /// An estimator could not produce an estimate
    /// (e.g. empty history, no similar tasks).
    Estimator(String),
    /// A job plan was rejected (cycle in the DAG, unknown site, ...).
    InvalidPlan(String),
    /// An execution service or node failed (the Backup & Recovery
    /// module reacts to this, §4.2.4).
    ExecutionFailure(String),
    /// A resource limit was exceeded (queue full, quota exhausted).
    ResourceExhausted(String),
    /// An I/O error from the transport layer.
    Io(String),
    /// Request timed out.
    Timeout(String),
    /// The transport gave up waiting for the rest of a request the
    /// peer had started sending (slowloris defense: the read deadline
    /// across a request's bytes expired). HTTP 408.
    RequestTimeout(String),
    /// A request's framing exceeded a configured size cap (header
    /// block or body larger than the transport allows). HTTP 413.
    PayloadTooLarge(String),
    /// The admission gate's per-principal token bucket denied the
    /// request. `retry_after_us` is the machine-readable back-off the
    /// client should wait before retrying.
    RateLimited {
        /// Microseconds until a token will be available.
        retry_after_us: u64,
    },
    /// The admission gate shed the request under overload (queue
    /// full, deadline expired, or circuit breaker open). Carries a
    /// machine-readable `retry_after_us` back-off and the priority
    /// class that was shed.
    Overloaded {
        /// Microseconds the client should back off before retrying.
        retry_after_us: u64,
        /// Priority class of the shed request ("interactive",
        /// "production", "scavenger", or a breaker key).
        shed_class: String,
    },
    /// A managed data transfer failed permanently: retries exhausted
    /// against a dead link, the source replica was deleted with no
    /// alternative, or the destination's storage budget could not
    /// admit the file.
    Transfer(String),
}

impl GaeError {
    /// Short machine-readable category, used for XML-RPC fault codes
    /// and monitoring counters.
    pub fn kind(&self) -> &'static str {
        match self {
            GaeError::NotFound(_) => "not_found",
            GaeError::InvalidTransition { .. } => "invalid_transition",
            GaeError::Unauthorized(_) => "unauthorized",
            GaeError::Parse(_) => "parse",
            GaeError::Rpc { .. } => "rpc",
            GaeError::Estimator(_) => "estimator",
            GaeError::InvalidPlan(_) => "invalid_plan",
            GaeError::ExecutionFailure(_) => "execution_failure",
            GaeError::ResourceExhausted(_) => "resource_exhausted",
            GaeError::Io(_) => "io",
            GaeError::Timeout(_) => "timeout",
            GaeError::RequestTimeout(_) => "request_timeout",
            GaeError::PayloadTooLarge(_) => "payload_too_large",
            GaeError::RateLimited { .. } => "rate_limited",
            GaeError::Overloaded { .. } => "overloaded",
            GaeError::Transfer(_) => "transfer",
        }
    }

    /// The machine-readable back-off carried by gate faults
    /// ([`GaeError::RateLimited`] / [`GaeError::Overloaded`]), in
    /// microseconds. `None` for every other variant.
    pub fn retry_after_us(&self) -> Option<u64> {
        match self {
            GaeError::RateLimited { retry_after_us }
            | GaeError::Overloaded { retry_after_us, .. } => Some(*retry_after_us),
            _ => None,
        }
    }

    /// Numeric fault code used on the XML-RPC wire. Codes are stable:
    /// clients match on them.
    pub fn fault_code(&self) -> i32 {
        match self {
            GaeError::NotFound(_) => 404,
            GaeError::InvalidTransition { .. } => 409,
            GaeError::Unauthorized(_) => 401,
            GaeError::Parse(_) => 400,
            GaeError::Rpc { code, .. } => *code,
            GaeError::Estimator(_) => 520,
            GaeError::InvalidPlan(_) => 422,
            GaeError::ExecutionFailure(_) => 500,
            GaeError::ResourceExhausted(_) => 507,
            GaeError::Io(_) => 502,
            GaeError::Timeout(_) => 504,
            GaeError::RequestTimeout(_) => 408,
            GaeError::PayloadTooLarge(_) => 413,
            GaeError::RateLimited { .. } => 429,
            GaeError::Overloaded { .. } => 503,
            GaeError::Transfer(_) => 521,
        }
    }

    /// Reconstructs an error from a wire-level fault code and string,
    /// the inverse of [`GaeError::fault_code`] as far as possible.
    /// The Display prefix a round-tripping error already carries is
    /// stripped so messages do not stutter ("unauthorized:
    /// unauthorized: ...").
    pub fn from_fault(code: i32, message: String) -> GaeError {
        let strip = |prefix: &str| -> String {
            message
                .strip_prefix(prefix)
                .map(|s| s.to_string())
                .unwrap_or_else(|| message.clone())
        };
        let message = match code {
            404 => strip("not found: "),
            401 => strip("unauthorized: "),
            400 => strip("parse error: "),
            520 => strip("estimator error: "),
            422 => strip("invalid plan: "),
            500 => strip("execution failure: "),
            507 => strip("resource exhausted: "),
            502 => strip("io error: "),
            504 => strip("timeout: "),
            408 => strip("request timeout: "),
            413 => strip("payload too large: "),
            521 => strip("transfer error: "),
            _ => message,
        };
        // Gate faults carry their payload inside the fault string;
        // recover the machine-readable fields before matching.
        if code == 429 {
            return GaeError::RateLimited {
                retry_after_us: parse_tagged_u64(&message, "retry_after_us="),
            };
        }
        if code == 503 {
            return GaeError::Overloaded {
                retry_after_us: parse_tagged_u64(&message, "retry_after_us="),
                shed_class: parse_tagged_word(&message, "class=").unwrap_or_default(),
            };
        }
        match code {
            404 => GaeError::NotFound(message),
            401 => GaeError::Unauthorized(message),
            400 => GaeError::Parse(message),
            520 => GaeError::Estimator(message),
            422 => GaeError::InvalidPlan(message),
            500 => GaeError::ExecutionFailure(message),
            507 => GaeError::ResourceExhausted(message),
            502 => GaeError::Io(message),
            504 => GaeError::Timeout(message),
            408 => GaeError::RequestTimeout(message),
            413 => GaeError::PayloadTooLarge(message),
            521 => GaeError::Transfer(message),
            _ => GaeError::Rpc { code, message },
        }
    }
}

/// Extracts the integer following `tag` in `message` (0 if absent):
/// the wire decoding of the gate faults' machine-readable fields.
fn parse_tagged_u64(message: &str, tag: &str) -> u64 {
    message
        .split_once(tag)
        .map(|(_, rest)| {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().unwrap_or(0)
        })
        .unwrap_or(0)
}

/// Extracts the word following `tag` in `message` (up to the first
/// non-identifier character).
fn parse_tagged_word(message: &str, tag: &str) -> Option<String> {
    message.split_once(tag).map(|(_, rest)| {
        rest.chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
            .collect()
    })
}

impl fmt::Display for GaeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaeError::NotFound(what) => write!(f, "not found: {what}"),
            GaeError::InvalidTransition {
                entity,
                from,
                attempted,
            } => {
                write!(
                    f,
                    "invalid transition on {entity}: cannot {attempted} while {from}"
                )
            }
            GaeError::Unauthorized(why) => write!(f, "unauthorized: {why}"),
            GaeError::Parse(why) => write!(f, "parse error: {why}"),
            GaeError::Rpc { code, message } => write!(f, "rpc fault {code}: {message}"),
            GaeError::Estimator(why) => write!(f, "estimator error: {why}"),
            GaeError::InvalidPlan(why) => write!(f, "invalid plan: {why}"),
            GaeError::ExecutionFailure(why) => write!(f, "execution failure: {why}"),
            GaeError::ResourceExhausted(why) => write!(f, "resource exhausted: {why}"),
            GaeError::Io(why) => write!(f, "io error: {why}"),
            GaeError::Timeout(why) => write!(f, "timeout: {why}"),
            GaeError::RequestTimeout(why) => write!(f, "request timeout: {why}"),
            GaeError::PayloadTooLarge(why) => write!(f, "payload too large: {why}"),
            GaeError::RateLimited { retry_after_us } => {
                write!(f, "rate limited: retry_after_us={retry_after_us}")
            }
            GaeError::Overloaded {
                retry_after_us,
                shed_class,
            } => write!(
                f,
                "overloaded (class={shed_class}): retry_after_us={retry_after_us}"
            ),
            GaeError::Transfer(why) => write!(f, "transfer error: {why}"),
        }
    }
}

impl std::error::Error for GaeError {}

impl From<std::io::Error> for GaeError {
    fn from(e: std::io::Error) -> Self {
        GaeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GaeError::InvalidTransition {
            entity: "job-3".into(),
            from: "Completed".into(),
            attempted: "resume".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid transition on job-3: cannot resume while Completed"
        );
    }

    #[test]
    fn fault_codes_roundtrip() {
        let cases = vec![
            GaeError::NotFound("x".into()),
            GaeError::Unauthorized("x".into()),
            GaeError::Parse("x".into()),
            GaeError::Estimator("x".into()),
            GaeError::InvalidPlan("x".into()),
            GaeError::ExecutionFailure("x".into()),
            GaeError::ResourceExhausted("x".into()),
            GaeError::Io("x".into()),
            GaeError::Timeout("x".into()),
            GaeError::RequestTimeout("x".into()),
            GaeError::PayloadTooLarge("x".into()),
            GaeError::RateLimited { retry_after_us: 7 },
            GaeError::Overloaded {
                retry_after_us: 9,
                shed_class: "scavenger".into(),
            },
            GaeError::Transfer("x".into()),
        ];
        for e in cases {
            let back = GaeError::from_fault(e.fault_code(), "x".into());
            assert_eq!(back.kind(), e.kind(), "{e:?}");
        }
    }

    #[test]
    fn gate_faults_roundtrip_their_payload() {
        let cases = vec![
            GaeError::RateLimited {
                retry_after_us: 125_000,
            },
            GaeError::Overloaded {
                retry_after_us: 2_500_000,
                shed_class: "scavenger".into(),
            },
            GaeError::Overloaded {
                retry_after_us: 0,
                shed_class: "exec-site-3".into(),
            },
        ];
        for e in cases {
            let back = GaeError::from_fault(e.fault_code(), e.to_string());
            assert_eq!(back, e, "full wire round trip");
            assert_eq!(back.retry_after_us(), e.retry_after_us());
        }
        assert_eq!(GaeError::NotFound("x".into()).retry_after_us(), None);
    }

    #[test]
    fn unknown_fault_code_becomes_rpc() {
        let e = GaeError::from_fault(999, "boom".into());
        assert_eq!(
            e,
            GaeError::Rpc {
                code: 999,
                message: "boom".into()
            }
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: GaeError = io.into();
        assert_eq!(e.kind(), "io");
    }

    #[test]
    fn kinds_are_distinct() {
        use std::collections::HashSet;
        let kinds: HashSet<_> = [
            GaeError::NotFound(String::new()).kind(),
            GaeError::Unauthorized(String::new()).kind(),
            GaeError::Parse(String::new()).kind(),
            GaeError::Estimator(String::new()).kind(),
            GaeError::InvalidPlan(String::new()).kind(),
            GaeError::ExecutionFailure(String::new()).kind(),
            GaeError::ResourceExhausted(String::new()).kind(),
            GaeError::Io(String::new()).kind(),
            GaeError::Timeout(String::new()).kind(),
            GaeError::RateLimited { retry_after_us: 0 }.kind(),
            GaeError::Overloaded {
                retry_after_us: 0,
                shed_class: String::new(),
            }
            .kind(),
            GaeError::Rpc {
                code: 0,
                message: String::new(),
            }
            .kind(),
            GaeError::InvalidTransition {
                entity: String::new(),
                from: String::new(),
                attempted: String::new(),
            }
            .kind(),
            GaeError::Transfer(String::new()).kind(),
        ]
        .into_iter()
        .collect();
        assert_eq!(kinds.len(), 14);
    }
}
