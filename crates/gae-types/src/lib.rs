//! Common vocabulary types for the Grid Analysis Environment (GAE).
//!
//! This crate defines the identifiers, time base, job/task model, job
//! plans, site descriptions, and error type shared by every other GAE
//! crate. It deliberately has **no dependencies** so that substrates
//! (execution service, scheduler, monitor) and the resource-management
//! services (steering, job monitoring, estimators) agree on one
//! vocabulary without pulling each other in.
//!
//! The model follows the ICPPW'05 paper *"Resource Management Services
//! for a Grid Analysis Environment"*:
//!
//! * a **job** is a DAG of **tasks** (the paper's "job plan" follows a
//!   directed acyclic graph structure, §2);
//! * a **concrete job plan** maps each task to the execution site that
//!   will run it (§4.2.1);
//! * **sites** host execution services with nodes, slots, a relative
//!   speed factor, and CPU-hour charge rates (used by the Quota and
//!   Accounting Service and the Optimizer, §4.2.2);
//! * all timestamps are [`SimTime`] microseconds so components can be
//!   driven either by the discrete-event simulator or by a real-time
//!   pump.

#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod job;
pub mod plan;
pub mod priority;
pub mod site;
pub mod status;
pub mod time;

pub use error::{GaeError, GaeResult};
pub use ids::{CondorId, IdAllocator, JobId, NodeId, PlanId, SessionId, SiteId, TaskId, UserId};
pub use job::{JobSpec, JobType, TaskSpec};
pub use plan::{AbstractPlan, ConcretePlan, OptimizationPreference, TaskAssignment};
pub use priority::Priority;
pub use site::{FileRef, SiteDescription};
pub use status::{JobStatus, TaskStatus};
pub use time::{SimDuration, SimTime};

/// Convenient glob-import of the most commonly used GAE types.
pub mod prelude {
    pub use crate::error::{GaeError, GaeResult};
    pub use crate::ids::{CondorId, JobId, NodeId, PlanId, SessionId, SiteId, TaskId, UserId};
    pub use crate::job::{JobSpec, JobType, TaskSpec};
    pub use crate::plan::{AbstractPlan, ConcretePlan, OptimizationPreference, TaskAssignment};
    pub use crate::priority::Priority;
    pub use crate::site::{FileRef, SiteDescription};
    pub use crate::status::{JobStatus, TaskStatus};
    pub use crate::time::{SimDuration, SimTime};
}
