//! Strongly-typed identifiers for every GAE entity.
//!
//! Each identifier is a `u64` newtype (see the Rust Performance Book's
//! advice on small integer newtypes) so they are `Copy`, hashable, and
//! impossible to confuse with one another at compile time. Sequential
//! allocation is provided by [`IdAllocator`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw numeric identifier.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw numeric identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl std::str::FromStr for $name {
            type Err = crate::error::GaeError;

            /// Parses either the bare number or the prefixed display
            /// form (e.g. `"job-42"` for `JobId`).
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let digits = s.strip_prefix($prefix).unwrap_or(s);
                digits
                    .parse::<u64>()
                    .map($name)
                    .map_err(|_| crate::error::GaeError::Parse(format!(
                        "invalid {}: {s:?}",
                        stringify!($name)
                    )))
            }
        }
    };
}

define_id!(
    /// Identifies a whole job (a DAG of tasks) across the GAE.
    JobId, "job-"
);
define_id!(
    /// Identifies one task (the atomic component of a job, §6.1).
    TaskId, "task-"
);
define_id!(
    /// The identifier assigned by the execution service's queue, the
    /// paper's "Condor ID" (§6.2): input to the queue-time estimator.
    CondorId, "condor-"
);
define_id!(
    /// Identifies an execution site (a Clarens host + execution pool).
    SiteId, "site-"
);
define_id!(
    /// Identifies a worker node inside one execution site.
    NodeId, "node-"
);
define_id!(
    /// Identifies a GAE user (job owner, steering client).
    UserId, "user-"
);
define_id!(
    /// Identifies an authenticated Clarens session (§4.2.5).
    SessionId, "sess-"
);
define_id!(
    /// Identifies a concrete job plan produced by the scheduler.
    PlanId, "plan-"
);

/// A thread-safe monotonically increasing allocator for any id type.
///
/// Identifiers start at 1 so that 0 (the `Default`) can be read as
/// "unassigned" in diagnostics.
#[derive(Debug)]
pub struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    /// Creates an allocator whose first issued id is 1.
    pub const fn new() -> Self {
        IdAllocator {
            next: AtomicU64::new(1),
        }
    }

    /// Creates an allocator whose first issued id is `first`.
    pub const fn starting_at(first: u64) -> Self {
        IdAllocator {
            next: AtomicU64::new(first),
        }
    }

    /// Issues the next raw identifier.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Issues the next identifier as type `I`.
    pub fn next<I: From<u64>>(&self) -> I {
        I::from(self.next_raw())
    }
}

impl Default for IdAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::str::FromStr;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(JobId::new(7).to_string(), "job-7");
        assert_eq!(CondorId::new(12).to_string(), "condor-12");
        assert_eq!(format!("{:?}", SiteId::new(3)), "site-3");
    }

    #[test]
    fn parse_accepts_bare_and_prefixed() {
        assert_eq!(JobId::from_str("42").unwrap(), JobId::new(42));
        assert_eq!(JobId::from_str("job-42").unwrap(), JobId::new(42));
        assert!(JobId::from_str("task-1x").is_err());
        assert!(TaskId::from_str("").is_err());
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; we just exercise conversion.
        let j: JobId = 5u64.into();
        let t: TaskId = 5u64.into();
        assert_eq!(j.raw(), t.raw());
    }

    #[test]
    fn allocator_is_sequential() {
        let alloc = IdAllocator::new();
        let a: JobId = alloc.next();
        let b: JobId = alloc.next();
        assert_eq!(a, JobId::new(1));
        assert_eq!(b, JobId::new(2));
    }

    #[test]
    fn allocator_starting_at() {
        let alloc = IdAllocator::starting_at(100);
        assert_eq!(alloc.next::<TaskId>(), TaskId::new(100));
    }

    #[test]
    fn allocator_is_thread_safe() {
        let alloc = std::sync::Arc::new(IdAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let alloc = alloc.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| alloc.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 800);
    }
}
