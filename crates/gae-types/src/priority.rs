//! Job/task priority, Condor-style.
//!
//! Higher numeric value means more urgent, matching Condor's user
//! priority convention in the paper's queue-time estimator (§6.2):
//! the estimator sums the remaining runtimes of *tasks having a
//! priority greater than the input task*.

use std::fmt;

/// Scheduling priority of a task. Default is 0; steering clients can
/// raise or lower it with the `change priority` command (§4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Priority(i32);

impl Priority {
    /// The default priority assigned at submission.
    pub const NORMAL: Priority = Priority(0);
    /// Convenience high priority used by tests and examples.
    pub const HIGH: Priority = Priority(10);
    /// Convenience low priority used by tests and examples.
    pub const LOW: Priority = Priority(-10);

    /// Wraps a raw priority level.
    pub const fn new(level: i32) -> Self {
        Priority(level)
    }

    /// The raw priority level.
    pub const fn level(self) -> i32 {
        self.0
    }

    /// Returns a priority raised by `steps` (saturating).
    pub fn raised(self, steps: i32) -> Priority {
        Priority(self.0.saturating_add(steps))
    }

    /// Returns a priority lowered by `steps` (saturating).
    pub fn lowered(self, steps: i32) -> Priority {
        Priority(self.0.saturating_sub(steps))
    }

    /// True if `self` preempts (is strictly more urgent than) `other`.
    pub fn beats(self, other: Priority) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+}", self.0)
    }
}

impl From<i32> for Priority {
    fn from(level: i32) -> Self {
        Priority(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_urgency() {
        assert!(Priority::HIGH > Priority::NORMAL);
        assert!(Priority::LOW < Priority::NORMAL);
        assert!(Priority::HIGH.beats(Priority::NORMAL));
        assert!(!Priority::NORMAL.beats(Priority::NORMAL));
    }

    #[test]
    fn raise_and_lower_saturate() {
        assert_eq!(Priority::new(i32::MAX).raised(1).level(), i32::MAX);
        assert_eq!(Priority::new(i32::MIN).lowered(1).level(), i32::MIN);
        assert_eq!(Priority::NORMAL.raised(3), Priority::new(3));
        assert_eq!(Priority::NORMAL.lowered(3), Priority::new(-3));
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(Priority::new(5).to_string(), "+5");
        assert_eq!(Priority::new(-5).to_string(), "-5");
        assert_eq!(Priority::NORMAL.to_string(), "+0");
    }
}
