//! Execution sites and file references.
//!
//! A site bundles what the paper's Optimizer needs to choose a "Best
//! Site" (§4.2.2): capacity (nodes × slots), a relative speed factor,
//! and the charge rates the Quota and Accounting Service bills
//! against. `FileRef`s carry sizes and replica locations so the
//! file-transfer-time estimator (§6.3) and the scheduler can reason
//! about staging costs.

use crate::ids::SiteId;
use std::fmt;

/// Static description of an execution site.
#[derive(Clone, PartialEq, Debug)]
pub struct SiteDescription {
    /// Unique id.
    pub id: SiteId,
    /// Human-readable name ("caltech-tier2").
    pub name: String,
    /// Number of worker nodes.
    pub nodes: u32,
    /// Concurrent task slots per node.
    pub slots_per_node: u32,
    /// Relative CPU speed: 1.0 is the reference CPU the paper's 283 s
    /// estimate was taken on; 2.0 executes the same work twice as fast.
    pub speed_factor: f64,
    /// Charge rate for CPU hours (Paragon schema; the *cheap*
    /// optimization preference minimises this).
    pub charge_per_cpu_hour: f64,
    /// Charge rate for idle hours (Paragon schema).
    pub charge_per_idle_hour: f64,
}

impl SiteDescription {
    /// Creates a site description with the given capacity and
    /// defaults: speed 1.0, CPU-hour rate 1.0, idle rate 0.1.
    pub fn new(id: SiteId, name: impl Into<String>, nodes: u32, slots_per_node: u32) -> Self {
        SiteDescription {
            id,
            name: name.into(),
            nodes,
            slots_per_node,
            speed_factor: 1.0,
            charge_per_cpu_hour: 1.0,
            charge_per_idle_hour: 0.1,
        }
    }

    /// Builder-style speed factor.
    pub fn with_speed(mut self, speed: f64) -> Self {
        debug_assert!(speed > 0.0);
        self.speed_factor = speed;
        self
    }

    /// Builder-style charge rate.
    pub fn with_charge(mut self, cpu_hour: f64, idle_hour: f64) -> Self {
        self.charge_per_cpu_hour = cpu_hour;
        self.charge_per_idle_hour = idle_hour;
        self
    }

    /// Total concurrent task slots at the site.
    pub fn total_slots(&self) -> u32 {
        self.nodes * self.slots_per_node
    }

    /// Cost of `cpu_seconds` of work at this site's CPU-hour rate.
    pub fn cost_of_cpu_seconds(&self, cpu_seconds: f64) -> f64 {
        self.charge_per_cpu_hour * cpu_seconds / 3600.0
    }
}

impl fmt::Display for SiteDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}: {}x{} slots, speed {:.2}, {:.2}/cpu-h)",
            self.name,
            self.id,
            self.nodes,
            self.slots_per_node,
            self.speed_factor,
            self.charge_per_cpu_hour
        )
    }
}

/// A logical file with size and replica locations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FileRef {
    /// Logical file name within the data grid.
    pub logical_name: String,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Sites currently holding a replica.
    pub replicas: Vec<SiteId>,
}

impl FileRef {
    /// Creates a file reference with no known replicas.
    pub fn new(logical_name: impl Into<String>, size_bytes: u64) -> Self {
        FileRef {
            logical_name: logical_name.into(),
            size_bytes,
            replicas: Vec::new(),
        }
    }

    /// Builder-style replica list.
    pub fn with_replicas(mut self, sites: Vec<SiteId>) -> Self {
        self.replicas = sites;
        self
    }

    /// True if `site` already holds a replica (no transfer needed).
    pub fn available_at(&self, site: SiteId) -> bool {
        self.replicas.contains(&site)
    }
}

impl fmt::Display for FileRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bytes)", self.logical_name, self.size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_multiply() {
        let s = SiteDescription::new(SiteId::new(1), "a", 16, 2);
        assert_eq!(s.total_slots(), 32);
    }

    #[test]
    fn cost_uses_hour_rate() {
        let s = SiteDescription::new(SiteId::new(1), "a", 1, 1).with_charge(7.2, 0.0);
        // 1800 CPU-seconds = 0.5 h at 7.2/h = 3.6
        assert!((s.cost_of_cpu_seconds(1800.0) - 3.6).abs() < 1e-9);
    }

    #[test]
    fn builders_apply() {
        let s = SiteDescription::new(SiteId::new(2), "b", 4, 1)
            .with_speed(2.5)
            .with_charge(3.0, 0.5);
        assert_eq!(s.speed_factor, 2.5);
        assert_eq!(s.charge_per_cpu_hour, 3.0);
        assert_eq!(s.charge_per_idle_hour, 0.5);
    }

    #[test]
    fn file_replicas() {
        let f = FileRef::new("lfn:/cms/events.root", 1 << 30)
            .with_replicas(vec![SiteId::new(1), SiteId::new(3)]);
        assert!(f.available_at(SiteId::new(1)));
        assert!(!f.available_at(SiteId::new(2)));
    }

    #[test]
    fn display_forms() {
        let s = SiteDescription::new(SiteId::new(1), "caltech", 8, 2);
        assert!(s.to_string().contains("caltech"));
        let f = FileRef::new("x", 42);
        assert_eq!(f.to_string(), "x (42 bytes)");
    }
}
