//! Job and task lifecycle states, with a validated transition table.
//!
//! The steering service's Command Processor (§4.2.2) only accepts
//! commands that are legal in the current state; the table here is the
//! single source of truth used by the execution service, the job
//! monitoring service, and the steering service alike.

use crate::error::GaeError;
use std::fmt;

/// Lifecycle state of a single task on an execution service.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TaskStatus {
    /// Accepted by the scheduler, not yet enqueued anywhere.
    Pending,
    /// In an execution-service queue, waiting for a free slot.
    Queued,
    /// Occupying a slot and accruing wall-clock time.
    Running,
    /// Paused by a steering command; keeps its slot state but accrues
    /// no wall-clock time.
    Suspended,
    /// Being moved to another site by the steering service.
    Migrating,
    /// Finished successfully.
    Completed,
    /// Terminated with an error (or its execution service died).
    Failed,
    /// Killed by a steering command.
    Killed,
}

/// Aggregate lifecycle state of a job (a DAG of tasks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JobStatus {
    /// Submitted, no task has started yet.
    Pending,
    /// At least one task queued or running, none failed/killed.
    Active,
    /// All tasks suspended by the user.
    Suspended,
    /// Every task completed successfully.
    Completed,
    /// At least one task failed and recovery is not possible.
    Failed,
    /// Killed by the user.
    Killed,
}

impl TaskStatus {
    /// True once the task can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskStatus::Completed | TaskStatus::Failed | TaskStatus::Killed
        )
    }

    /// True while the task occupies or will occupy execution resources.
    pub fn is_live(self) -> bool {
        !self.is_terminal()
    }

    /// Whether a transition from `self` to `next` is legal.
    ///
    /// The table encodes the paper's command set: kill/pause/resume/
    /// move plus the natural queue→run→complete flow and failure at
    /// any live point.
    pub fn can_transition(self, next: TaskStatus) -> bool {
        use TaskStatus::*;
        match (self, next) {
            // Natural forward flow.
            (Pending, Queued) => true,
            (Queued, Running) => true,
            (Running, Completed) => true,
            // Steering commands.
            (Running, Suspended) | (Queued, Suspended) => true,
            (Suspended, Running) | (Suspended, Queued) => true,
            (Running, Migrating) | (Queued, Migrating) | (Suspended, Migrating) => true,
            (Migrating, Queued) => true,
            // Kill is legal from any live state.
            (s, Killed) if s.is_live() => true,
            // Failure can strike any live state.
            (s, Failed) if s.is_live() => true,
            // Re-queue after an execution-service failure (Backup &
            // Recovery resubmission, §4.2.4).
            (Failed, Queued) => true,
            // Vacated by priority preemption (Condor semantics): the
            // job loses its slot and returns to the queue.
            (Running, Queued) => true,
            _ => false,
        }
    }

    /// Validates a transition, producing the canonical error.
    pub fn transition(self, next: TaskStatus, entity: &str) -> Result<TaskStatus, GaeError> {
        if self.can_transition(next) {
            Ok(next)
        } else {
            Err(GaeError::InvalidTransition {
                entity: entity.to_string(),
                from: self.to_string(),
                attempted: format!("enter {next}"),
            })
        }
    }
}

impl JobStatus {
    /// True once the job can never make further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Killed
        )
    }

    /// Derives the aggregate job status from its tasks' statuses.
    ///
    /// Precedence: killed > failed > suspended-everywhere > active >
    /// completed-everywhere > pending.
    pub fn derive<I: IntoIterator<Item = TaskStatus>>(tasks: I) -> JobStatus {
        let mut any = false;
        let mut all_completed = true;
        let mut all_suspended_or_terminal = true;
        let mut any_live = false;
        let mut any_started = false;
        for t in tasks {
            any = true;
            if t != TaskStatus::Completed {
                all_completed = false;
            }
            if !matches!(t, TaskStatus::Suspended) && t.is_live() {
                all_suspended_or_terminal = false;
            }
            if t.is_live() {
                any_live = true;
                if t != TaskStatus::Pending {
                    any_started = true;
                }
            }
            match t {
                TaskStatus::Killed => return JobStatus::Killed,
                TaskStatus::Failed => return JobStatus::Failed,
                _ => {}
            }
        }
        if !any {
            return JobStatus::Pending;
        }
        if all_completed {
            JobStatus::Completed
        } else if any_live && all_suspended_or_terminal {
            JobStatus::Suspended
        } else if any_started {
            JobStatus::Active
        } else {
            JobStatus::Pending
        }
    }
}

impl fmt::Display for TaskStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskStatus::Pending => "pending",
            TaskStatus::Queued => "queued",
            TaskStatus::Running => "running",
            TaskStatus::Suspended => "suspended",
            TaskStatus::Migrating => "migrating",
            TaskStatus::Completed => "completed",
            TaskStatus::Failed => "failed",
            TaskStatus::Killed => "killed",
        };
        f.write_str(s)
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobStatus::Pending => "pending",
            JobStatus::Active => "active",
            JobStatus::Suspended => "suspended",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Killed => "killed",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for TaskStatus {
    type Err = GaeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "pending" => TaskStatus::Pending,
            "queued" => TaskStatus::Queued,
            "running" => TaskStatus::Running,
            "suspended" => TaskStatus::Suspended,
            "migrating" => TaskStatus::Migrating,
            "completed" => TaskStatus::Completed,
            "failed" => TaskStatus::Failed,
            "killed" => TaskStatus::Killed,
            other => return Err(GaeError::Parse(format!("unknown task status {other:?}"))),
        })
    }
}

impl std::str::FromStr for JobStatus {
    type Err = GaeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "pending" => JobStatus::Pending,
            "active" => JobStatus::Active,
            "suspended" => JobStatus::Suspended,
            "completed" => JobStatus::Completed,
            "failed" => JobStatus::Failed,
            "killed" => JobStatus::Killed,
            other => return Err(GaeError::Parse(format!("unknown job status {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;
    use TaskStatus::*;

    #[test]
    fn natural_flow_is_legal() {
        assert!(Pending.can_transition(Queued));
        assert!(Queued.can_transition(Running));
        assert!(Running.can_transition(Completed));
    }

    #[test]
    fn preemption_vacate_is_legal() {
        assert!(Running.can_transition(Queued));
        assert!(!Suspended.can_transition(Completed));
    }

    #[test]
    fn steering_commands_are_legal() {
        assert!(Running.can_transition(Suspended));
        assert!(Suspended.can_transition(Running));
        assert!(Running.can_transition(Migrating));
        assert!(Migrating.can_transition(Queued));
        assert!(Running.can_transition(Killed));
        assert!(Queued.can_transition(Killed));
    }

    #[test]
    fn terminal_states_are_sticky() {
        for terminal in [Completed, Killed] {
            for next in [
                Pending, Queued, Running, Suspended, Migrating, Completed, Failed, Killed,
            ] {
                assert!(
                    !terminal.can_transition(next),
                    "{terminal:?} -> {next:?} should be illegal"
                );
            }
        }
        // Failed is special: Backup & Recovery may re-queue it.
        assert!(Failed.can_transition(Queued));
        assert!(!Failed.can_transition(Running));
    }

    #[test]
    fn illegal_transition_error_mentions_entity() {
        let err = Completed.transition(Running, "task-9").unwrap_err();
        match err {
            GaeError::InvalidTransition { entity, .. } => assert_eq!(entity, "task-9"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn skipping_queue_is_illegal() {
        assert!(!Pending.can_transition(Running));
        assert!(!Pending.can_transition(Completed));
    }

    #[test]
    fn derive_empty_is_pending() {
        assert_eq!(JobStatus::derive([]), JobStatus::Pending);
    }

    #[test]
    fn derive_all_completed() {
        assert_eq!(
            JobStatus::derive([Completed, Completed]),
            JobStatus::Completed
        );
    }

    #[test]
    fn derive_failure_dominates() {
        assert_eq!(
            JobStatus::derive([Completed, Failed, Running]),
            JobStatus::Failed
        );
        assert_eq!(JobStatus::derive([Killed, Running]), JobStatus::Killed);
    }

    #[test]
    fn derive_active_and_suspended() {
        assert_eq!(JobStatus::derive([Running, Queued]), JobStatus::Active);
        assert_eq!(
            JobStatus::derive([Suspended, Suspended]),
            JobStatus::Suspended
        );
        assert_eq!(
            JobStatus::derive([Suspended, Completed]),
            JobStatus::Suspended
        );
        assert_eq!(JobStatus::derive([Pending, Pending]), JobStatus::Pending);
        assert_eq!(JobStatus::derive([Pending, Queued]), JobStatus::Active);
    }

    #[test]
    fn status_string_roundtrip() {
        for s in [
            Pending, Queued, Running, Suspended, Migrating, Completed, Failed, Killed,
        ] {
            assert_eq!(TaskStatus::from_str(&s.to_string()).unwrap(), s);
        }
        for s in [
            JobStatus::Pending,
            JobStatus::Active,
            JobStatus::Suspended,
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Killed,
        ] {
            assert_eq!(JobStatus::from_str(&s.to_string()).unwrap(), s);
        }
        assert!(TaskStatus::from_str("zombie").is_err());
        assert!(JobStatus::from_str("zombie").is_err());
    }
}
