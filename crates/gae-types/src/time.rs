//! Virtual time base shared by the simulator and the live services.
//!
//! All GAE components are passive state machines parameterised over a
//! monotonically non-decreasing timestamp. In simulation the timestamp
//! is produced by the discrete-event engine; in live deployments it is
//! derived from the wall clock. Using a single integer microsecond
//! representation keeps ordering exact (no float comparisons in event
//! queues) while still being fine-grained enough for RPC latencies.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant, in microseconds since the epoch of the run.
///
/// `SimTime` is totally ordered and overflow-checked in debug builds.
/// The zero value is the start of the simulation (or of the service
/// process in live mode).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the run.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far
    /// in the future" sentinel by event schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from fractional seconds, rounding to the
    /// nearest microsecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * 1e6).round() as u64)
        }
    }

    /// Raw microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating at zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by a non-negative factor, rounding to the
    /// nearest microsecond and saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(v.round() as u64)
        }
    }

    /// Divides the span by a positive factor (e.g. an execution rate),
    /// rounding to the nearest microsecond and saturating on overflow.
    pub fn div_f64(self, divisor: f64) -> SimDuration {
        debug_assert!(divisor > 0.0, "duration divisor must be positive");
        let v = self.0 as f64 / divisor;
        if v >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(v.round() as u64)
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics (in debug) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn float_construction_rounds() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        let mut d = SimDuration::from_secs(1);
        d += SimDuration::from_millis(500);
        assert_eq!(d.as_millis(), 1_500);
        d -= SimDuration::from_millis(1_500);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.div_f64(2.0), SimDuration::from_secs(5));
        // Saturation on absurd factors.
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}
