//! Condor-substitute execution service for the GAE.
//!
//! The paper's Job Monitoring Service "operat\[es\] in close interaction
//! with an execution service (which can be based on any execution
//! engine such as Condor)" (§3). This crate provides that engine as a
//! deterministic simulation with exactly the observables the paper's
//! services consume:
//!
//! * **Condor IDs** for queued/running tasks (§6.2 step a);
//! * a priority queue whose contents (id, priority, elapsed runtime)
//!   the queue-time estimator reads;
//! * per-task **accumulated wall-clock time** that, like Condor's,
//!   "does not include the time during which the job is idle and
//!   waiting for the CPU" (§7) — accrual follows each node's external
//!   [`LoadTrace`](gae_sim::LoadTrace) analytically;
//! * job control: suspend, resume, kill, re-prioritise, and removal
//!   for migration (with checkpoint transfer when the task allows it);
//! * failure injection at node and site granularity, so the steering
//!   service's Backup & Recovery module (§4.2.4) has something to
//!   recover from;
//! * CPU-time and I/O accounting for the monitoring API (§5).
//!
//! The service is a *passive* state machine: callers drive it with
//! explicit `advance_to(now)` calls (the discrete-event engine in
//! simulation, a timer in live mode) and read `next_event_time()` to
//! know when something interesting happens next.

#![warn(missing_docs)]

pub mod events;
pub mod node;
pub mod queue;
pub mod service;
pub mod task;

pub use events::ExecEvent;
pub use node::Node;
pub use queue::PriorityQueue;
pub use service::{ExecutionService, SiteConfig};
pub use task::{Checkpoint, TaskRecord};
