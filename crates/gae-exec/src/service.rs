//! The execution service proper.
//!
//! A passive, deterministic state machine over [`Node`]s, a
//! [`PriorityQueue`] and per-task [`TaskRecord`]s. All mutation
//! happens "at `self.now`": callers advance time explicitly with
//! [`ExecutionService::advance_to`], and every query returns state
//! consistent with the current virtual instant.
//!
//! Completion times are *planned analytically*: when a task starts
//! (or resumes, or its remaining work changes) we compute the exact
//! finish instant from the node's load trace and store it. Advancing
//! time replays planned completions in order, starting queued tasks
//! in freed slots at the exact completion instants — no ticks, no
//! accumulation error.

use crate::events::ExecEvent;
use crate::node::Node;
use crate::queue::PriorityQueue;
use crate::task::{Checkpoint, TaskRecord};
use gae_sim::LoadTrace;
use gae_types::{
    CondorId, GaeError, GaeResult, NodeId, Priority, SimDuration, SimTime, SiteDescription, SiteId,
    TaskId, TaskSpec, TaskStatus,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Event kinds ordering pending-event heap entries at equal instants:
/// completions run before staging arrivals so a freshly staged task
/// can dispatch into the just-freed slot.
const KIND_COMPLETION: u8 = 0;
const KIND_STAGING: u8 = 1;

/// Callback invoked whenever the site's next-event time changes; the
/// grid uses it to maintain its cross-site minimum without re-locking
/// every site per driver iteration.
pub type NextEventNotifier = Box<dyn Fn(Option<SimTime>) + Send + Sync>;

/// Configuration of one execution site.
#[derive(Clone, Debug)]
pub struct SiteConfig {
    /// Static site description (capacity, speed, charge rates).
    pub description: SiteDescription,
    /// Load trace per node; shorter lists are cycled, an empty list
    /// means all nodes are free.
    pub node_traces: Vec<LoadTrace>,
}

impl SiteConfig {
    /// A site whose nodes are all free (no external load).
    pub fn free(description: SiteDescription) -> Self {
        SiteConfig {
            description,
            node_traces: vec![LoadTrace::free()],
        }
    }

    /// A site with one shared load trace on every node.
    pub fn uniform_load(description: SiteDescription, trace: LoadTrace) -> Self {
        SiteConfig {
            description,
            node_traces: vec![trace],
        }
    }
}

/// The Condor-substitute execution engine for one site.
pub struct ExecutionService {
    site: SiteDescription,
    nodes: Vec<Node>,
    queue: PriorityQueue,
    records: HashMap<CondorId, TaskRecord>,
    by_task: HashMap<TaskId, CondorId>,
    planned_finish: HashMap<CondorId, SimTime>,
    /// Tasks still staging their input files: Condor id → instant the
    /// transfer completes and the task enters the queue.
    staging_until: HashMap<CondorId, SimTime>,
    /// Min-heap of pending events keyed `(time, kind, condor)`, with
    /// lazy invalidation: an entry is live only while the matching map
    /// (`planned_finish` / `staging_until`) still holds exactly that
    /// instant for that task. Replaces the per-iteration min-scan of
    /// both maps.
    event_heap: BinaryHeap<Reverse<(SimTime, u8, CondorId)>>,
    /// Cached `next_event_time` answer, kept fresh by `refresh_next`
    /// at the end of every mutating public entry point.
    last_next: Option<SimTime>,
    /// Fires on every `last_next` change (grid next-event index).
    notifier: Option<NextEventNotifier>,
    next_condor: u64,
    now: SimTime,
    alive: bool,
    events: Vec<ExecEvent>,
    /// Monotone per-site event sequence; stamps [`ExecEvent::seq`].
    next_event_seq: u64,
    /// Condor-style fair share: when enabled, ties between queued
    /// tasks of equal priority are broken by the owners' accumulated
    /// CPU usage at this site (lighter users first) instead of FIFO.
    fair_share: bool,
    /// Condor-style preemption: when enabled, a queued task of
    /// strictly higher priority vacates the lowest-priority running
    /// task (which loses its progress unless checkpointable).
    preemptive: bool,
    /// CPU-seconds completed per owner at this site (fair-share input
    /// and accounting aid).
    usage: HashMap<gae_types::UserId, f64>,
}

impl ExecutionService {
    /// Builds the service at time zero.
    pub fn new(config: SiteConfig) -> Self {
        let SiteConfig {
            description,
            node_traces,
        } = config;
        let mut nodes = Vec::with_capacity(description.nodes as usize);
        for i in 0..description.nodes {
            let trace = if node_traces.is_empty() {
                LoadTrace::free()
            } else {
                node_traces[i as usize % node_traces.len()].clone()
            };
            nodes.push(Node::new(
                NodeId::new(u64::from(i) + 1),
                description.speed_factor,
                description.slots_per_node,
                trace,
            ));
        }
        ExecutionService {
            site: description,
            nodes,
            queue: PriorityQueue::new(),
            records: HashMap::new(),
            by_task: HashMap::new(),
            planned_finish: HashMap::new(),
            staging_until: HashMap::new(),
            event_heap: BinaryHeap::new(),
            last_next: None,
            notifier: None,
            next_condor: 1,
            now: SimTime::ZERO,
            alive: true,
            events: Vec::new(),
            next_event_seq: 0,
            fair_share: false,
            preemptive: false,
            usage: HashMap::new(),
        }
    }

    /// Enables or disables priority preemption (off by default).
    pub fn set_preemptive(&mut self, enabled: bool) {
        self.preemptive = enabled;
    }

    /// Enables or disables fair-share tie-breaking (off by default;
    /// the paper's testbed ran plain priority FIFO).
    pub fn set_fair_share(&mut self, enabled: bool) {
        self.fair_share = enabled;
    }

    /// CPU-seconds completed by `owner` at this site.
    pub fn usage_of(&self, owner: gae_types::UserId) -> f64 {
        self.usage.get(&owner).copied().unwrap_or(0.0)
    }

    // ---- identity & time ----

    /// The site this service runs.
    pub fn site_id(&self) -> SiteId {
        self.site.id
    }

    /// The static site description.
    pub fn site(&self) -> &SiteDescription {
        &self.site
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// False after [`ExecutionService::fail_site`].
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    // ---- submission & dispatch ----

    /// Accepts a task into the queue, returning its Condor id.
    pub fn submit(&mut self, spec: TaskSpec, carried: Option<Checkpoint>) -> GaeResult<CondorId> {
        self.submit_staged(spec, carried, SimDuration::ZERO)
    }

    /// Accepts a task whose input files need `stage_in` of transfer
    /// time first: the task is `Pending` while its inputs move, then
    /// enters the queue automatically (the caller — the grid fabric —
    /// computes the transfer time from its network model).
    pub fn submit_staged(
        &mut self,
        spec: TaskSpec,
        carried: Option<Checkpoint>,
        stage_in: SimDuration,
    ) -> GaeResult<CondorId> {
        if !self.alive {
            return Err(GaeError::ExecutionFailure(format!(
                "site {} is down",
                self.site.name
            )));
        }
        let condor = CondorId::new(self.next_condor);
        self.next_condor += 1;
        let mut record = TaskRecord::new(condor, spec, self.now, carried);
        self.by_task.insert(record.spec.id, condor);
        if stage_in == SimDuration::ZERO {
            self.queue.push(condor, record.priority);
            self.emit(&record, TaskStatus::Queued, "submitted");
            self.records.insert(condor, record);
            self.dispatch();
        } else {
            record.status = TaskStatus::Pending;
            let until = self.now + stage_in;
            self.staging_until.insert(condor, until);
            self.schedule(until, KIND_STAGING, condor);
            self.emit(&record, TaskStatus::Pending, "staging input files");
            self.records.insert(condor, record);
        }
        self.refresh_next();
        Ok(condor)
    }

    /// Moves a task whose staging finished into the queue.
    fn finish_staging(&mut self, condor: CondorId) {
        self.staging_until.remove(&condor);
        let Some(rec) = self.records.get_mut(&condor) else {
            return;
        };
        if rec.status != TaskStatus::Pending {
            return; // killed or failed while staging
        }
        rec.status = TaskStatus::Queued;
        let priority = rec.priority;
        self.queue.push(condor, priority);
        let rec = self.records[&condor].clone();
        self.emit(&rec, TaskStatus::Queued, "input staging complete");
        self.dispatch();
    }

    /// Corrects the staging-release instant of a `Pending` task. The
    /// grid's transfer scheduler calls this whenever link contention
    /// moves the projected completion of the task's input chain; an
    /// instant at or before the clock releases the task on the next
    /// `advance_to`.
    pub fn restage(&mut self, condor: CondorId, until: SimTime) -> GaeResult<()> {
        match self.staging_until.get_mut(&condor) {
            Some(slot) => {
                *slot = until;
                self.schedule(until, KIND_STAGING, condor);
                self.refresh_next();
                Ok(())
            }
            None => Err(GaeError::NotFound(format!("{condor} is not staging"))),
        }
    }

    /// Fails a `Pending` task whose input-staging chain failed
    /// permanently, so steering's Backup & Recovery can reschedule it.
    pub fn fail_staging(&mut self, condor: CondorId, reason: &str) -> GaeResult<()> {
        if self.staging_until.remove(&condor).is_none() {
            return Err(GaeError::NotFound(format!("{condor} is not staging")));
        }
        let now = self.now;
        let rec = self
            .records
            .get_mut(&condor)
            .ok_or_else(|| GaeError::NotFound(condor.to_string()))?;
        rec.status = TaskStatus::Failed;
        rec.finished_at = Some(now);
        let rec = self.records[&condor].clone();
        self.emit(
            &rec,
            TaskStatus::Failed,
            &format!("input staging failed: {reason}"),
        );
        self.refresh_next();
        Ok(())
    }

    /// Starts queued tasks while free slots exist; with preemption
    /// enabled, vacates lower-priority running tasks for queued
    /// higher-priority ones.
    fn dispatch(&mut self) {
        loop {
            if self.queue.peek().is_none() {
                return;
            }
            // Best free node = highest effective rate right now.
            let best = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.has_free_slot())
                .max_by(|(_, a), (_, b)| {
                    a.rate_at(self.now)
                        .partial_cmp(&b.rate_at(self.now))
                        .expect("rates are finite")
                })
                .map(|(i, _)| i);
            let best = match best {
                Some(i) => Some(i),
                None if self.preemptive => {
                    if self.vacate_for(self.queue.peek().expect("peeked").priority) {
                        continue; // a slot just freed; re-evaluate
                    }
                    None
                }
                None => None,
            };
            let Some(node_idx) = best else { return };
            let entry = if self.fair_share {
                // Among the head priority class, pick the owner with
                // the least completed CPU at this site.
                let snapshot = self.queue.snapshot();
                let head_priority = snapshot.first().expect("peeked non-empty").priority;
                let chosen = snapshot
                    .iter()
                    .take_while(|e| e.priority == head_priority)
                    .min_by(|a, b| {
                        let ua = self
                            .records
                            .get(&a.condor)
                            .map(|r| self.usage_of(r.spec.owner))
                            .unwrap_or(0.0);
                        let ub = self
                            .records
                            .get(&b.condor)
                            .map(|r| self.usage_of(r.spec.owner))
                            .unwrap_or(0.0);
                        ua.partial_cmp(&ub)
                            .expect("usage is finite")
                            .then(a.condor.cmp(&b.condor))
                    })
                    .expect("non-empty class")
                    .to_owned();
                self.queue.remove(chosen.condor);
                chosen
            } else {
                self.queue.pop().expect("peeked non-empty")
            };
            let node_id = self.nodes[node_idx].id;
            self.nodes[node_idx].occupy();
            let finish;
            {
                let rec = self.records.get_mut(&entry.condor).expect("queued record");
                rec.status = TaskStatus::Running;
                rec.node = Some(node_id);
                if rec.started_at.is_none() {
                    rec.started_at = Some(self.now);
                }
                rec.accrued_as_of = self.now;
                finish = self.nodes[node_idx].finish_time(self.now, rec.remaining());
            }
            self.planned_finish.insert(entry.condor, finish);
            self.schedule(finish, KIND_COMPLETION, entry.condor);
            let rec = self.records[&entry.condor].clone();
            self.emit(&rec, TaskStatus::Running, "dispatched");
        }
    }

    /// Vacates the lowest-priority running task if it is strictly
    /// below `incoming`; returns true if a slot was freed. The victim
    /// re-queues: checkpointable tasks keep their progress, others
    /// restart from zero (Condor vacate semantics).
    fn vacate_for(&mut self, incoming: Priority) -> bool {
        let victim = self
            .records
            .values()
            .filter(|r| r.status == TaskStatus::Running)
            .min_by(|a, b| a.priority.cmp(&b.priority).then(a.condor.cmp(&b.condor)))
            .filter(|r| incoming.beats(r.priority))
            .map(|r| r.condor);
        let Some(condor) = victim else { return false };
        self.planned_finish.remove(&condor);
        let rec = self.records.get_mut(&condor).expect("victim record");
        let node = rec.node.take().expect("running task has a node");
        if rec.spec.checkpointable {
            // Progress survives: fold it into the carried work.
            rec.carried += rec.accrued;
            rec.demand = rec.demand.saturating_sub(rec.accrued);
        }
        rec.accrued = SimDuration::ZERO;
        rec.accrued_as_of = self.now;
        rec.status = TaskStatus::Queued;
        let priority = rec.priority;
        self.nodes[(node.raw() - 1) as usize].release();
        self.queue.push(condor, priority);
        let rec = self.records[&condor].clone();
        self.emit(&rec, TaskStatus::Queued, "vacated by higher-priority task");
        true
    }

    // ---- time advancement ----

    /// Installs the next-event-change notifier and immediately syncs
    /// it with the current value. The callback runs under the
    /// service's lock: it must only touch independent state (the
    /// grid's next-event index), never this service or the grid.
    pub fn set_event_notifier(&mut self, notifier: NextEventNotifier) {
        notifier(self.last_next);
        self.notifier = Some(notifier);
    }

    /// The next instant something happens: a running task completes
    /// or a staging transfer finishes. O(1): the answer is cached and
    /// refreshed on every mutation.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.last_next
    }

    /// Pushes a pending-event heap entry.
    fn schedule(&mut self, at: SimTime, kind: u8, condor: CondorId) {
        self.event_heap.push(Reverse((at, kind, condor)));
    }

    /// Peeks the earliest live heap entry, discarding stale ones (the
    /// matching map no longer holds that instant for that task).
    fn peek_event(&mut self) -> Option<(SimTime, u8, CondorId)> {
        while let Some(&Reverse((te, kind, condor))) = self.event_heap.peek() {
            let live = if kind == KIND_COMPLETION {
                self.planned_finish.get(&condor) == Some(&te)
            } else {
                self.staging_until.get(&condor) == Some(&te)
            };
            if live {
                return Some((te, kind, condor));
            }
            self.event_heap.pop();
        }
        None
    }

    /// Recomputes the cached next-event answer and tells the notifier
    /// when it moved. Every mutating public entry point ends here.
    fn refresh_next(&mut self) {
        let next = self.peek_event().map(|(te, ..)| te);
        if next != self.last_next {
            self.last_next = next;
            if let Some(notify) = &self.notifier {
                notify(next);
            }
        }
    }

    /// Advances virtual time to `t`, processing completions and
    /// staging arrivals (and the queue starts they trigger) in exact
    /// order. The heap key `(time, kind, condor)` reproduces the
    /// historical selection rule: ties at the same instant break
    /// completion-first (so a freshly staged task can dispatch into
    /// the freed slot), then by Condor id — never by HashMap
    /// iteration order, since the completion sequence feeds the event
    /// log and the estimator histories.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance backwards");
        while let Some((te, kind, condor)) = self.peek_event() {
            if te > t {
                break;
            }
            self.event_heap.pop();
            self.accrue_all_to(te);
            self.now = te;
            if kind == KIND_COMPLETION {
                self.complete(condor);
                self.dispatch();
            } else {
                self.finish_staging(condor);
            }
        }
        self.accrue_all_to(t);
        self.now = t;
        self.refresh_next();
    }

    /// Brings every running task's accrual up to `t`.
    fn accrue_all_to(&mut self, t: SimTime) {
        for rec in self.records.values_mut() {
            if rec.status == TaskStatus::Running {
                let node = rec.node.expect("running task has a node");
                let node = &self.nodes[(node.raw() - 1) as usize];
                rec.accrued += node.accrued_between(rec.accrued_as_of, t);
                rec.accrued_as_of = t;
                rec.update_io();
            }
        }
    }

    fn complete(&mut self, condor: CondorId) {
        self.planned_finish.remove(&condor);
        let rec = self.records.get_mut(&condor).expect("completing record");
        // The planned finish is analytic; snap accrual to the demand
        // to avoid 1-microsecond float residue.
        rec.accrued = rec.demand;
        rec.status = TaskStatus::Completed;
        rec.finished_at = Some(self.now);
        rec.update_io();
        let owner = rec.spec.owner;
        let used = rec.accrued.as_secs_f64();
        let node = rec.node.expect("running task has a node");
        *self.usage.entry(owner).or_insert(0.0) += used;
        self.nodes[(node.raw() - 1) as usize].release();
        let rec = self.records[&condor].clone();
        self.emit(&rec, TaskStatus::Completed, "finished");
    }

    // ---- steering commands (kill / pause / resume / priority) ----

    fn live_record_mut(&mut self, condor: CondorId) -> GaeResult<&mut TaskRecord> {
        match self.records.get_mut(&condor) {
            Some(r) if r.status.is_live() => Ok(r),
            Some(r) => Err(GaeError::InvalidTransition {
                entity: condor.to_string(),
                from: r.status.to_string(),
                attempted: "control".into(),
            }),
            None => Err(GaeError::NotFound(condor.to_string())),
        }
    }

    /// Suspends a running or queued task (keeps its slot if running,
    /// like a SIGSTOPped Condor job).
    pub fn suspend(&mut self, condor: CondorId) -> GaeResult<()> {
        let rec = self.live_record_mut(condor)?;
        match rec.status {
            TaskStatus::Running => {
                rec.status = TaskStatus::Suspended;
                self.planned_finish.remove(&condor);
            }
            TaskStatus::Queued => {
                rec.status = TaskStatus::Suspended;
                rec.node = None;
                self.queue.remove(condor);
            }
            other => {
                return Err(GaeError::InvalidTransition {
                    entity: condor.to_string(),
                    from: other.to_string(),
                    attempted: "suspend".into(),
                })
            }
        }
        let rec = self.records[&condor].clone();
        self.emit(&rec, TaskStatus::Suspended, "suspended");
        self.refresh_next();
        Ok(())
    }

    /// Resumes a suspended task: running tasks continue in place,
    /// queue-suspended tasks re-enter the queue.
    pub fn resume(&mut self, condor: CondorId) -> GaeResult<()> {
        let now = self.now;
        let rec = self.live_record_mut(condor)?;
        if rec.status != TaskStatus::Suspended {
            return Err(GaeError::InvalidTransition {
                entity: condor.to_string(),
                from: rec.status.to_string(),
                attempted: "resume".into(),
            });
        }
        match rec.node {
            Some(node_id) => {
                rec.status = TaskStatus::Running;
                rec.accrued_as_of = now;
                let remaining = rec.remaining();
                let finish = self.nodes[(node_id.raw() - 1) as usize].finish_time(now, remaining);
                self.planned_finish.insert(condor, finish);
                self.schedule(finish, KIND_COMPLETION, condor);
                let rec = self.records[&condor].clone();
                self.emit(&rec, TaskStatus::Running, "resumed");
            }
            None => {
                rec.status = TaskStatus::Queued;
                let prio = rec.priority;
                self.queue.push(condor, prio);
                let rec = self.records[&condor].clone();
                self.emit(&rec, TaskStatus::Queued, "re-queued after resume");
                self.dispatch();
            }
        }
        self.refresh_next();
        Ok(())
    }

    /// Kills a task (any live state).
    pub fn kill(&mut self, condor: CondorId) -> GaeResult<()> {
        let now = self.now;
        let rec = self.live_record_mut(condor)?;
        let was = rec.status;
        rec.status = TaskStatus::Killed;
        rec.finished_at = Some(now);
        let node = rec.node;
        match was {
            TaskStatus::Running | TaskStatus::Suspended => {
                if let Some(node_id) = node {
                    self.nodes[(node_id.raw() - 1) as usize].release();
                }
                self.planned_finish.remove(&condor);
            }
            TaskStatus::Queued => {
                self.queue.remove(condor);
            }
            TaskStatus::Pending => {
                self.staging_until.remove(&condor);
            }
            _ => {}
        }
        let rec = self.records[&condor].clone();
        self.emit(&rec, TaskStatus::Killed, "killed by steering command");
        self.dispatch();
        self.refresh_next();
        Ok(())
    }

    /// Changes a task's priority; queued tasks are re-ordered.
    pub fn set_priority(&mut self, condor: CondorId, priority: Priority) -> GaeResult<()> {
        let rec = self.live_record_mut(condor)?;
        rec.priority = priority;
        if rec.status == TaskStatus::Queued {
            self.queue.reprioritize(condor, priority);
        }
        Ok(())
    }

    /// Removes a task for migration to another site. Returns the spec
    /// and, if the task is checkpointable, the work completed so far.
    pub fn remove_for_migration(
        &mut self,
        condor: CondorId,
    ) -> GaeResult<(TaskSpec, Option<Checkpoint>)> {
        let now = self.now;
        let rec = self.live_record_mut(condor)?;
        let was = rec.status;
        rec.status = TaskStatus::Migrating;
        rec.finished_at = Some(now);
        let node = rec.node;
        let spec = rec.spec.clone();
        // Work completed across all sites so far = full demand minus
        // what is still missing here.
        let full = spec
            .true_cpu_demand
            .unwrap_or_else(|| SimDuration::from_secs_f64(spec.requested_cpu_hours * 3600.0));
        let done = full.saturating_sub(rec.remaining());
        let checkpoint = if spec.checkpointable {
            Some(Checkpoint { accrued: done })
        } else {
            None
        };
        match was {
            TaskStatus::Running | TaskStatus::Suspended => {
                if let Some(node_id) = node {
                    self.nodes[(node_id.raw() - 1) as usize].release();
                }
                self.planned_finish.remove(&condor);
            }
            TaskStatus::Queued => {
                self.queue.remove(condor);
            }
            TaskStatus::Pending => {
                self.staging_until.remove(&condor);
            }
            _ => {}
        }
        let rec = self.records[&condor].clone();
        self.emit(&rec, TaskStatus::Migrating, "removed for migration");
        self.dispatch();
        self.refresh_next();
        Ok((spec, checkpoint))
    }

    // ---- failure injection ----

    /// Fails one node: its tasks fail, the node goes down.
    pub fn fail_node(&mut self, node_id: NodeId) -> GaeResult<()> {
        let idx = (node_id.raw() - 1) as usize;
        if idx >= self.nodes.len() {
            return Err(GaeError::NotFound(node_id.to_string()));
        }
        let victims: Vec<CondorId> = self
            .records
            .values()
            .filter(|r| {
                r.node == Some(node_id)
                    && matches!(r.status, TaskStatus::Running | TaskStatus::Suspended)
            })
            .map(|r| r.condor)
            .collect();
        for condor in victims {
            self.planned_finish.remove(&condor);
            let now = self.now;
            let rec = self.records.get_mut(&condor).expect("victim record");
            rec.status = TaskStatus::Failed;
            rec.finished_at = Some(now);
            let rec = self.records[&condor].clone();
            self.emit(&rec, TaskStatus::Failed, &format!("{node_id} failed"));
        }
        self.nodes[idx].fail();
        self.dispatch();
        self.refresh_next();
        Ok(())
    }

    /// Brings a failed node back (empty). Recovering a node that is
    /// already up is a no-op — resetting a live node's slot counter
    /// would orphan the tasks holding its slots.
    pub fn recover_node(&mut self, node_id: NodeId) -> GaeResult<()> {
        let idx = (node_id.raw() - 1) as usize;
        if idx >= self.nodes.len() {
            return Err(GaeError::NotFound(node_id.to_string()));
        }
        if !self.nodes[idx].is_alive() {
            self.nodes[idx].recover();
            self.dispatch();
            self.refresh_next();
        }
        Ok(())
    }

    /// Takes the whole site down: every live task fails, the queue
    /// empties, and further submissions are refused until recovery.
    pub fn fail_site(&mut self) {
        self.alive = false;
        let victims: Vec<CondorId> = self
            .records
            .values()
            .filter(|r| r.status.is_live())
            .map(|r| r.condor)
            .collect();
        for condor in victims {
            self.planned_finish.remove(&condor);
            self.staging_until.remove(&condor);
            self.queue.remove(condor);
            let now = self.now;
            let rec = self.records.get_mut(&condor).expect("victim record");
            rec.status = TaskStatus::Failed;
            rec.finished_at = Some(now);
            let rec = self.records[&condor].clone();
            self.emit(&rec, TaskStatus::Failed, "execution service failed");
        }
        for node in &mut self.nodes {
            node.fail();
        }
        self.refresh_next();
    }

    /// Brings the site back up; only downed nodes are reset.
    pub fn recover_site(&mut self) {
        self.alive = true;
        for node in &mut self.nodes {
            if !node.is_alive() {
                node.recover();
            }
        }
        self.dispatch();
        self.refresh_next();
    }

    // ---- queries ----

    /// The record for a Condor id.
    pub fn record(&self, condor: CondorId) -> GaeResult<&TaskRecord> {
        self.records
            .get(&condor)
            .ok_or_else(|| GaeError::NotFound(condor.to_string()))
    }

    /// Looks up the Condor id assigned to a global task id.
    pub fn condor_of(&self, task: TaskId) -> Option<CondorId> {
        self.by_task.get(&task).copied()
    }

    /// Current status of a task.
    pub fn status(&self, condor: CondorId) -> GaeResult<TaskStatus> {
        self.record(condor).map(|r| r.status)
    }

    /// Queue snapshot in dispatch order.
    pub fn queue_snapshot(&self) -> Vec<crate::queue::QueueEntry> {
        self.queue.snapshot()
    }

    /// Number of waiting tasks.
    pub fn queue_length(&self) -> usize {
        self.queue.len()
    }

    /// Zero-based queue position of a task, `None` if not queued.
    pub fn queue_position(&self, condor: CondorId) -> Option<usize> {
        self.queue.position(condor)
    }

    /// Number of running tasks.
    pub fn running_count(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.status == TaskStatus::Running)
            .count()
    }

    /// Condor ids and accrued runtimes of all live (running or
    /// queued) tasks with priority strictly above `p` — the input to
    /// the queue-time estimator (§6.2 steps a–b).
    pub fn tasks_above_priority(&self, p: Priority) -> Vec<(CondorId, TaskId, SimDuration)> {
        let mut out: Vec<(CondorId, TaskId, SimDuration)> = self
            .records
            .values()
            .filter(|r| {
                matches!(r.status, TaskStatus::Running | TaskStatus::Queued) && r.priority.beats(p)
            })
            .map(|r| (r.condor, r.spec.id, r.accrued))
            .collect();
        out.sort_by_key(|(c, _, _)| *c);
        out
    }

    /// Mean external load over the site's nodes right now (published
    /// to MonALISA as the farm's `cpu_load`).
    pub fn current_load(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.load_at(self.now)).sum::<f64>() / self.nodes.len() as f64
    }

    /// Node accessor (diagnostics).
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get((id.raw() - 1) as usize)
    }

    /// All nodes, in id order (monitoring sweep).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All records, unordered (monitoring sweep).
    pub fn records(&self) -> impl Iterator<Item = &TaskRecord> {
        self.records.values()
    }

    /// The pre-heap min-scan over both pending maps, retained as the
    /// differential oracle for the cached heap answer.
    #[cfg(test)]
    fn naive_next_event_time(&self) -> Option<SimTime> {
        let finish = self.planned_finish.values().min().copied();
        let staged = self.staging_until.values().min().copied();
        match (finish, staged) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Removes and returns all events emitted since the last drain.
    pub fn drain_events(&mut self) -> Vec<ExecEvent> {
        std::mem::take(&mut self.events)
    }

    fn emit(&mut self, rec: &TaskRecord, status: TaskStatus, detail: &str) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.events.push(ExecEvent {
            seq,
            at: self.now,
            condor: rec.condor,
            task: rec.spec.id,
            status,
            node: rec.node,
            detail: detail.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::TaskId;

    fn site(id: u64, nodes: u32, slots: u32) -> SiteDescription {
        SiteDescription::new(SiteId::new(id), format!("site-{id}"), nodes, slots)
    }

    fn task(id: u64, demand_s: u64) -> TaskSpec {
        TaskSpec::new(TaskId::new(id), format!("t{id}"), "prime")
            .with_cpu_demand(SimDuration::from_secs(demand_s))
    }

    fn free_service() -> ExecutionService {
        ExecutionService::new(SiteConfig::free(site(1, 1, 1)))
    }

    #[test]
    fn submit_runs_and_completes_on_free_cpu() {
        let mut svc = free_service();
        let c = svc.submit(task(1, 283), None).unwrap();
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Running);
        assert_eq!(svc.next_event_time(), Some(SimTime::from_secs(283)));
        svc.advance_to(SimTime::from_secs(283));
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Completed);
        let rec = svc.record(c).unwrap();
        assert_eq!(rec.finished_at, Some(SimTime::from_secs(283)));
        assert_eq!(rec.accrued, SimDuration::from_secs(283));
        assert_eq!(rec.progress(), 1.0);
    }

    #[test]
    fn loaded_node_slows_accrual() {
        // Load 3.67 -> rate ~0.214: the Figure 7 site-A scenario.
        let cfg = SiteConfig::uniform_load(site(1, 1, 1), LoadTrace::constant(3.67));
        let mut svc = ExecutionService::new(cfg);
        let c = svc.submit(task(1, 283), None).unwrap();
        svc.advance_to(SimTime::from_secs(141));
        let rec = svc.record(c).unwrap();
        // ~141 * 1/4.67 = ~30.2 s accrued.
        let accrued = rec.accrued.as_secs_f64();
        assert!((accrued - 30.19).abs() < 0.1, "accrued {accrued}");
        assert_eq!(rec.status, TaskStatus::Running);
        // Full completion takes 283 * 4.67 = ~1321.6 s.
        let finish = svc.next_event_time().unwrap().as_secs_f64();
        assert!((finish - 1321.6).abs() < 0.2, "finish {finish}");
    }

    #[test]
    fn queueing_fifo_on_single_slot() {
        let mut svc = free_service();
        let a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 50), None).unwrap();
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Running);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Queued);
        assert_eq!(svc.queue_position(b), Some(0));
        assert_eq!(svc.queue_length(), 1);
        svc.advance_to(SimTime::from_secs(100));
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Completed);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Running);
        // b starts exactly at a's completion.
        svc.advance_to(SimTime::from_secs(150));
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Completed);
        assert_eq!(
            svc.record(b).unwrap().finished_at,
            Some(SimTime::from_secs(150))
        );
    }

    #[test]
    fn priority_reorders_queue() {
        let mut svc = free_service();
        let _running = svc.submit(task(1, 100), None).unwrap();
        let low = svc.submit(task(2, 10), None).unwrap();
        let high = svc
            .submit(task(3, 10).with_priority(Priority::HIGH), None)
            .unwrap();
        assert_eq!(svc.queue_position(high), Some(0));
        assert_eq!(svc.queue_position(low), Some(1));
        svc.advance_to(SimTime::from_secs(100));
        assert_eq!(svc.status(high).unwrap(), TaskStatus::Running);
        assert_eq!(svc.status(low).unwrap(), TaskStatus::Queued);
    }

    #[test]
    fn multi_slot_parallelism() {
        let mut svc = ExecutionService::new(SiteConfig::free(site(1, 2, 2)));
        let ids: Vec<CondorId> = (1..=4)
            .map(|i| svc.submit(task(i, 100), None).unwrap())
            .collect();
        assert_eq!(svc.running_count(), 4);
        svc.advance_to(SimTime::from_secs(100));
        for c in ids {
            assert_eq!(svc.status(c).unwrap(), TaskStatus::Completed);
        }
    }

    #[test]
    fn suspend_stops_accrual_resume_continues() {
        let mut svc = free_service();
        let c = svc.submit(task(1, 100), None).unwrap();
        svc.advance_to(SimTime::from_secs(30));
        svc.suspend(c).unwrap();
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Suspended);
        svc.advance_to(SimTime::from_secs(80));
        let rec = svc.record(c).unwrap();
        assert_eq!(
            rec.accrued,
            SimDuration::from_secs(30),
            "no accrual while suspended"
        );
        svc.resume(c).unwrap();
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Running);
        // 70 s remaining from t=80 -> completes at 150.
        assert_eq!(svc.next_event_time(), Some(SimTime::from_secs(150)));
        svc.advance_to(SimTime::from_secs(150));
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Completed);
    }

    #[test]
    fn suspended_running_task_keeps_its_slot() {
        let mut svc = free_service();
        let a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 10), None).unwrap();
        svc.suspend(a).unwrap();
        // The slot is held, so b stays queued (Condor SIGSTOP model).
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Queued);
    }

    #[test]
    fn suspend_queued_task_leaves_queue() {
        let mut svc = free_service();
        let _a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 10), None).unwrap();
        svc.suspend(b).unwrap();
        assert_eq!(svc.queue_length(), 0);
        svc.resume(b).unwrap();
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Queued);
        assert_eq!(svc.queue_length(), 1);
    }

    #[test]
    fn kill_releases_slot_and_starts_next() {
        let mut svc = free_service();
        let a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 50), None).unwrap();
        svc.advance_to(SimTime::from_secs(10));
        svc.kill(a).unwrap();
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Killed);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Running);
        // Killing again is an invalid transition.
        assert!(matches!(
            svc.kill(a),
            Err(GaeError::InvalidTransition { .. })
        ));
        svc.advance_to(SimTime::from_secs(60));
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Completed);
    }

    #[test]
    fn kill_queued_task() {
        let mut svc = free_service();
        let _a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 50), None).unwrap();
        svc.kill(b).unwrap();
        assert_eq!(svc.queue_length(), 0);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Killed);
    }

    #[test]
    fn set_priority_on_queued_task_reorders() {
        let mut svc = free_service();
        let _running = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 10), None).unwrap();
        let c = svc.submit(task(3, 10), None).unwrap();
        assert_eq!(svc.queue_position(c), Some(1));
        svc.set_priority(c, Priority::HIGH).unwrap();
        assert_eq!(svc.queue_position(c), Some(0));
        assert_eq!(svc.queue_position(b), Some(1));
    }

    #[test]
    fn migration_without_checkpoint_restarts() {
        let mut svc_a = free_service();
        let c = svc_a.submit(task(1, 283), None).unwrap();
        svc_a.advance_to(SimTime::from_secs(86));
        let (spec, ck) = svc_a.remove_for_migration(c).unwrap();
        assert!(ck.is_none(), "non-checkpointable task carries nothing");
        assert_eq!(svc_a.status(c).unwrap(), TaskStatus::Migrating);
        // Restart from scratch at a free site B.
        let mut svc_b = ExecutionService::new(SiteConfig::free(site(2, 1, 1)));
        svc_b.advance_to(SimTime::from_secs(86));
        let c2 = svc_b.submit(spec, ck).unwrap();
        assert_eq!(svc_b.next_event_time(), Some(SimTime::from_secs(86 + 283)));
        let _ = c2;
    }

    #[test]
    fn migration_with_checkpoint_carries_work() {
        let mut svc_a = free_service();
        let c = svc_a
            .submit(task(1, 283).with_checkpointable(true), None)
            .unwrap();
        svc_a.advance_to(SimTime::from_secs(100));
        let (spec, ck) = svc_a.remove_for_migration(c).unwrap();
        assert_eq!(ck.unwrap().accrued, SimDuration::from_secs(100));
        let mut svc_b = ExecutionService::new(SiteConfig::free(site(2, 1, 1)));
        svc_b.advance_to(SimTime::from_secs(100));
        let c2 = svc_b.submit(spec, ck).unwrap();
        // Only 183 s remain.
        assert_eq!(svc_b.next_event_time(), Some(SimTime::from_secs(283)));
        svc_b.advance_to(SimTime::from_secs(283));
        assert_eq!(svc_b.status(c2).unwrap(), TaskStatus::Completed);
    }

    #[test]
    fn node_failure_fails_its_tasks() {
        let mut svc = ExecutionService::new(SiteConfig::free(site(1, 2, 1)));
        let a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 100), None).unwrap();
        let node_a = svc.record(a).unwrap().node.unwrap();
        svc.fail_node(node_a).unwrap();
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Failed);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Running);
        assert!(svc.fail_node(NodeId::new(99)).is_err());
        svc.recover_node(node_a).unwrap();
        assert!(svc.node(node_a).unwrap().is_alive());
    }

    #[test]
    fn site_failure_and_recovery() {
        let mut svc = free_service();
        let a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 100), None).unwrap();
        svc.fail_site();
        assert!(!svc.is_alive());
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Failed);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Failed);
        assert_eq!(svc.queue_length(), 0);
        assert!(svc.submit(task(3, 10), None).is_err());
        svc.recover_site();
        assert!(svc.is_alive());
        assert!(svc.submit(task(3, 10), None).is_ok());
    }

    #[test]
    fn tasks_above_priority_for_estimator() {
        let mut svc = ExecutionService::new(SiteConfig::free(site(1, 1, 1)));
        let a = svc
            .submit(task(1, 100).with_priority(Priority::new(5)), None)
            .unwrap();
        let _b = svc
            .submit(task(2, 100).with_priority(Priority::new(3)), None)
            .unwrap();
        let _c = svc
            .submit(task(3, 100).with_priority(Priority::new(0)), None)
            .unwrap();
        svc.advance_to(SimTime::from_secs(10));
        let above = svc.tasks_above_priority(Priority::new(0));
        assert_eq!(above.len(), 2);
        // The running high-priority task reports its accrued time.
        let (condor, _, accrued) = above[0];
        assert_eq!(condor, a);
        assert_eq!(accrued, SimDuration::from_secs(10));
        // Queued task reports zero accrued.
        assert_eq!(above[1].2, SimDuration::ZERO);
    }

    #[test]
    fn events_stream_covers_lifecycle() {
        let mut svc = free_service();
        let c = svc.submit(task(1, 10), None).unwrap();
        svc.advance_to(SimTime::from_secs(10));
        let events = svc.drain_events();
        let statuses: Vec<TaskStatus> = events.iter().map(|e| e.status).collect();
        assert_eq!(
            statuses,
            vec![
                TaskStatus::Queued,
                TaskStatus::Running,
                TaskStatus::Completed
            ]
        );
        assert!(events.iter().all(|e| e.condor == c));
        // Drain empties the buffer.
        assert!(svc.drain_events().is_empty());
    }

    #[test]
    fn condor_of_maps_task_ids() {
        let mut svc = free_service();
        let c = svc.submit(task(7, 10), None).unwrap();
        assert_eq!(svc.condor_of(TaskId::new(7)), Some(c));
        assert_eq!(svc.condor_of(TaskId::new(8)), None);
    }

    #[test]
    fn unknown_condor_is_not_found() {
        let svc = free_service();
        assert!(matches!(
            svc.status(CondorId::new(42)),
            Err(GaeError::NotFound(_))
        ));
    }

    #[test]
    fn dispatch_prefers_faster_node() {
        // Node 1 loaded, node 2 free: the task must land on node 2.
        let desc = site(1, 2, 1);
        let cfg = SiteConfig {
            description: desc,
            node_traces: vec![LoadTrace::constant(4.0), LoadTrace::free()],
        };
        let mut svc = ExecutionService::new(cfg);
        let c = svc.submit(task(1, 100), None).unwrap();
        assert_eq!(svc.record(c).unwrap().node, Some(NodeId::new(2)));
        assert_eq!(svc.next_event_time(), Some(SimTime::from_secs(100)));
    }

    #[test]
    fn current_load_averages_nodes() {
        let cfg = SiteConfig {
            description: site(1, 2, 1),
            node_traces: vec![LoadTrace::constant(2.0), LoadTrace::constant(4.0)],
        };
        let svc = ExecutionService::new(cfg);
        assert_eq!(svc.current_load(), 3.0);
    }

    #[test]
    fn zero_demand_completes_at_submission_instant() {
        let mut svc = free_service();
        let c = svc
            .submit(task(1, 0).with_cpu_demand(SimDuration::ZERO), None)
            .unwrap();
        assert_eq!(svc.next_event_time(), Some(SimTime::ZERO));
        svc.advance_to(SimTime::ZERO);
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Completed);
    }

    #[test]
    fn elapsed_includes_queue_gaps_accrued_does_not() {
        let mut svc = free_service();
        let _a = svc.submit(task(1, 50), None).unwrap();
        let b = svc.submit(task(2, 50), None).unwrap();
        svc.advance_to(SimTime::from_secs(120));
        let rec = svc.record(b).unwrap();
        // b started at 50, so elapsed 70 but accrued 50 (completed).
        assert_eq!(rec.started_at, Some(SimTime::from_secs(50)));
        assert_eq!(rec.status, TaskStatus::Completed);
        assert_eq!(rec.accrued, SimDuration::from_secs(50));
        assert_eq!(
            rec.elapsed(SimTime::from_secs(120)),
            SimDuration::from_secs(70)
        );
    }

    #[test]
    fn preemption_vacates_lower_priority_work() {
        let mut svc = free_service();
        svc.set_preemptive(true);
        let low = svc
            .submit(task(1, 100).with_priority(Priority::LOW), None)
            .unwrap();
        svc.advance_to(SimTime::from_secs(30));
        let high = svc
            .submit(task(2, 50).with_priority(Priority::HIGH), None)
            .unwrap();
        // The high-priority task takes the slot immediately.
        assert_eq!(svc.status(high).unwrap(), TaskStatus::Running);
        assert_eq!(svc.status(low).unwrap(), TaskStatus::Queued);
        // Non-checkpointable: the 30 s of progress are lost.
        assert_eq!(svc.record(low).unwrap().accrued, SimDuration::ZERO);
        // After the high task finishes, the low one restarts and
        // needs its full 100 s again.
        svc.advance_to(SimTime::from_secs(80));
        assert_eq!(svc.status(low).unwrap(), TaskStatus::Running);
        svc.advance_to(SimTime::from_secs(180));
        assert_eq!(svc.status(low).unwrap(), TaskStatus::Completed);
    }

    #[test]
    fn preemption_preserves_checkpointed_progress() {
        let mut svc = free_service();
        svc.set_preemptive(true);
        let low = svc
            .submit(
                task(1, 100)
                    .with_priority(Priority::LOW)
                    .with_checkpointable(true),
                None,
            )
            .unwrap();
        svc.advance_to(SimTime::from_secs(40));
        let high = svc
            .submit(task(2, 50).with_priority(Priority::HIGH), None)
            .unwrap();
        assert_eq!(svc.status(high).unwrap(), TaskStatus::Running);
        let rec = svc.record(low).unwrap();
        assert_eq!(rec.carried, SimDuration::from_secs(40), "checkpoint kept");
        assert!((rec.progress() - 0.4).abs() < 1e-9);
        // 50 s of high task, then 60 s remaining: done at 90 + 60.
        svc.advance_to(SimTime::from_secs(150));
        assert_eq!(svc.status(low).unwrap(), TaskStatus::Completed);
        assert_eq!(
            svc.record(low).unwrap().finished_at,
            Some(SimTime::from_secs(150))
        );
    }

    #[test]
    fn preemption_never_vacates_equal_priority() {
        let mut svc = free_service();
        svc.set_preemptive(true);
        let a = svc.submit(task(1, 100), None).unwrap();
        let b = svc.submit(task(2, 100), None).unwrap();
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Running);
        assert_eq!(
            svc.status(b).unwrap(),
            TaskStatus::Queued,
            "no equal-priority preemption"
        );
    }

    #[test]
    fn preemption_off_by_default() {
        let mut svc = free_service();
        let low = svc
            .submit(task(1, 100).with_priority(Priority::LOW), None)
            .unwrap();
        let high = svc
            .submit(task(2, 50).with_priority(Priority::HIGH), None)
            .unwrap();
        assert_eq!(svc.status(low).unwrap(), TaskStatus::Running);
        assert_eq!(svc.status(high).unwrap(), TaskStatus::Queued);
    }

    #[test]
    fn fair_share_prefers_light_users() {
        use gae_types::UserId;
        let mut svc = free_service();
        svc.set_fair_share(true);
        let hog = UserId::new(1);
        let light = UserId::new(2);
        // The hog completes a long task, building up usage.
        let first = svc.submit(task(1, 1_000).with_owner(hog), None).unwrap();
        svc.advance_to(SimTime::from_secs(1_000));
        assert_eq!(svc.status(first).unwrap(), TaskStatus::Completed);
        assert_eq!(svc.usage_of(hog), 1_000.0);
        assert_eq!(svc.usage_of(light), 0.0);
        // A blocker, then one queued task per user (hog submits
        // first, so FIFO would pick the hog).
        let _blocker = svc.submit(task(2, 100).with_owner(hog), None).unwrap();
        let hog_task = svc.submit(task(3, 100).with_owner(hog), None).unwrap();
        let light_task = svc.submit(task(4, 100).with_owner(light), None).unwrap();
        svc.advance_to(SimTime::from_secs(1_100));
        assert_eq!(
            svc.status(light_task).unwrap(),
            TaskStatus::Running,
            "light user first"
        );
        assert_eq!(svc.status(hog_task).unwrap(), TaskStatus::Queued);
    }

    #[test]
    fn fair_share_never_overrides_priority() {
        use gae_types::UserId;
        let mut svc = free_service();
        svc.set_fair_share(true);
        let hog = UserId::new(1);
        let light = UserId::new(2);
        let first = svc.submit(task(1, 500).with_owner(hog), None).unwrap();
        svc.advance_to(SimTime::from_secs(500));
        let _ = first;
        let _blocker = svc.submit(task(2, 100).with_owner(light), None).unwrap();
        // The hog's HIGH-priority task beats the light user's normal
        // one despite the usage gap.
        let hog_high = svc
            .submit(
                task(3, 100).with_owner(hog).with_priority(Priority::HIGH),
                None,
            )
            .unwrap();
        let light_normal = svc.submit(task(4, 100).with_owner(light), None).unwrap();
        svc.advance_to(SimTime::from_secs(600));
        assert_eq!(svc.status(hog_high).unwrap(), TaskStatus::Running);
        assert_eq!(svc.status(light_normal).unwrap(), TaskStatus::Queued);
    }

    #[test]
    fn fifo_by_default_even_with_usage_gap() {
        use gae_types::UserId;
        let mut svc = free_service();
        let hog = UserId::new(1);
        let light = UserId::new(2);
        let first = svc.submit(task(1, 500).with_owner(hog), None).unwrap();
        svc.advance_to(SimTime::from_secs(500));
        let _ = first;
        let _blocker = svc.submit(task(2, 100).with_owner(hog), None).unwrap();
        let hog_task = svc.submit(task(3, 100).with_owner(hog), None).unwrap();
        let light_task = svc.submit(task(4, 100).with_owner(light), None).unwrap();
        svc.advance_to(SimTime::from_secs(600));
        assert_eq!(
            svc.status(hog_task).unwrap(),
            TaskStatus::Running,
            "plain FIFO"
        );
        assert_eq!(svc.status(light_task).unwrap(), TaskStatus::Queued);
    }

    #[test]
    fn staged_submission_waits_before_queueing() {
        let mut svc = free_service();
        let c = svc
            .submit_staged(task(1, 100), None, SimDuration::from_secs(40))
            .unwrap();
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Pending);
        assert_eq!(svc.next_event_time(), Some(SimTime::from_secs(40)));
        svc.advance_to(SimTime::from_secs(39));
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Pending);
        svc.advance_to(SimTime::from_secs(40));
        assert_eq!(
            svc.status(c).unwrap(),
            TaskStatus::Running,
            "staged then dispatched"
        );
        // Runs 100 s after the 40 s staging.
        svc.advance_to(SimTime::from_secs(140));
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Completed);
        assert_eq!(
            svc.record(c).unwrap().started_at,
            Some(SimTime::from_secs(40))
        );
    }

    #[test]
    fn staging_task_can_be_killed_and_migrated() {
        let mut svc = free_service();
        let a = svc
            .submit_staged(task(1, 100), None, SimDuration::from_secs(50))
            .unwrap();
        svc.kill(a).unwrap();
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Killed);
        // The staging event must not resurrect it.
        svc.advance_to(SimTime::from_secs(60));
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Killed);

        let b = svc
            .submit_staged(task(2, 100), None, SimDuration::from_secs(50))
            .unwrap();
        let (spec, ck) = svc.remove_for_migration(b).unwrap();
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Migrating);
        assert!(ck.is_none());
        assert_eq!(spec.id, TaskId::new(2));
        svc.advance_to(SimTime::from_secs(200));
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Migrating);
    }

    #[test]
    fn staging_interleaves_with_completions() {
        // One slot: a 30 s task running; a staged task arrives at 20 s
        // and must wait for the slot at 30 s.
        let mut svc = free_service();
        let a = svc.submit(task(1, 30), None).unwrap();
        let b = svc
            .submit_staged(task(2, 10), None, SimDuration::from_secs(20))
            .unwrap();
        svc.advance_to(SimTime::from_secs(25));
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Running);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Queued);
        svc.advance_to(SimTime::from_secs(40));
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Completed);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Completed);
        assert_eq!(
            svc.record(b).unwrap().started_at,
            Some(SimTime::from_secs(30))
        );
    }

    #[test]
    fn site_failure_kills_staging_tasks() {
        let mut svc = free_service();
        let c = svc
            .submit_staged(task(1, 100), None, SimDuration::from_secs(50))
            .unwrap();
        svc.fail_site();
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Failed);
        svc.recover_site();
        svc.advance_to(SimTime::from_secs(100));
        assert_eq!(
            svc.status(c).unwrap(),
            TaskStatus::Failed,
            "no resurrection"
        );
    }

    #[test]
    fn completion_beats_staging_at_same_instant() {
        // One slot: a 20 s task runs while another stages until
        // exactly 20 s. The completion must fire first so the staged
        // task queues into the freed slot at the same instant.
        let mut svc = free_service();
        let a = svc.submit(task(1, 20), None).unwrap();
        let b = svc
            .submit_staged(task(2, 5), None, SimDuration::from_secs(20))
            .unwrap();
        svc.advance_to(SimTime::from_secs(20));
        assert_eq!(svc.status(a).unwrap(), TaskStatus::Completed);
        assert_eq!(svc.status(b).unwrap(), TaskStatus::Running);
        assert_eq!(
            svc.record(b).unwrap().started_at,
            Some(SimTime::from_secs(20))
        );
        let events = svc.drain_events();
        let completed_a = events
            .iter()
            .position(|e| e.condor == a && e.status == TaskStatus::Completed)
            .unwrap();
        let queued_b = events
            .iter()
            .position(|e| e.condor == b && e.status == TaskStatus::Queued)
            .unwrap();
        assert!(completed_a < queued_b, "completion processed first");
    }

    #[test]
    fn cached_next_event_matches_naive_scan_across_mutations() {
        let mut svc = ExecutionService::new(SiteConfig::free(site(1, 2, 2)));
        macro_rules! check {
            () => {
                assert_eq!(svc.next_event_time(), svc.naive_next_event_time())
            };
        }
        check!();
        let a = svc.submit(task(1, 40), None).unwrap();
        check!();
        let b = svc
            .submit_staged(task(2, 10), None, SimDuration::from_secs(7))
            .unwrap();
        check!();
        let c = svc.submit(task(3, 25), None).unwrap();
        check!();
        svc.advance_to(SimTime::from_secs(5));
        check!();
        svc.restage(b, SimTime::from_secs(12)).unwrap();
        check!();
        svc.suspend(a).unwrap();
        check!();
        svc.advance_to(SimTime::from_secs(13));
        check!();
        svc.resume(a).unwrap();
        check!();
        svc.kill(c).unwrap();
        check!();
        let d = svc
            .submit_staged(task(4, 10), None, SimDuration::from_secs(30))
            .unwrap();
        check!();
        let _ = svc.remove_for_migration(d).unwrap();
        check!();
        svc.fail_node(NodeId::new(1)).unwrap();
        check!();
        svc.recover_node(NodeId::new(1)).unwrap();
        check!();
        svc.advance_to(SimTime::from_secs(200));
        check!();
        assert_eq!(svc.next_event_time(), None, "all work settled");
        svc.fail_site();
        check!();
        svc.recover_site();
        check!();
    }

    #[test]
    fn event_notifier_fires_on_next_event_changes() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<Option<SimTime>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut svc = free_service();
        let sink = seen.clone();
        svc.set_event_notifier(Box::new(move |next| sink.lock().unwrap().push(next)));
        let _a = svc.submit(task(1, 30), None).unwrap();
        svc.advance_to(SimTime::from_secs(30));
        svc.advance_to(SimTime::from_secs(40)); // no change: no callback
        let seen = seen.lock().unwrap();
        assert_eq!(
            *seen,
            vec![
                None,                         // sync at install
                Some(SimTime::from_secs(30)), // dispatch planned the finish
                None,                         // completion drained the heap
            ]
        );
    }

    #[test]
    fn load_step_changes_are_exact() {
        // Free for 100 s, then load 1 (rate 1/2): 150 s of work
        // finishes at 100 + 2*50 = 200.
        let trace =
            LoadTrace::from_steps(vec![(SimTime::ZERO, 0.0), (SimTime::from_secs(100), 1.0)]);
        let mut svc = ExecutionService::new(SiteConfig::uniform_load(site(1, 1, 1), trace));
        let c = svc.submit(task(1, 150), None).unwrap();
        assert_eq!(svc.next_event_time(), Some(SimTime::from_secs(200)));
        svc.advance_to(SimTime::from_secs(200));
        assert_eq!(svc.status(c).unwrap(), TaskStatus::Completed);
    }
}
