//! The site's batch queue: priority order, FIFO within a priority.

use gae_types::{CondorId, Priority};
use std::collections::VecDeque;

/// One queued entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueEntry {
    /// The execution-service id of the task.
    pub condor: CondorId,
    /// Its current priority.
    pub priority: Priority,
}

/// A priority queue with stable FIFO order inside each priority
/// level. Small (sites queue tens of tasks), so a sorted `VecDeque`
/// beats a heap: we also need positional queries (queue position is
/// part of the monitoring API, §5) and mid-queue removal (kill,
/// migrate, re-prioritise).
#[derive(Clone, Debug, Default)]
pub struct PriorityQueue {
    entries: VecDeque<QueueEntry>,
}

impl PriorityQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues behind all entries with priority `>=` the new one.
    pub fn push(&mut self, condor: CondorId, priority: Priority) {
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, QueueEntry { condor, priority });
    }

    /// Removes and returns the head (highest priority, oldest).
    pub fn pop(&mut self) -> Option<QueueEntry> {
        self.entries.pop_front()
    }

    /// Peeks at the head without removing it.
    pub fn peek(&self) -> Option<&QueueEntry> {
        self.entries.front()
    }

    /// Removes an arbitrary entry; true if it was present.
    pub fn remove(&mut self, condor: CondorId) -> bool {
        match self.entries.iter().position(|e| e.condor == condor) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Changes an entry's priority, preserving FIFO fairness at the
    /// new level (the task re-queues behind equals).
    pub fn reprioritize(&mut self, condor: CondorId, new: Priority) -> bool {
        if self.remove(condor) {
            self.push(condor, new);
            true
        } else {
            false
        }
    }

    /// Zero-based position of an entry (0 = next to run).
    pub fn position(&self, condor: CondorId) -> Option<usize> {
        self.entries.iter().position(|e| e.condor == condor)
    }

    /// Entries with priority strictly greater than `p`, in queue
    /// order — the set the queue-time estimator sums over (§6.2).
    pub fn above_priority(&self, p: Priority) -> Vec<QueueEntry> {
        self.entries
            .iter()
            .filter(|e| e.priority.beats(p))
            .copied()
            .collect()
    }

    /// Snapshot of the whole queue in order.
    pub fn snapshot(&self) -> Vec<QueueEntry> {
        self.entries.iter().copied().collect()
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn c(n: u64) -> CondorId {
        CondorId::new(n)
    }

    #[test]
    fn fifo_within_priority() {
        let mut q = PriorityQueue::new();
        q.push(c(1), Priority::NORMAL);
        q.push(c(2), Priority::NORMAL);
        q.push(c(3), Priority::NORMAL);
        assert_eq!(q.pop().unwrap().condor, c(1));
        assert_eq!(q.pop().unwrap().condor, c(2));
        assert_eq!(q.pop().unwrap().condor, c(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn higher_priority_jumps_queue() {
        let mut q = PriorityQueue::new();
        q.push(c(1), Priority::NORMAL);
        q.push(c(2), Priority::HIGH);
        q.push(c(3), Priority::LOW);
        q.push(c(4), Priority::HIGH);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.condor).collect();
        assert_eq!(order, vec![c(2), c(4), c(1), c(3)]);
    }

    #[test]
    fn position_reflects_order() {
        let mut q = PriorityQueue::new();
        q.push(c(1), Priority::NORMAL);
        q.push(c(2), Priority::HIGH);
        assert_eq!(q.position(c(2)), Some(0));
        assert_eq!(q.position(c(1)), Some(1));
        assert_eq!(q.position(c(9)), None);
    }

    #[test]
    fn remove_and_reprioritize() {
        let mut q = PriorityQueue::new();
        q.push(c(1), Priority::NORMAL);
        q.push(c(2), Priority::NORMAL);
        assert!(q.remove(c(1)));
        assert!(!q.remove(c(1)));
        assert_eq!(q.len(), 1);
        q.push(c(3), Priority::NORMAL);
        assert!(q.reprioritize(c(3), Priority::HIGH));
        assert_eq!(q.position(c(3)), Some(0));
        assert!(!q.reprioritize(c(99), Priority::HIGH));
    }

    #[test]
    fn above_priority_filters() {
        let mut q = PriorityQueue::new();
        q.push(c(1), Priority::new(5));
        q.push(c(2), Priority::new(0));
        q.push(c(3), Priority::new(-2));
        let above = q.above_priority(Priority::new(0));
        assert_eq!(above.len(), 1);
        assert_eq!(above[0].condor, c(1));
        assert_eq!(q.above_priority(Priority::new(-10)).len(), 3);
        assert!(q.above_priority(Priority::new(10)).is_empty());
    }

    #[test]
    fn snapshot_is_ordered() {
        let mut q = PriorityQueue::new();
        q.push(c(1), Priority::LOW);
        q.push(c(2), Priority::HIGH);
        let snap = q.snapshot();
        assert_eq!(snap[0].condor, c(2));
        assert_eq!(snap[1].condor, c(1));
        assert!(!q.is_empty());
    }

    proptest! {
        /// Pop order is always (priority desc, insertion order asc).
        #[test]
        fn pop_order_invariant(prios in prop::collection::vec(-5i32..5, 1..40)) {
            let mut q = PriorityQueue::new();
            for (i, p) in prios.iter().enumerate() {
                q.push(CondorId::new(i as u64), Priority::new(*p));
            }
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push(e);
            }
            prop_assert_eq!(popped.len(), prios.len());
            for w in popped.windows(2) {
                prop_assert!(
                    w[0].priority > w[1].priority
                        || (w[0].priority == w[1].priority
                            && w[0].condor < w[1].condor),
                    "order violated: {:?} then {:?}", w[0], w[1]
                );
            }
        }
    }
}
