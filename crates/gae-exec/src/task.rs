//! Per-task execution state inside a site.

use gae_types::{CondorId, NodeId, Priority, SimDuration, SimTime, TaskSpec, TaskStatus};

/// A checkpoint produced when a checkpointable task is removed for
/// migration: the accrued work travels to the new site.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Checkpoint {
    /// Work already completed (reference-CPU seconds).
    pub accrued: SimDuration,
}

/// The execution service's record of one task.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// The site-local (Condor) id.
    pub condor: CondorId,
    /// The task specification.
    pub spec: TaskSpec,
    /// Current lifecycle state.
    pub status: TaskStatus,
    /// When the task entered the site queue.
    pub submitted_at: SimTime,
    /// When it first started running, if ever.
    pub started_at: Option<SimTime>,
    /// When it reached a terminal state, if it has.
    pub finished_at: Option<SimTime>,
    /// Node currently (or last) hosting it.
    pub node: Option<NodeId>,
    /// Wall-clock work accrued up to `accrued_as_of` (Condor's
    /// "wall-clock time accumulated while running").
    pub accrued: SimDuration,
    /// Instant `accrued` was last brought up to date.
    pub accrued_as_of: SimTime,
    /// Remaining work demand (ground truth; spec demand minus any
    /// checkpoint carried in).
    pub demand: SimDuration,
    /// Work carried in via a checkpoint from a previous site (zero
    /// for fresh submissions). Like Condor flocking, the accumulated
    /// wall-clock of the previous incarnation travels with the job.
    pub carried: SimDuration,
    /// Current priority (may differ from `spec.priority` after a
    /// steering re-prioritisation).
    pub priority: Priority,
    /// Bytes of input staged in so far (grows with progress).
    pub input_io: u64,
    /// Bytes of output written so far (grows with progress).
    pub output_io: u64,
}

impl TaskRecord {
    /// Creates a queued record. `demand` falls back to the requested
    /// CPU-hours if the spec carries no ground truth (live mode).
    pub fn new(
        condor: CondorId,
        spec: TaskSpec,
        now: SimTime,
        carried: Option<Checkpoint>,
    ) -> Self {
        let full_demand = spec
            .true_cpu_demand
            .unwrap_or_else(|| SimDuration::from_secs_f64(spec.requested_cpu_hours * 3600.0));
        let accrued = carried.map(|c| c.accrued).unwrap_or(SimDuration::ZERO);
        let demand = full_demand.saturating_sub(accrued);
        let priority = spec.priority;
        TaskRecord {
            condor,
            spec,
            status: TaskStatus::Queued,
            submitted_at: now,
            started_at: None,
            finished_at: None,
            node: None,
            accrued: SimDuration::ZERO,
            accrued_as_of: now,
            demand,
            carried: accrued,
            priority,
            input_io: 0,
            output_io: 0,
        }
    }

    /// Total work the task must accrue *at this site* to finish.
    pub fn site_demand(&self) -> SimDuration {
        self.demand
    }

    /// Work still missing as of the record's last update.
    pub fn remaining(&self) -> SimDuration {
        self.demand.saturating_sub(self.accrued)
    }

    /// Total work the task needs across all incarnations.
    pub fn full_demand(&self) -> SimDuration {
        self.carried + self.demand
    }

    /// Total wall-clock accumulated across incarnations (Condor's
    /// cumulative wall-clock counter).
    pub fn total_accrued(&self) -> SimDuration {
        self.carried + self.accrued
    }

    /// Fraction of the *full* demand completed, in `[0, 1]` —
    /// carried checkpoint work counts.
    pub fn progress(&self) -> f64 {
        let full = self.full_demand();
        if full == SimDuration::ZERO {
            1.0
        } else {
            (self.total_accrued().as_secs_f64() / full.as_secs_f64()).min(1.0)
        }
    }

    /// Elapsed wall time since first start (includes queue/suspend
    /// gaps), the "elapsed time" of the monitoring API.
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        match self.started_at {
            Some(s) => now.saturating_since(s),
            None => SimDuration::ZERO,
        }
    }

    /// Updates the I/O counters to match current progress: input is
    /// staged linearly over the first half of the run, output written
    /// linearly over the whole run (a simple but monotone model).
    pub fn update_io(&mut self) {
        let p = self.progress();
        let total_in = self.spec.input_bytes();
        let total_out: u64 = self.spec.output_files.iter().map(|f| f.size_bytes).sum();
        self.input_io = ((p * 2.0).min(1.0) * total_in as f64) as u64;
        self.output_io = (p * total_out as f64) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::{FileRef, TaskId};

    fn spec(demand_s: u64) -> TaskSpec {
        TaskSpec::new(TaskId::new(1), "t", "prime")
            .with_cpu_demand(SimDuration::from_secs(demand_s))
    }

    #[test]
    fn fresh_record_defaults() {
        let r = TaskRecord::new(CondorId::new(1), spec(100), SimTime::from_secs(5), None);
        assert_eq!(r.status, TaskStatus::Queued);
        assert_eq!(r.remaining(), SimDuration::from_secs(100));
        assert_eq!(r.progress(), 0.0);
        assert_eq!(r.elapsed(SimTime::from_secs(10)), SimDuration::ZERO);
        assert_eq!(r.submitted_at, SimTime::from_secs(5));
    }

    #[test]
    fn checkpoint_reduces_demand() {
        let ck = Checkpoint {
            accrued: SimDuration::from_secs(40),
        };
        let r = TaskRecord::new(CondorId::new(1), spec(100), SimTime::ZERO, Some(ck));
        assert_eq!(r.site_demand(), SimDuration::from_secs(60));
        assert_eq!(r.accrued, SimDuration::ZERO);
    }

    #[test]
    fn demand_falls_back_to_requested_hours() {
        let mut s = spec(0);
        s.true_cpu_demand = None;
        s.requested_cpu_hours = 0.5;
        let r = TaskRecord::new(CondorId::new(1), s, SimTime::ZERO, None);
        assert_eq!(r.site_demand(), SimDuration::from_secs(1800));
    }

    #[test]
    fn progress_and_remaining_track_accrual() {
        let mut r = TaskRecord::new(CondorId::new(1), spec(100), SimTime::ZERO, None);
        r.accrued = SimDuration::from_secs(25);
        assert_eq!(r.progress(), 0.25);
        assert_eq!(r.remaining(), SimDuration::from_secs(75));
        r.accrued = SimDuration::from_secs(200); // over-accrual clamps
        assert_eq!(r.progress(), 1.0);
        assert_eq!(r.remaining(), SimDuration::ZERO);
    }

    #[test]
    fn zero_demand_is_complete() {
        let r = TaskRecord::new(
            CondorId::new(1),
            spec(0).with_cpu_demand(SimDuration::ZERO),
            SimTime::ZERO,
            None,
        );
        assert_eq!(r.progress(), 1.0);
    }

    #[test]
    fn io_counters_follow_progress() {
        let mut s = spec(100);
        s.input_files = vec![FileRef::new("in", 1000)];
        s.output_files = vec![FileRef::new("out", 500)];
        let mut r = TaskRecord::new(CondorId::new(1), s, SimTime::ZERO, None);
        r.accrued = SimDuration::from_secs(25);
        r.update_io();
        assert_eq!(r.input_io, 500); // half the input staged at 25%
        assert_eq!(r.output_io, 125);
        r.accrued = SimDuration::from_secs(100);
        r.update_io();
        assert_eq!(r.input_io, 1000);
        assert_eq!(r.output_io, 500);
    }

    #[test]
    fn elapsed_counts_from_first_start() {
        let mut r = TaskRecord::new(CondorId::new(1), spec(100), SimTime::ZERO, None);
        r.started_at = Some(SimTime::from_secs(10));
        assert_eq!(
            r.elapsed(SimTime::from_secs(25)),
            SimDuration::from_secs(15)
        );
        // Clock before start: saturates.
        assert_eq!(r.elapsed(SimTime::from_secs(5)), SimDuration::ZERO);
    }
}
