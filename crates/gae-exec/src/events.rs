//! Events emitted by the execution service.
//!
//! The Job Information Collector "monitors the job execution and
//! whenever the job is completed or terminated due to an error, it
//! sends an update request to the DBManager" (§5.2); it learns about
//! those moments by draining this event stream.

use gae_types::{CondorId, NodeId, SimTime, TaskId, TaskStatus};

/// A state change inside an execution site.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecEvent {
    /// Site-local emission order, starting at 0 and never reused.
    /// Together with the site id this totally orders events across the
    /// grid, which is what lets a sharded driver merge per-site event
    /// buffers back into the exact sequential drain order.
    pub seq: u64,
    /// When it happened (virtual time).
    pub at: SimTime,
    /// Site-local id of the task.
    pub condor: CondorId,
    /// Global task id.
    pub task: TaskId,
    /// New lifecycle state.
    pub status: TaskStatus,
    /// Hosting node, when applicable.
    pub node: Option<NodeId>,
    /// Human-readable detail ("node node-3 failed", "killed by user").
    pub detail: String,
}

impl ExecEvent {
    /// True for completion/failure/kill — the transitions DBManager
    /// must persist.
    pub fn is_terminal(&self) -> bool {
        self.status.is_terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_detection() {
        let mk = |status| ExecEvent {
            seq: 0,
            at: SimTime::ZERO,
            condor: CondorId::new(1),
            task: TaskId::new(1),
            status,
            node: None,
            detail: String::new(),
        };
        assert!(mk(TaskStatus::Completed).is_terminal());
        assert!(mk(TaskStatus::Failed).is_terminal());
        assert!(mk(TaskStatus::Killed).is_terminal());
        assert!(!mk(TaskStatus::Running).is_terminal());
        assert!(!mk(TaskStatus::Queued).is_terminal());
    }
}
