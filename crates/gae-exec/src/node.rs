//! Worker nodes: slots plus an external CPU load trace.

use gae_sim::LoadTrace;
use gae_types::{NodeId, SimDuration, SimTime};

/// One worker node of an execution site.
#[derive(Clone, Debug)]
pub struct Node {
    /// Node id, unique within the site.
    pub id: NodeId,
    /// Relative CPU speed (1.0 = the reference CPU).
    pub speed_factor: f64,
    /// Concurrent task slots.
    pub slots: u32,
    /// External (non-GAE) CPU load over time.
    pub trace: LoadTrace,
    /// Slots currently occupied.
    busy: u32,
    /// True while the node is up.
    alive: bool,
}

impl Node {
    /// Creates a free node with the given capacity and load trace.
    pub fn new(id: NodeId, speed_factor: f64, slots: u32, trace: LoadTrace) -> Self {
        assert!(speed_factor > 0.0, "speed factor must be positive");
        assert!(slots > 0, "a node needs at least one slot");
        Node {
            id,
            speed_factor,
            slots,
            trace,
            busy: 0,
            alive: true,
        }
    }

    /// A free 1-slot reference-speed node (tests, examples).
    pub fn reference(id: NodeId) -> Self {
        Self::new(id, 1.0, 1, LoadTrace::free())
    }

    /// True if the node is up and has a free slot.
    pub fn has_free_slot(&self) -> bool {
        self.alive && self.busy < self.slots
    }

    /// Occupies one slot.
    pub fn occupy(&mut self) {
        debug_assert!(self.has_free_slot(), "occupy called with no free slot");
        self.busy += 1;
    }

    /// Releases one slot.
    pub fn release(&mut self) {
        debug_assert!(self.busy > 0, "release called with no busy slot");
        self.busy -= 1;
    }

    /// Slots currently in use.
    pub fn busy_slots(&self) -> u32 {
        self.busy
    }

    /// True while the node is up.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Takes the node down (its tasks fail) — failure injection.
    pub fn fail(&mut self) {
        self.alive = false;
        self.busy = 0;
    }

    /// Brings the node back up with empty slots.
    pub fn recover(&mut self) {
        self.alive = true;
        self.busy = 0;
    }

    /// Instantaneous external load.
    pub fn load_at(&self, t: SimTime) -> f64 {
        self.trace.load_at(t)
    }

    /// Effective execution rate for a task running here at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.trace.rate_at(t, self.speed_factor)
    }

    /// Instant at which `work` finishes if started/resumed at `from`.
    pub fn finish_time(&self, from: SimTime, work: SimDuration) -> SimTime {
        self.trace.finish_time(from, work, self.speed_factor)
    }

    /// CPU work accrued on this node over `[from, to]`.
    pub fn accrued_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        self.trace.accrued_between(from, to, self.speed_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_accounting() {
        let mut n = Node::new(NodeId::new(1), 1.0, 2, LoadTrace::free());
        assert!(n.has_free_slot());
        n.occupy();
        n.occupy();
        assert!(!n.has_free_slot());
        assert_eq!(n.busy_slots(), 2);
        n.release();
        assert!(n.has_free_slot());
    }

    #[test]
    fn failure_clears_slots() {
        let mut n = Node::reference(NodeId::new(1));
        n.occupy();
        n.fail();
        assert!(!n.is_alive());
        assert!(!n.has_free_slot());
        assert_eq!(n.busy_slots(), 0);
        n.recover();
        assert!(n.has_free_slot());
    }

    #[test]
    fn accrual_delegates_to_trace() {
        let n = Node::new(NodeId::new(1), 2.0, 1, LoadTrace::constant(1.0));
        // speed 2, load 1 -> rate 1.0
        assert_eq!(n.rate_at(SimTime::ZERO), 1.0);
        assert_eq!(
            n.finish_time(SimTime::ZERO, SimDuration::from_secs(10)),
            SimTime::from_secs(10)
        );
        assert_eq!(
            n.accrued_between(SimTime::ZERO, SimTime::from_secs(4)),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        Node::new(NodeId::new(1), 1.0, 0, LoadTrace::free());
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn bad_speed_rejected() {
        Node::new(NodeId::new(1), 0.0, 1, LoadTrace::free());
    }
}
