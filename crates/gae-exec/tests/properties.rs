//! Property tests: the execution service's invariants hold under
//! arbitrary interleavings of submissions, time advancement, steering
//! commands, migrations and failures.

use gae_exec::{Checkpoint, ExecutionService, SiteConfig};
use gae_sim::LoadTrace;
use gae_types::{
    CondorId, Priority, SimDuration, SimTime, SiteDescription, SiteId, TaskId, TaskSpec, TaskStatus,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Submit {
        demand_s: u64,
        priority: i32,
        checkpointable: bool,
    },
    Advance {
        secs: u64,
    },
    Suspend(usize),
    Resume(usize),
    Kill(usize),
    SetPriority(usize, i32),
    Migrate(usize),
    FailNode(u64),
    RecoverNode(u64),
    SetFairShare(bool),
    SetPreemptive(bool),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..2_000, -5i32..5, any::<bool>()).prop_map(|(demand_s, priority, checkpointable)| {
            Op::Submit {
                demand_s,
                priority,
                checkpointable,
            }
        }),
        (0u64..500).prop_map(|secs| Op::Advance { secs }),
        (0usize..32).prop_map(Op::Suspend),
        (0usize..32).prop_map(Op::Resume),
        (0usize..32).prop_map(Op::Kill),
        ((0usize..32), -5i32..5).prop_map(|(i, p)| Op::SetPriority(i, p)),
        (0usize..32).prop_map(Op::Migrate),
        (1u64..4).prop_map(Op::FailNode),
        (1u64..4).prop_map(Op::RecoverNode),
        any::<bool>().prop_map(Op::SetFairShare),
        any::<bool>().prop_map(Op::SetPreemptive),
    ]
}

fn check_invariants(svc: &ExecutionService, submitted: &[CondorId]) {
    // Running tasks never exceed total slots.
    let slots = svc.site().total_slots() as usize;
    assert!(
        svc.running_count() <= slots,
        "{} running > {} slots",
        svc.running_count(),
        slots
    );
    // Queue holds only queued records; queue positions are dense.
    for (pos, entry) in svc.queue_snapshot().iter().enumerate() {
        let rec = svc.record(entry.condor).expect("queued record exists");
        assert_eq!(
            rec.status,
            TaskStatus::Queued,
            "queue holds non-queued {rec:?}"
        );
        assert_eq!(svc.queue_position(entry.condor), Some(pos));
    }
    for &condor in submitted {
        let rec = svc.record(condor).expect("every submission has a record");
        // Accrual never exceeds the demand at this site.
        assert!(
            rec.accrued <= rec.site_demand() + SimDuration::from_millis(1),
            "over-accrual: {rec:?}"
        );
        // Progress is a valid fraction.
        let p = rec.progress();
        assert!((0.0..=1.0).contains(&p), "progress {p}");
        // Terminal records have a finish time; running ones a node.
        match rec.status {
            TaskStatus::Completed | TaskStatus::Failed | TaskStatus::Killed => {
                assert!(rec.finished_at.is_some(), "{rec:?}");
            }
            TaskStatus::Running => {
                assert!(rec.node.is_some(), "{rec:?}");
                assert!(rec.started_at.is_some(), "{rec:?}");
            }
            _ => {}
        }
        // Completed means all work done.
        if rec.status == TaskStatus::Completed {
            assert_eq!(
                rec.accrued,
                rec.site_demand(),
                "incomplete completion {rec:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in prop::collection::vec(arb_op(), 1..80)) {
        let cfg = SiteConfig {
            description: SiteDescription::new(SiteId::new(1), "prop", 3, 1),
            node_traces: vec![
                LoadTrace::free(),
                LoadTrace::constant(1.0),
                LoadTrace::constant(3.0),
            ],
        };
        let mut svc = ExecutionService::new(cfg);
        let mut partner = ExecutionService::new(SiteConfig::free(
            SiteDescription::new(SiteId::new(2), "partner", 2, 1),
        ));
        let mut submitted: Vec<CondorId> = Vec::new();
        let mut migrated: Vec<CondorId> = Vec::new();
        let mut next_task = 1u64;

        for op in ops {
            match op {
                Op::Submit { demand_s, priority, checkpointable } => {
                    let spec = TaskSpec::new(TaskId::new(next_task), "t", "x")
                        .with_cpu_demand(SimDuration::from_secs(demand_s))
                        .with_priority(Priority::new(priority))
                        .with_checkpointable(checkpointable);
                    next_task += 1;
                    if let Ok(c) = svc.submit(spec, None) {
                        submitted.push(c);
                    }
                }
                Op::Advance { secs } => {
                    let target = svc.now() + SimDuration::from_secs(secs);
                    svc.advance_to(target);
                    partner.advance_to(partner.now().max(target));
                }
                Op::Suspend(i) => {
                    if let Some(&c) = submitted.get(i) {
                        let _ = svc.suspend(c);
                    }
                }
                Op::Resume(i) => {
                    if let Some(&c) = submitted.get(i) {
                        let _ = svc.resume(c);
                    }
                }
                Op::Kill(i) => {
                    if let Some(&c) = submitted.get(i) {
                        let _ = svc.kill(c);
                    }
                }
                Op::SetPriority(i, p) => {
                    if let Some(&c) = submitted.get(i) {
                        let _ = svc.set_priority(c, Priority::new(p));
                    }
                }
                Op::Migrate(i) => {
                    if let Some(&c) = submitted.get(i) {
                        if let Ok((spec, ck)) = svc.remove_for_migration(c) {
                            // Conservation: the checkpoint never
                            // carries more than the full demand.
                            if let (Some(ck), Some(full)) = (ck, spec.true_cpu_demand) {
                                prop_assert!(ck.accrued <= full + SimDuration::from_millis(1));
                            }
                            if let Ok(c2) = partner.submit(
                                spec,
                                ck.map(|c| Checkpoint { accrued: c.accrued }),
                            ) {
                                migrated.push(c2);
                            }
                        }
                    }
                }
                Op::FailNode(n) => {
                    let _ = svc.fail_node(gae_types::NodeId::new(n));
                }
                Op::RecoverNode(n) => {
                    let _ = svc.recover_node(gae_types::NodeId::new(n));
                }
                Op::SetFairShare(on) => svc.set_fair_share(on),
                Op::SetPreemptive(on) => svc.set_preemptive(on),
            }
            check_invariants(&svc, &submitted);
            check_invariants(&partner, &migrated);
        }

        // Drain to quiescence: every live task eventually settles or
        // keeps running under suspended/queued-on-dead-nodes states.
        let horizon = svc.now() + SimDuration::from_secs(1_000_000);
        svc.advance_to(horizon);
        partner.advance_to(partner.now() + SimDuration::from_secs(1_000_000));
        check_invariants(&svc, &submitted);
        check_invariants(&partner, &migrated);
        // After an enormous advance, no task is still Running unless
        // its node is down... which cannot happen: failing a node
        // fails its tasks. So: no Running tasks remain anywhere.
        for &c in submitted.iter() {
            let rec = svc.record(c).expect("record");
            prop_assert_ne!(rec.status, TaskStatus::Running, "{:?}", rec);
        }
    }

    /// Events are emitted in non-decreasing time order and every
    /// terminal event matches the record's final state.
    #[test]
    fn event_stream_is_ordered_and_consistent(
        demands in prop::collection::vec(1u64..500, 1..20),
        advance in 1u64..100_000,
    ) {
        let mut svc = ExecutionService::new(SiteConfig::free(
            SiteDescription::new(SiteId::new(1), "s", 2, 1),
        ));
        for (i, d) in demands.iter().enumerate() {
            svc.submit(
                TaskSpec::new(TaskId::new(i as u64 + 1), "t", "x")
                    .with_cpu_demand(SimDuration::from_secs(*d)),
                None,
            ).expect("alive site accepts work");
        }
        svc.advance_to(SimTime::from_secs(advance));
        let events = svc.drain_events();
        for w in events.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "events out of order");
        }
        for e in events.iter().filter(|e| e.is_terminal()) {
            let rec = svc.record(e.condor).expect("record");
            prop_assert_eq!(rec.status, e.status);
            prop_assert_eq!(rec.finished_at, Some(e.at));
        }
    }

    /// Work conservation on a free site: total accrued CPU time never
    /// exceeds slots × elapsed time.
    #[test]
    fn work_conservation(
        demands in prop::collection::vec(1u64..2_000, 1..24),
        advance in 1u64..5_000,
    ) {
        let mut svc = ExecutionService::new(SiteConfig::free(
            SiteDescription::new(SiteId::new(1), "s", 2, 2),
        ));
        for (i, d) in demands.iter().enumerate() {
            svc.submit(
                TaskSpec::new(TaskId::new(i as u64 + 1), "t", "x")
                    .with_cpu_demand(SimDuration::from_secs(*d)),
                None,
            ).expect("accepts");
        }
        svc.advance_to(SimTime::from_secs(advance));
        let total_accrued: f64 = svc.records().map(|r| r.accrued.as_secs_f64()).sum();
        let capacity = 4.0 * advance as f64;
        prop_assert!(
            total_accrued <= capacity + 1e-3,
            "accrued {total_accrued} exceeds capacity {capacity}"
        );
    }
}
