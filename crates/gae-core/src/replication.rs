//! The service stack as a replicated state machine.
//!
//! Satellite of DESIGN.md §13: the ad-hoc replay paths — steering
//! plans/tasks/notifications, jobmon info, quota charges, xfer
//! journal ops, history-store ops — are one [`StateMachine`] here. Single-node
//! recovery ([`ServiceStack::recover_from_disk`]) and replication
//! followers drive the exact same code, which is why a promoted
//! follower's rebuilt schedule is byte-identical to what the dead
//! leader would have recovered to.
//!
//! [`ObsSink`] is the instrumentation shim
//! [`ServiceStack::attach_replication`] wraps around the real sink:
//! `repl.*` spans per commit and a commit-spacing histogram under
//! entity `repl`, measured on the grid's virtual clock.

use crate::grid::ServiceStack;
use crate::persist;
use gae_obs::ObsHub;
use gae_repl::{Mutation, ReplStats, ReplicationSink, StateMachine};
use gae_types::{GaeError, GaeResult, SimTime};
use gae_wire::Value;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

impl StateMachine for ServiceStack {
    /// Applies one committed journal record — the replay language the
    /// WAL has always spoken, shared verbatim with crash recovery.
    fn apply_mutation(&self, mutation: &Mutation) -> GaeResult<()> {
        let body = &mutation.body;
        match mutation.kind.as_str() {
            "jobmon" => {
                let info = crate::jobmon::JobMonitoringInfo::from_value(body)?;
                self.jobmon.replay_info(info);
            }
            "plan" => self
                .steering
                .replay_plan(persist::plan_from_record(body)?)?,
            "task" => {
                let (job, task) = persist::task_from_record(body)?;
                self.steering.replay_task(job, task);
            }
            "notified" => {
                let job = gae_types::JobId::new(body.member("job")?.as_u64()?);
                self.steering.replay_notified(job);
            }
            "charge" => self.quota.apply_charge(persist::charge_from_record(body)?),
            "xfer" => {
                let op = persist::xfer_from_record(body)?;
                self.grid.with_xfer(|x| x.apply_journal(&op));
            }
            "hist" => self.hist.replay(persist::hist_from_record(body)?),
            other => {
                return Err(GaeError::Parse(format!(
                    "unknown wal record kind {other:?}"
                )))
            }
        }
        Ok(())
    }

    /// A deterministic digest of the persisted state: the CRC of the
    /// canonical snapshot encoding.
    fn query_state(&self) -> String {
        format!(
            "{:08x}",
            gae_durable::crc32::crc32(&persist::encode_snapshot(&self.snapshot_state()))
        )
    }

    fn snapshot(&self) -> Vec<u8> {
        persist::encode_snapshot(&self.snapshot_state())
    }

    /// Restores every persisted service from a snapshot payload (no
    /// publication, no logging).
    fn restore(&self, snapshot: &[u8]) -> GaeResult<()> {
        let snap = persist::decode_snapshot(snapshot)?;
        self.grid
            .monitor()
            .restore_events(snap.events, snap.evicted);
        self.grid
            .monitor()
            .restore_metrics(snap.metrics, snap.metrics_published);
        for info in snap.jobmon {
            self.jobmon.restore_info(info);
        }
        for job in snap.steering {
            self.steering.restore_job(job);
        }
        self.quota.restore(snap.balances, snap.ledger);
        self.grid.with_xfer(|x| x.restore(&snap.xfer));
        self.hist.restore(&snap.hist)?;
        Ok(())
    }
}

/// Wraps a [`ReplicationSink`] in observability: each commit roots a
/// `repl.commit` trace (deterministic id: the commit index), records
/// the applied-record count as a span, and feeds the commit-to-commit
/// spacing — the window of schedule a failover could lose — into the
/// `repl:commit` histogram.
pub(crate) struct ObsSink {
    inner: Arc<dyn ReplicationSink>,
    hub: Arc<ObsHub>,
    /// Records appended since the last commit (atomic: appends happen
    /// under service locks and must not take another).
    pending: AtomicU64,
    last_commit_at: Mutex<SimTime>,
}

impl ObsSink {
    pub(crate) fn new(inner: Arc<dyn ReplicationSink>, hub: Arc<ObsHub>) -> Self {
        ObsSink {
            inner,
            hub,
            pending: AtomicU64::new(0),
            last_commit_at: Mutex::new(SimTime::ZERO),
        }
    }
}

impl ReplicationSink for ObsSink {
    fn on_append(&self, kind: &str, body: &Value) {
        // No clock read here: appends can run under the xfer lock,
        // which must not re-enter the grid clock (see the observer
        // wiring in grid.rs).
        self.pending.fetch_add(1, Ordering::Relaxed);
        self.inner.on_append(kind, body);
    }

    fn on_commit(&self, commit_index: u64) {
        self.inner.on_commit(commit_index);
        let now = self.hub.now();
        let spacing = {
            let mut last = self.last_commit_at.lock();
            let spacing = now.saturating_since(*last);
            *last = now;
            spacing
        };
        self.hub.record_repl("commit", spacing);
        let streamed = self.pending.swap(0, Ordering::Relaxed);
        let ctx = self.hub.repl_trace(commit_index, "repl.commit", now);
        self.hub
            .span_at(ctx, &format!("repl.stream#{streamed}"), now);
        if self.inner.stats().commit_index >= commit_index {
            self.hub.span_at(ctx, "repl.quorum", now);
        } else {
            self.hub.span_at(ctx, "repl.stall", now);
        }
    }

    fn on_rotate(&self, commit_index: u64, record_seq: u64, snapshot: &[u8]) {
        self.inner.on_rotate(commit_index, record_seq, snapshot);
        let now = self.hub.now();
        let ctx = self.hub.repl_trace(commit_index, "repl.commit", now);
        self.hub.span_at(ctx, "repl.rotate", now);
    }

    fn stats(&self) -> ReplStats {
        self.inner.stats()
    }
}
