//! The observability RPC facades (DESIGN.md §10).
//!
//! Two thin services over the deployment's [`ObsHub`]:
//!
//! * `trace` — per-job causal trees and lifecycle timelines, keyed by
//!   CondorId: `trace.get`, `trace.timeline`, `trace.render`;
//! * `stats` — latency histogram snapshots: `stats.histogram`,
//!   `stats.methods`, `stats.render`.

use gae_obs::{HistogramSnapshot, ObsHub, TimelineEvent};
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{GaeError, GaeResult};
use gae_wire::Value;
use std::sync::Arc;

/// The `trace` service: one job's causal tree, over the wire.
pub struct TraceRpc {
    hub: Arc<ObsHub>,
}

impl TraceRpc {
    /// Wraps the hub for RPC registration.
    pub fn new(hub: Arc<ObsHub>) -> Self {
        TraceRpc { hub }
    }
}

fn condor_param(params: &[Value]) -> GaeResult<u64> {
    params
        .first()
        .ok_or_else(|| GaeError::Parse("missing CondorId parameter".into()))?
        .as_u64()
}

fn micros(at: gae_types::SimTime) -> Value {
    Value::Int64(at.as_micros() as i64)
}

impl Service for TraceRpc {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            // The causal tree of one CondorId as a struct: the trace
            // id (hex, as on the wire header) plus every span in
            // span-id order.
            "get" => {
                let condor = condor_param(params)?;
                let trace = self
                    .hub
                    .traces()
                    .trace_for_condor(condor)
                    .ok_or_else(|| GaeError::NotFound(format!("trace for condor {condor}")))?;
                let spans = self
                    .hub
                    .traces()
                    .spans(trace)
                    .ok_or_else(|| GaeError::NotFound(format!("spans of trace {trace}")))?;
                Ok(Value::struct_of([
                    ("trace", Value::from(format!("{trace}"))),
                    (
                        "spans",
                        Value::Array(
                            spans
                                .iter()
                                .map(|s| {
                                    Value::struct_of([
                                        ("span", Value::Int64(s.span.raw() as i64)),
                                        (
                                            "parent",
                                            s.parent
                                                .map(|p| Value::Int64(p.raw() as i64))
                                                .unwrap_or(Value::Nil),
                                        ),
                                        ("name", Value::from(s.name.as_str())),
                                        ("start_us", micros(s.start)),
                                        ("end_us", micros(s.end)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]))
            }
            // The lifecycle timeline of one CondorId: recorded events
            // mapped to their µs instants, unrecorded events absent.
            "timeline" => {
                let condor = condor_param(params)?;
                let tl = self
                    .hub
                    .timeline(condor)
                    .ok_or_else(|| GaeError::NotFound(format!("timeline for condor {condor}")))?;
                Ok(Value::struct_of(TimelineEvent::ALL.iter().filter_map(
                    |ev| {
                        tl.instant(*ev)
                            .map(|at| (format!("{}_us", ev.name()), micros(at)))
                    },
                )))
            }
            // The human-readable dump bench bins print.
            "render" => {
                let condor = condor_param(params)?;
                self.hub
                    .render_condor(condor)
                    .map(Value::from)
                    .ok_or_else(|| GaeError::NotFound(format!("trace for condor {condor}")))
            }
            other => Err(gae_rpc::service::unknown_method("trace", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "get",
                help: "causal tree of a CondorId: trace id + spans",
            },
            MethodInfo {
                name: "timeline",
                help: "lifecycle instants of a CondorId (µs)",
            },
            MethodInfo {
                name: "render",
                help: "human-readable trace + timeline dump",
            },
        ]
    }
}

/// The `stats` service: latency distributions, over the wire.
pub struct StatsRpc {
    hub: Arc<ObsHub>,
}

impl StatsRpc {
    /// Wraps the hub for RPC registration.
    pub fn new(hub: Arc<ObsHub>) -> Self {
        StatsRpc { hub }
    }

    /// RPC-method histograms answer plain names; gate-disposition
    /// histograms answer under a `gate:` prefix.
    fn lookup(&self, name: &str) -> Option<HistogramSnapshot> {
        if let Some(disposition) = name.strip_prefix("gate:") {
            return self
                .hub
                .gate_snapshot()
                .into_iter()
                .find(|(k, _)| k == disposition)
                .map(|(_, s)| s);
        }
        self.hub
            .rpc_snapshot()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, s)| s)
    }
}

fn snapshot_value(s: HistogramSnapshot) -> Value {
    Value::struct_of([
        ("count", Value::Int64(s.count as i64)),
        ("p50_us", Value::Int64(s.p50_us as i64)),
        ("p95_us", Value::Int64(s.p95_us as i64)),
        ("p99_us", Value::Int64(s.p99_us as i64)),
        ("max_us", Value::Int64(s.max_us as i64)),
        ("mean_us", Value::Double(s.mean_us())),
    ])
}

impl Service for StatsRpc {
    fn name(&self) -> &'static str {
        "stats"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            "histogram" => {
                let name = params
                    .first()
                    .ok_or_else(|| GaeError::Parse("missing histogram name".into()))?
                    .as_str()?;
                self.lookup(name)
                    .map(snapshot_value)
                    .ok_or_else(|| GaeError::NotFound(format!("histogram {name}")))
            }
            "methods" => Ok(Value::Array(
                self.hub
                    .rpc_snapshot()
                    .into_iter()
                    .map(|(k, _)| Value::from(k))
                    .chain(
                        self.hub
                            .gate_snapshot()
                            .into_iter()
                            .map(|(k, _)| Value::from(format!("gate:{k}"))),
                    )
                    .collect(),
            )),
            "render" => Ok(Value::from(self.hub.render_histograms())),
            other => Err(gae_rpc::service::unknown_method("stats", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "histogram",
                help: "latency snapshot of one method (or gate:<disposition>)",
            },
            MethodInfo {
                name: "methods",
                help: "every histogram name with samples",
            },
            MethodInfo {
                name: "render",
                help: "human-readable latency table",
            },
        ]
    }
}
