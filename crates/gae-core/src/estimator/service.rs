//! The deployable Estimator Service: per-site runtime estimators
//! (decentralised histories), the submission-time estimate database,
//! the transfer estimator, and the XML-RPC facade.

use crate::estimator::history::HistoryStore;
use crate::estimator::queue_time::{estimate_queue_time, EstimateDb};
use crate::estimator::runtime::{RuntimeEstimate, RuntimeEstimator};
use crate::estimator::transfer::TransferEstimator;
use crate::grid::Grid;
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_trace::{ParagonRecord, TaskMeta};
use gae_types::{CondorId, FileRef, GaeError, GaeResult, SimDuration, SiteId, TaskSpec};
use gae_wire::Value;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default capacity of each site's task history.
const HISTORY_CAPACITY: usize = 10_000;

/// The Estimator Service (§6), one instance per GAE deployment.
pub struct EstimatorService {
    grid: Arc<Grid>,
    runtime: RwLock<BTreeMap<SiteId, Arc<RuntimeEstimator>>>,
    estimate_db: BTreeMap<SiteId, Arc<EstimateDb>>,
    transfer: TransferEstimator,
    /// Memoised [`Self::estimate_runtime`] results. A runtime estimate
    /// is a pure function of the site's task history and the task's
    /// metadata tuple, so it stays valid until that site's history (or
    /// estimator) changes — the steering/flocking poll asks for the
    /// same `(site, meta)` estimate many times between changes.
    memo: RwLock<HashMap<(SiteId, TaskMeta), RuntimeEstimate>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    /// The columnar history funnel, when the stack wired one. With it
    /// attached, [`Self::estimate_meta`] scans the shared columnar
    /// store (predicate pushdown) instead of the per-site rings; the
    /// rings still absorb observations as the bounded fallback.
    hist: RwLock<Option<Arc<crate::hist::HistFunnel>>>,
}

impl EstimatorService {
    /// Creates empty per-site estimators over the grid's sites and a
    /// transfer estimator over its network model.
    pub fn new(grid: Arc<Grid>) -> Self {
        let mut runtime = BTreeMap::new();
        let mut estimate_db = BTreeMap::new();
        for site in grid.site_ids() {
            runtime.insert(
                site,
                Arc::new(RuntimeEstimator::new(HistoryStore::new(HISTORY_CAPACITY))),
            );
            estimate_db.insert(site, Arc::new(EstimateDb::new()));
        }
        let transfer = TransferEstimator::new(grid.network().clone(), 2005);
        transfer.attach_live_links(Arc::new(crate::grid::GridLinkView(grid.clone())));
        EstimatorService {
            grid,
            runtime: RwLock::new(runtime),
            estimate_db,
            transfer,
            memo: RwLock::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            hist: RwLock::new(None),
        }
    }

    /// Retargets runtime estimation onto the columnar history store.
    /// Clears the memo cache: cached values were computed against the
    /// rings.
    pub(crate) fn attach_history(&self, hist: Arc<crate::hist::HistFunnel>) {
        *self.hist.write() = Some(hist);
        self.memo.write().clear();
    }

    /// Replaces one site's runtime estimator (ablation studies).
    pub fn set_runtime_estimator(&self, site: SiteId, estimator: RuntimeEstimator) {
        self.runtime.write().insert(site, Arc::new(estimator));
        self.invalidate_site(site);
    }

    /// Drops every memoised estimate for `site`; called whenever the
    /// inputs an estimate depends on may have changed.
    fn invalidate_site(&self, site: SiteId) {
        self.memo.write().retain(|(s, _), _| *s != site);
    }

    /// `(hits, misses)` of the estimate memo cache since start-up.
    pub fn memo_stats(&self) -> (u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    fn runtime_estimator(&self, site: SiteId) -> GaeResult<Arc<RuntimeEstimator>> {
        self.runtime
            .read()
            .get(&site)
            .cloned()
            .ok_or_else(|| GaeError::NotFound(format!("runtime estimator at {site}")))
    }

    fn db(&self, site: SiteId) -> GaeResult<&Arc<EstimateDb>> {
        self.estimate_db
            .get(&site)
            .ok_or_else(|| GaeError::NotFound(format!("estimate db at {site}")))
    }

    /// Seeds a site's history from an accounting trace.
    pub fn seed_history(&self, site: SiteId, records: &[ParagonRecord]) -> GaeResult<usize> {
        let loaded = self.runtime_estimator(site)?.history().load_trace(records);
        if let Some(hist) = self.hist.read().clone() {
            // The columnar store takes every record — failures too,
            // flagged on the success column — with the same Paragon
            // field quirks `TaskMeta::from_record` applies (the trace
            // has no executable column; the account stands in).
            for r in records {
                hist.ingest(gae_hist::HistRecord {
                    task: 0,
                    site: site.raw(),
                    nodes: r.nodes as u64,
                    submit_us: r.submitted.as_micros(),
                    start_us: r.started.as_micros(),
                    finish_us: r.completed.as_micros(),
                    runtime_us: r.runtime().as_micros(),
                    success: r.success,
                    account: r.account.clone(),
                    login: r.login.clone(),
                    executable: r.account.clone(),
                    queue: r.queue.clone(),
                    partition: r.partition.clone(),
                    job_type: r.job_type.to_string(),
                });
            }
        }
        self.invalidate_site(site);
        Ok(loaded)
    }

    /// Records an observed completion into the site's history.
    pub fn observe_completion(&self, site: SiteId, meta: TaskMeta, runtime: SimDuration) {
        if let Ok(est) = self.runtime_estimator(site) {
            est.history().observe(meta, runtime);
            self.invalidate_site(site);
        }
    }

    /// §6.1: predicted runtime of `spec` at `site`.
    pub fn estimate_runtime(&self, site: SiteId, spec: &TaskSpec) -> GaeResult<RuntimeEstimate> {
        self.estimate_meta(site, &TaskMeta::from_spec(spec))
    }

    /// Memoised estimate for an already-extracted metadata tuple.
    fn estimate_meta(&self, site: SiteId, meta: &TaskMeta) -> GaeResult<RuntimeEstimate> {
        let key = (site, meta.clone());
        if let Some(cached) = self.memo.read().get(&key) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*cached);
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let estimator = self.runtime_estimator(site)?;
        let estimate = match self.hist.read().clone() {
            Some(hist) => estimator.estimate_columnar(hist.store(), site, meta)?,
            None => estimator.estimate(meta)?,
        };
        self.memo.write().insert(key, estimate);
        Ok(estimate)
    }

    /// Records the runtime "estimated at the time of task submission"
    /// (§6.2c) in the site's separate database.
    pub fn record_submission(&self, site: SiteId, condor: CondorId, estimate: SimDuration) {
        if let Ok(db) = self.db(site) {
            db.record(condor, estimate);
            // A new live task changes what subsequent estimates should
            // see at this site (conservative; keeps the cache honest
            // even if an estimator starts consulting live state).
            self.invalidate_site(site);
        }
    }

    /// The stored submission-time estimate, if any.
    pub fn submission_estimate(&self, site: SiteId, condor: CondorId) -> Option<SimDuration> {
        self.db(site).ok().and_then(|db| db.get(condor))
    }

    /// Evicts a finished task's submission-time estimate (§6.2 only
    /// consults live tasks, so entries for collected/killed tasks are
    /// a leak). Called from the steering collect path and from exec
    /// completion replay; a miss is fine — flocked tasks may have
    /// their estimate recorded under the destination site only.
    pub fn evict_submission(&self, site: SiteId, condor: CondorId) {
        if let Ok(db) = self.db(site) {
            if db.evict(condor).is_some() {
                self.invalidate_site(site);
            }
        }
    }

    /// Number of live submission-time estimates across every site
    /// (boundedness diagnostics for tests and monitoring).
    pub fn submission_estimate_count(&self) -> usize {
        self.estimate_db.values().map(|db| db.len()).sum()
    }

    /// §6.2: queue time of an already-submitted task, by Condor id.
    pub fn estimate_queue_time(&self, site: SiteId, condor: CondorId) -> GaeResult<SimDuration> {
        let exec = self.grid.exec(site)?;
        let exec = exec.lock();
        estimate_queue_time(&exec, self.db(site)?, condor)
    }

    /// Queue time a *new* task would face at `site` (used by the
    /// scheduler before submission): the sum of estimated-remaining
    /// runtimes of live tasks with priority above the spec's.
    pub fn estimate_queue_time_for_spec(
        &self,
        site: SiteId,
        spec: &TaskSpec,
    ) -> GaeResult<SimDuration> {
        let exec = self.grid.exec(site)?;
        let exec = exec.lock();
        let db = self.db(site)?;
        let mut total = SimDuration::ZERO;
        for (condor, _task, elapsed) in exec.tasks_above_priority(spec.priority.lowered(1)) {
            // `lowered(1)`: a new equal-priority task queues behind
            // existing ones (FIFO), so equals count too.
            if let Some(estimated) = db.get(condor) {
                total += estimated.saturating_sub(elapsed);
            }
        }
        Ok(total)
    }

    /// §6.3: staging time for a task's input set to `site`.
    pub fn estimate_transfer(&self, files: &[FileRef], to: SiteId) -> GaeResult<SimDuration> {
        self.transfer.estimate_inputs(files, to)
    }

    /// The transfer estimator itself.
    pub fn transfer(&self) -> &TransferEstimator {
        &self.transfer
    }
}

/// XML-RPC facade, registered as the `estimator` service.
pub struct EstimatorRpc {
    service: Arc<EstimatorService>,
}

impl EstimatorRpc {
    /// Wraps the service for RPC registration.
    pub fn new(service: Arc<EstimatorService>) -> Self {
        EstimatorRpc { service }
    }
}

impl Service for EstimatorRpc {
    fn name(&self) -> &'static str {
        "estimator"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            // estimate_runtime(site, login, executable, queue,
            //                  partition, nodes, job_type)
            "estimate_runtime" => {
                if params.len() != 7 {
                    return Err(GaeError::Parse(
                        "estimate_runtime(site, login, executable, queue, partition, nodes, job_type)"
                            .into(),
                    ));
                }
                let site = SiteId::new(params[0].as_u64()?);
                let meta = TaskMeta {
                    account: String::new(),
                    login: params[1].as_str()?.to_string(),
                    executable: params[2].as_str()?.to_string(),
                    queue: params[3].as_str()?.to_string(),
                    partition: params[4].as_str()?.to_string(),
                    nodes: params[5].as_u64()? as u32,
                    job_type: params[6].as_str()?.parse()?,
                };
                let est = self.service.estimate_meta(site, &meta)?;
                Ok(Value::struct_of([
                    ("runtime_s", Value::from(est.runtime.as_secs_f64())),
                    ("template_tier", Value::Int64(est.template_tier as i64)),
                    ("samples", Value::Int64(est.samples as i64)),
                    ("used_regression", Value::Bool(est.used_regression)),
                    ("std_dev_s", Value::from(est.std_dev_s)),
                ]))
            }
            "queue_time" => {
                if params.len() != 2 {
                    return Err(GaeError::Parse("queue_time(site, condor)".into()));
                }
                let site = SiteId::new(params[0].as_u64()?);
                let condor = CondorId::new(params[1].as_u64()?);
                let d = self.service.estimate_queue_time(site, condor)?;
                Ok(Value::from(d.as_secs_f64()))
            }
            "transfer_time" => {
                if params.len() != 3 {
                    return Err(GaeError::Parse("transfer_time(from, to, bytes)".into()));
                }
                let from = SiteId::new(params[0].as_u64()?);
                let to = SiteId::new(params[1].as_u64()?);
                let bytes = params[2].as_u64()?;
                Ok(Value::from(
                    self.service
                        .transfer
                        .estimate_bytes(from, to, bytes)?
                        .as_secs_f64(),
                ))
            }
            "measured_bandwidth" => {
                if params.len() != 2 {
                    return Err(GaeError::Parse("measured_bandwidth(from, to)".into()));
                }
                let from = SiteId::new(params[0].as_u64()?);
                let to = SiteId::new(params[1].as_u64()?);
                Ok(Value::from(
                    self.service.transfer.measured_bandwidth(from, to),
                ))
            }
            other => Err(gae_rpc::service::unknown_method("estimator", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "estimate_runtime",
                help: "history-based runtime prediction for a task at a site",
            },
            MethodInfo {
                name: "queue_time",
                help: "estimated queue wait of a submitted task (by Condor id)",
            },
            MethodInfo {
                name: "transfer_time",
                help: "estimated seconds to move N bytes between two sites",
            },
            MethodInfo {
                name: "measured_bandwidth",
                help: "iperf-measured bandwidth between two sites (bytes/s)",
            },
        ]
    }
}
