//! File-transfer-time estimation (§6.3).
//!
//! "For transfer time estimation, we first determine the bandwidth
//! between the client and the Clarens server using iperf, and then
//! using this bandwidth and the file size, we calculate the transfer
//! time."

use gae_sim::NetworkModel;
use gae_types::{FileRef, GaeError, GaeResult, SimDuration, SiteId};
use gae_xfer::LinkView;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use std::sync::Arc;

/// The transfer-time estimator: probes the network model the way a
/// real deployment would run iperf, caches the measured bandwidth per
/// site pair, and divides.
pub struct TransferEstimator {
    network: NetworkModel,
    rng: Mutex<StdRng>,
    cache: Mutex<std::collections::HashMap<(SiteId, SiteId), f64>>,
    /// Live link state from the transfer scheduler, when attached:
    /// dead links become typed estimator errors, concurrent transfers
    /// degrade the estimate to the current per-stream fair share of
    /// the link.
    live: Mutex<Option<Arc<dyn LinkView>>>,
}

impl TransferEstimator {
    /// Builds an estimator over a network model, seeded for
    /// reproducible probe noise.
    pub fn new(network: NetworkModel, seed: u64) -> Self {
        TransferEstimator {
            network,
            rng: Mutex::new(gae_sim::rng::seeded_rng(seed)),
            cache: Mutex::new(std::collections::HashMap::new()),
            live: Mutex::new(None),
        }
    }

    /// Attaches the transfer scheduler's live link view. Estimates
    /// become contention- and fault-aware from this point on.
    pub fn attach_live_links(&self, view: Arc<dyn LinkView>) {
        *self.live.lock() = Some(view);
    }

    /// Measured bandwidth from `from` to `to`, probing on first use
    /// (iperf runs are expensive; Clarens cached them too).
    ///
    /// The cache lock is held across the whole check-probe-insert so
    /// concurrent callers cannot double-probe: a second probe would
    /// draw different rng noise and silently overwrite the first,
    /// breaking probe-count determinism under the sharded driver.
    pub fn measured_bandwidth(&self, from: SiteId, to: SiteId) -> f64 {
        let mut cache = self.cache.lock();
        if let Some(bw) = cache.get(&(from, to)) {
            return *bw;
        }
        let probe = self.network.iperf_probe(from, to, &mut *self.rng.lock());
        cache.insert((from, to), probe.measured_bps);
        probe.measured_bps
    }

    /// Drops cached probes (bandwidth changed, monitoring says so).
    pub fn invalidate(&self) {
        self.cache.lock().clear();
    }

    /// Estimated time to move `bytes` from `from` to `to`. A
    /// partitioned or zero-bandwidth link yields a typed
    /// [`GaeError::Estimator`] rather than a division-by-zero `inf`
    /// (which would panic inside `SimDuration::from_secs_f64`).
    pub fn estimate_bytes(&self, from: SiteId, to: SiteId, bytes: u64) -> GaeResult<SimDuration> {
        let mut bw = self.measured_bandwidth(from, to);
        if let Some(view) = self.live.lock().as_ref() {
            if view.blocked(from, to) {
                return Err(GaeError::Estimator(format!(
                    "link from {from} to {to} is unreachable (transfer scheduler reports it down)"
                )));
            }
            // Report the current per-stream share on the link, not
            // the idle probe. `max(1)` rather than `active + 1`: the
            // transfer being estimated is often already one of the
            // active drains (a staging chain queried mid-flight), and
            // counting it again would double its own contention.
            bw /= view.active(from, to).max(1) as f64;
        }
        if !bw.is_finite() || bw <= 0.0 {
            return Err(GaeError::Estimator(format!(
                "no usable bandwidth from {from} to {to} (measured {bw} B/s)"
            )));
        }
        let secs = bytes as f64 / bw;
        if !secs.is_finite() {
            return Err(GaeError::Estimator(format!(
                "transfer estimate overflow for {bytes} bytes from {from} to {to}"
            )));
        }
        Ok(SimDuration::from_secs_f64(secs))
    }

    /// Estimated time to stage a file's replica to `to`, using the
    /// nearest (fastest-estimated) replica. Zero if already there.
    /// Replicas behind unusable links are skipped rather than
    /// poisoning the minimum; the error names the file only when *no*
    /// replica is reachable.
    pub fn estimate_file(&self, file: &FileRef, to: SiteId) -> GaeResult<SimDuration> {
        if file.available_at(to) {
            return Ok(SimDuration::ZERO);
        }
        file.replicas
            .iter()
            .filter_map(|src| self.estimate_bytes(*src, to, file.size_bytes).ok())
            .min()
            .ok_or_else(|| {
                GaeError::Estimator(format!(
                    "{} has no usable replica to stage from (of {})",
                    file.logical_name,
                    file.replicas.len()
                ))
            })
    }

    /// Estimated staging time for a whole input set (sequential
    /// transfers, the 2005 deployment's behaviour).
    pub fn estimate_inputs(&self, files: &[FileRef], to: SiteId) -> GaeResult<SimDuration> {
        let mut total = SimDuration::ZERO;
        for f in files {
            total += self.estimate_file(f, to)?;
        }
        Ok(total)
    }

    /// Ground truth from the underlying model (for error studies).
    pub fn true_transfer_time(&self, from: SiteId, to: SiteId, bytes: u64) -> SimDuration {
        self.network.transfer_time(from, to, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_sim::Link;

    fn sid(n: u64) -> SiteId {
        SiteId::new(n)
    }

    fn estimator() -> TransferEstimator {
        let mut net = NetworkModel::wan_2005();
        net.set_link(
            sid(1),
            sid(2),
            Link::new(10e6, SimDuration::from_millis(10)),
        );
        TransferEstimator::new(net, 42)
    }

    #[test]
    fn estimate_close_to_truth() {
        let est = estimator();
        let bytes = 100_000_000u64; // 10 s at 10 MB/s
        let predicted = est
            .estimate_bytes(sid(1), sid(2), bytes)
            .unwrap()
            .as_secs_f64();
        let actual = est.true_transfer_time(sid(1), sid(2), bytes).as_secs_f64();
        let rel = (predicted - actual).abs() / actual;
        // Probe noise is ±5 % plus the ignored 10 ms latency.
        assert!(rel < 0.08, "relative error {rel}");
    }

    #[test]
    fn probe_is_cached() {
        let est = estimator();
        let a = est.measured_bandwidth(sid(1), sid(2));
        let b = est.measured_bandwidth(sid(1), sid(2));
        assert_eq!(a, b, "second call must reuse the probe");
        est.invalidate();
        // After invalidation a new probe may differ (it is noisy).
        let c = est.measured_bandwidth(sid(1), sid(2));
        assert!((c - a).abs() / a < 0.11, "still the same link");
    }

    #[test]
    fn local_replica_is_free() {
        let est = estimator();
        let f = FileRef::new("x", 1 << 30).with_replicas(vec![sid(2)]);
        assert_eq!(est.estimate_file(&f, sid(2)).unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn picks_nearest_replica() {
        let mut net = NetworkModel::wan_2005().with_probe_noise(0.0);
        net.set_link(sid(1), sid(3), Link::new(1e6, SimDuration::ZERO));
        net.set_link(sid(2), sid(3), Link::new(100e6, SimDuration::ZERO));
        let est = TransferEstimator::new(net, 1);
        let f = FileRef::new("x", 100_000_000).with_replicas(vec![sid(1), sid(2)]);
        let t = est.estimate_file(&f, sid(3)).unwrap().as_secs_f64();
        assert!(
            (t - 1.0).abs() < 1e-9,
            "nearest replica is the 100 MB/s one: {t}"
        );
    }

    #[test]
    fn no_replica_is_error() {
        let est = estimator();
        let f = FileRef::new("orphan", 100);
        assert!(est.estimate_file(&f, sid(1)).is_err());
    }

    #[test]
    fn input_set_sums() {
        let mut net = NetworkModel::wan_2005().with_probe_noise(0.0);
        net.set_link(sid(1), sid(2), Link::new(1e6, SimDuration::ZERO));
        let est = TransferEstimator::new(net, 1);
        let files = vec![
            FileRef::new("a", 1_000_000).with_replicas(vec![sid(1)]),
            FileRef::new("b", 2_000_000).with_replicas(vec![sid(1)]),
            FileRef::new("c", 500_000).with_replicas(vec![sid(2)]), // local
        ];
        let t = est.estimate_inputs(&files, sid(2)).unwrap().as_secs_f64();
        assert!((t - 3.0).abs() < 1e-9, "1 + 2 + 0 seconds, got {t}");
    }
}
