//! Queue-time estimation (§6.2).
//!
//! "The Condor ID of the task is provided as the input ... the Queue
//! Time Estimator then contacts the execution service and retrieves
//! from the queue Condor IDs and the elapsed runtime of all tasks
//! having a priority greater than the input task. \[It\] then retrieves
//! from the database the estimated run time of \[those\] tasks ... The
//! elapsed run time of retrieved tasks is then subtracted from their
//! estimated run time; this gives the remaining estimated run time
//! for each task. The sum ... is the estimated queue time for the
//! input task."

use gae_exec::ExecutionService;
use gae_types::{CondorId, GaeError, GaeResult, SimDuration};
use parking_lot::RwLock;
use std::collections::HashMap;

/// The "separate database" of runtimes "estimated at the time of task
/// submission" (§6.2 step c). One per site, filled by whoever submits
/// (the service stack records an estimate on every submission).
#[derive(Default)]
pub struct EstimateDb {
    estimates: RwLock<HashMap<CondorId, SimDuration>>,
}

impl EstimateDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the runtime estimated at submission time.
    pub fn record(&self, condor: CondorId, estimate: SimDuration) {
        self.estimates.write().insert(condor, estimate);
    }

    /// The stored estimate, if any.
    pub fn get(&self, condor: CondorId) -> Option<SimDuration> {
        self.estimates.read().get(&condor).copied()
    }

    /// Drops the estimate for a task that left the queue (collected,
    /// killed, or failed). Without eviction the database grows without
    /// bound in a long-running stack; §6.2 only ever consults the
    /// estimates of *live* tasks, so dead entries are pure leak.
    pub fn evict(&self, condor: CondorId) -> Option<SimDuration> {
        self.estimates.write().remove(&condor)
    }

    /// Number of stored estimates.
    pub fn len(&self) -> usize {
        self.estimates.read().len()
    }

    /// True when no estimates are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Estimates how long the task `condor` will wait before starting at
/// the site served by `exec`, following §6.2 exactly. Tasks with no
/// stored submission-time estimate contribute their elapsed time
/// clamped to zero (i.e. nothing) and are counted in the returned
/// diagnostics.
pub fn estimate_queue_time(
    exec: &ExecutionService,
    db: &EstimateDb,
    condor: CondorId,
) -> GaeResult<SimDuration> {
    let record = exec.record(condor)?;
    if !record.status.is_live() {
        return Err(GaeError::InvalidTransition {
            entity: condor.to_string(),
            from: record.status.to_string(),
            attempted: "estimate queue time".into(),
        });
    }
    let ahead = exec.tasks_above_priority(record.priority);
    let mut total = SimDuration::ZERO;
    for (other, _task, elapsed) in ahead {
        if other == condor {
            continue;
        }
        if let Some(estimated) = db.get(other) {
            total += estimated.saturating_sub(elapsed);
        }
        // No estimate stored: the paper's algorithm has nothing to
        // subtract from, so the task contributes nothing.
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_exec::SiteConfig;
    use gae_types::{Priority, SimTime, SiteDescription, SiteId, TaskId, TaskSpec};

    fn site() -> ExecutionService {
        ExecutionService::new(SiteConfig::free(SiteDescription::new(
            SiteId::new(1),
            "s",
            1,
            1,
        )))
    }

    fn task(id: u64, demand: u64, prio: i32) -> TaskSpec {
        TaskSpec::new(TaskId::new(id), format!("t{id}"), "x")
            .with_cpu_demand(SimDuration::from_secs(demand))
            .with_priority(Priority::new(prio))
    }

    #[test]
    fn empty_queue_means_zero_wait() {
        let mut exec = site();
        let db = EstimateDb::new();
        let c = exec.submit(task(1, 100, 0), None).unwrap();
        db.record(c, SimDuration::from_secs(100));
        assert_eq!(
            estimate_queue_time(&exec, &db, c).unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sums_remaining_of_higher_priority() {
        let mut exec = site();
        let db = EstimateDb::new();
        let a = exec.submit(task(1, 100, 5), None).unwrap(); // running
        let b = exec.submit(task(2, 200, 5), None).unwrap(); // queued
        let c = exec.submit(task(3, 50, 0), None).unwrap(); // the probe
        db.record(a, SimDuration::from_secs(100));
        db.record(b, SimDuration::from_secs(200));
        db.record(c, SimDuration::from_secs(50));
        // Nothing has run yet: wait = 100 + 200.
        assert_eq!(
            estimate_queue_time(&exec, &db, c).unwrap(),
            SimDuration::from_secs(300)
        );
        // After 40 s, a has accrued 40: wait = 60 + 200.
        exec.advance_to(SimTime::from_secs(40));
        assert_eq!(
            estimate_queue_time(&exec, &db, c).unwrap(),
            SimDuration::from_secs(260)
        );
    }

    #[test]
    fn equal_priority_does_not_count() {
        // The paper counts only *strictly greater* priority.
        let mut exec = site();
        let db = EstimateDb::new();
        let a = exec.submit(task(1, 100, 0), None).unwrap();
        let b = exec.submit(task(2, 50, 0), None).unwrap();
        db.record(a, SimDuration::from_secs(100));
        db.record(b, SimDuration::from_secs(50));
        assert_eq!(
            estimate_queue_time(&exec, &db, b).unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn elapsed_overrun_clamps_to_zero() {
        // A task that has run longer than its estimate contributes 0,
        // not a negative number.
        let mut exec = site();
        let db = EstimateDb::new();
        let a = exec.submit(task(1, 300, 5), None).unwrap();
        let probe = exec.submit(task(2, 50, 0), None).unwrap();
        db.record(a, SimDuration::from_secs(100)); // underestimate
        db.record(probe, SimDuration::from_secs(50));
        exec.advance_to(SimTime::from_secs(250)); // a still running
        assert_eq!(
            estimate_queue_time(&exec, &db, probe).unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn missing_estimates_contribute_nothing() {
        let mut exec = site();
        let db = EstimateDb::new();
        let _a = exec.submit(task(1, 100, 5), None).unwrap(); // no estimate stored
        let probe = exec.submit(task(2, 50, 0), None).unwrap();
        assert_eq!(
            estimate_queue_time(&exec, &db, probe).unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn unknown_or_finished_task_is_error() {
        let mut exec = site();
        let db = EstimateDb::new();
        assert!(estimate_queue_time(&exec, &db, CondorId::new(9)).is_err());
        let c = exec.submit(task(1, 10, 0), None).unwrap();
        exec.advance_to(SimTime::from_secs(10));
        assert!(estimate_queue_time(&exec, &db, c).is_err());
    }

    #[test]
    fn estimate_db_roundtrip() {
        let db = EstimateDb::new();
        assert!(db.is_empty());
        db.record(CondorId::new(1), SimDuration::from_secs(5));
        assert_eq!(db.get(CondorId::new(1)), Some(SimDuration::from_secs(5)));
        assert_eq!(db.get(CondorId::new(2)), None);
        assert_eq!(db.len(), 1);
    }
}
