//! The Estimator Service (§6): "used to predict the resource
//! consumption of a job".
//!
//! Three estimators, exactly as the paper's API lists them:
//!
//! * [`runtime`] — history-based runtime prediction (§6.1): find
//!   similar tasks, take "a statistical estimate (the mean and linear
//!   regression) of their runtimes";
//! * [`queue_time`] — queue-wait prediction (§6.2): sum the estimated
//!   *remaining* runtimes of higher-priority tasks in the queue;
//! * [`transfer`] — file-transfer-time prediction (§6.3): iperf probe
//!   then `size / bandwidth`.
//!
//! [`history`] holds the decentralised per-site task history the
//! runtime estimator operates on ("a decentralized approach is used
//! for history maintenance", §6.1), and [`service`] assembles the
//! three into the deployable [`EstimatorService`] with its XML-RPC
//! facade.

pub mod history;
pub mod queue_time;
pub mod runtime;
pub mod service;
pub mod transfer;

pub use history::HistoryStore;
pub use queue_time::{estimate_queue_time, EstimateDb};
pub use runtime::{EstimationMethod, RuntimeEstimate, RuntimeEstimator};
pub use service::EstimatorService;
pub use transfer::TransferEstimator;
