//! History-based runtime estimation (§6.1).
//!
//! "To estimate the runtime, we identify similar tasks in the history
//! and then compute a statistical estimate (the mean and linear
//! regression) of their runtimes. We use this as the predicted
//! runtime."
//!
//! Similar tasks come from a [`TemplateHierarchy`]; the statistical
//! estimate is either the sample mean, an ordinary-least-squares
//! trend over the insertion sequence extrapolated one step (captures
//! drift, e.g. a user's input files growing), or a hybrid that picks
//! the trend only when it explains the data markedly better than the
//! mean — the configuration used for Figure 5.

use crate::estimator::history::HistoryStore;
use gae_hist::{ColumnPredicate, HistStore};
use gae_trace::{Feature, TaskMeta, TemplateHierarchy};
use gae_types::{GaeError, GaeResult, SimDuration, SiteId};

/// Which statistical estimate to apply to the similar-task runtimes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EstimationMethod {
    /// Sample mean of similar runtimes.
    Mean,
    /// OLS trend over insertion sequence, extrapolated one step.
    Regression,
    /// Regression when R² ≥ 0.5 and ≥ 4 samples, else mean — the
    /// paper's "mean and linear regression" combination.
    #[default]
    Hybrid,
}

/// A produced estimate, with provenance for diagnostics and the
/// Figure 5 harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuntimeEstimate {
    /// The predicted runtime on a free CPU.
    pub runtime: SimDuration,
    /// Which template tier matched (0 = most specific).
    pub template_tier: usize,
    /// How many similar tasks contributed.
    pub samples: usize,
    /// True if the regression path produced the number.
    pub used_regression: bool,
    /// Sample standard deviation of the similar runtimes, in seconds
    /// (0 for a single sample). Smith/Taylor/Foster report this as
    /// the prediction's confidence measure; advanced users read it
    /// before trusting a steering decision.
    pub std_dev_s: f64,
}

impl RuntimeEstimate {
    /// A ±1σ interval around the prediction, clamped at zero.
    pub fn interval(&self) -> (SimDuration, SimDuration) {
        let mid = self.runtime.as_secs_f64();
        (
            SimDuration::from_secs_f64((mid - self.std_dev_s).max(0.0)),
            SimDuration::from_secs_f64(mid + self.std_dev_s),
        )
    }

    /// Coefficient of variation of the similar runtimes (σ / mean of
    /// the prediction); a rough "how much should I trust this".
    pub fn relative_spread(&self) -> f64 {
        let mid = self.runtime.as_secs_f64();
        if mid > 0.0 {
            self.std_dev_s / mid
        } else {
            0.0
        }
    }
}

/// The per-site runtime estimator.
pub struct RuntimeEstimator {
    history: HistoryStore,
    hierarchy: TemplateHierarchy,
    method: EstimationMethod,
    /// Minimum similar tasks before a template tier is accepted.
    min_matches: usize,
}

impl RuntimeEstimator {
    /// Builds an estimator with the paper's defaults: Paragon
    /// template hierarchy, hybrid mean/regression, 2-sample minimum.
    pub fn new(history: HistoryStore) -> Self {
        RuntimeEstimator {
            history,
            hierarchy: TemplateHierarchy::paragon_default(),
            method: EstimationMethod::default(),
            min_matches: 2,
        }
    }

    /// Overrides the statistical method (ablation benches).
    pub fn with_method(mut self, method: EstimationMethod) -> Self {
        self.method = method;
        self
    }

    /// Overrides the template hierarchy (ablation benches).
    pub fn with_hierarchy(mut self, hierarchy: TemplateHierarchy) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// The backing history store (to record new observations).
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// Predicts the runtime of a task described by `meta`.
    pub fn estimate(&self, meta: &TaskMeta) -> GaeResult<RuntimeEstimate> {
        let snapshot = self.history.snapshot();
        if snapshot.is_empty() {
            return Err(GaeError::Estimator("history is empty".into()));
        }
        let (tier, similar) = self
            .hierarchy
            .find_similar(meta, &snapshot, self.min_matches);
        if similar.is_empty() {
            return Err(GaeError::Estimator(format!(
                "no similar task in history for login {:?}",
                meta.login
            )));
        }
        // (sequence, runtime seconds) pairs in sequence order.
        let points: Vec<(f64, f64)> = similar
            .iter()
            .map(|(rt, seq)| (*seq as f64, rt.as_secs_f64()))
            .collect();
        self.estimate_from_points(tier, points)
    }

    /// Predicts from the columnar history store instead of the legacy
    /// per-site ring. Each template tier becomes one predicate-pushdown
    /// scan (`site`, `success`, plus an equality per feature); the
    /// tier-selection rule, the point set, and the statistics are the
    /// exact ones [`RuntimeEstimator::estimate`] computes, so the two
    /// paths return bit-identical estimates for identical histories.
    pub fn estimate_columnar(
        &self,
        store: &HistStore,
        site: SiteId,
        meta: &TaskMeta,
    ) -> GaeResult<RuntimeEstimate> {
        if store.site_successes(site.raw()) == 0 {
            return Err(GaeError::Estimator("history is empty".into()));
        }
        let templates = self.hierarchy.templates();
        let mut chosen: Option<(usize, Vec<(u64, u64)>)> = None;
        for (i, tpl) in templates.iter().enumerate() {
            let mut preds = vec![
                ColumnPredicate::eq_num("site", site.raw()),
                ColumnPredicate::eq_num("success", 1),
            ];
            for feature in tpl.features() {
                preds.push(feature_predicate(*feature, meta));
            }
            let points = store.runtime_points(&preds)?;
            let enough = points.len() >= self.min_matches.max(1);
            chosen = Some((i, points));
            if enough {
                break;
            }
        }
        let (tier, raw) = chosen.expect("hierarchy has at least one template");
        if raw.is_empty() {
            return Err(GaeError::Estimator(format!(
                "no similar task in history for login {:?}",
                meta.login
            )));
        }
        // site_seq ascends in append order, mirroring the legacy seq.
        let points: Vec<(f64, f64)> = raw
            .iter()
            .map(|(seq, rt_us)| (*seq as f64, SimDuration::from_micros(*rt_us).as_secs_f64()))
            .collect();
        self.estimate_from_points(tier, points)
    }

    /// The shared statistical tail: mean / OLS / hybrid over
    /// `(sequence, runtime seconds)` points.
    fn estimate_from_points(
        &self,
        tier: usize,
        mut points: Vec<(f64, f64)>,
    ) -> GaeResult<RuntimeEstimate> {
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mean = points.iter().map(|(_, y)| y).sum::<f64>() / points.len() as f64;
        let (prediction, used_regression) = match self.method {
            EstimationMethod::Mean => (mean, false),
            EstimationMethod::Regression => (
                regression_forecast(&points).unwrap_or(mean),
                points.len() >= 2,
            ),
            EstimationMethod::Hybrid => match regression_quality(&points) {
                Some((forecast, r2)) if points.len() >= 4 && r2 >= 0.5 => (forecast, true),
                _ => (mean, false),
            },
        };
        // Runtimes are positive; a wild negative extrapolation falls
        // back to the mean.
        let prediction = if prediction > 0.0 {
            prediction
        } else {
            mean.max(1e-6)
        };
        let std_dev_s = if points.len() > 1 {
            (points.iter().map(|(_, y)| (y - mean).powi(2)).sum::<f64>()
                / (points.len() - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        Ok(RuntimeEstimate {
            runtime: SimDuration::from_secs_f64(prediction),
            template_tier: tier,
            samples: points.len(),
            used_regression,
            std_dev_s,
        })
    }
}

/// One similarity feature as a columnar equality predicate.
fn feature_predicate(feature: Feature, meta: &TaskMeta) -> ColumnPredicate {
    match feature {
        Feature::Account => ColumnPredicate::eq_str("account", &meta.account),
        Feature::Login => ColumnPredicate::eq_str("login", &meta.login),
        Feature::Executable => ColumnPredicate::eq_str("executable", &meta.executable),
        Feature::Queue => ColumnPredicate::eq_str("queue", &meta.queue),
        Feature::Partition => ColumnPredicate::eq_str("partition", &meta.partition),
        Feature::Nodes => ColumnPredicate::eq_num("nodes", meta.nodes as u64),
        Feature::JobType => ColumnPredicate::eq_str("job_type", &meta.job_type.to_string()),
    }
}

/// OLS forecast at `x = max_x + 1`. `None` for degenerate inputs.
fn regression_forecast(points: &[(f64, f64)]) -> Option<f64> {
    regression_quality(points).map(|(f, _)| f)
}

/// OLS forecast plus R². `None` if fewer than 2 points or zero
/// variance in x.
fn regression_quality(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let syy: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    let next_x = points
        .iter()
        .map(|(x, _)| *x)
        .fold(f64::NEG_INFINITY, f64::max)
        + 1.0;
    Some((intercept + slope * next_x, r2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_trace::WorkloadModel;
    use gae_types::JobType;

    fn meta(login: &str, queue: &str, nodes: u32) -> TaskMeta {
        TaskMeta {
            account: "a".into(),
            login: login.into(),
            executable: "x".into(),
            queue: queue.into(),
            partition: "p".into(),
            nodes,
            job_type: JobType::Batch,
        }
    }

    fn estimator_with(entries: &[(&str, u64)]) -> RuntimeEstimator {
        let h = HistoryStore::new(1000);
        for (login, rt) in entries {
            h.observe(meta(login, "q", 1), SimDuration::from_secs(*rt));
        }
        RuntimeEstimator::new(h)
    }

    #[test]
    fn empty_history_is_error() {
        let est = RuntimeEstimator::new(HistoryStore::new(10));
        assert!(matches!(
            est.estimate(&meta("a", "q", 1)),
            Err(GaeError::Estimator(_))
        ));
    }

    #[test]
    fn mean_of_similar_tasks() {
        let est = estimator_with(&[("alice", 100), ("alice", 120), ("bob", 9000)])
            .with_method(EstimationMethod::Mean);
        let e = est.estimate(&meta("alice", "q", 1)).unwrap();
        assert_eq!(e.runtime, SimDuration::from_secs(110));
        assert_eq!(e.samples, 2);
        assert_eq!(e.template_tier, 0);
        assert!(!e.used_regression);
    }

    #[test]
    fn falls_back_to_coarser_template() {
        let est =
            estimator_with(&[("bob", 100), ("carol", 200)]).with_method(EstimationMethod::Mean);
        // No history for dave: queue-level template matches both.
        let e = est.estimate(&meta("dave", "q", 1)).unwrap();
        assert_eq!(e.runtime, SimDuration::from_secs(150));
        assert!(e.template_tier > 0);
    }

    #[test]
    fn regression_tracks_trend() {
        // Runtimes growing 100, 200, 300, 400 -> forecast 500.
        let est = estimator_with(&[("a", 100), ("a", 200), ("a", 300), ("a", 400)])
            .with_method(EstimationMethod::Regression);
        let e = est.estimate(&meta("a", "q", 1)).unwrap();
        assert!(e.used_regression);
        let secs = e.runtime.as_secs_f64();
        assert!((secs - 500.0).abs() < 1e-6, "forecast {secs}");
    }

    #[test]
    fn hybrid_uses_mean_for_noise() {
        // No trend: hybrid must not regress.
        let est = estimator_with(&[("a", 100), ("a", 140), ("a", 100), ("a", 140)]);
        let e = est.estimate(&meta("a", "q", 1)).unwrap();
        assert!(!e.used_regression);
        assert_eq!(e.runtime, SimDuration::from_secs(120));
    }

    #[test]
    fn hybrid_uses_regression_for_strong_trend() {
        let est = estimator_with(&[("a", 100), ("a", 200), ("a", 300), ("a", 400)]);
        let e = est.estimate(&meta("a", "q", 1)).unwrap();
        assert!(e.used_regression);
    }

    #[test]
    fn confidence_interval_reflects_spread() {
        let est = estimator_with(&[("a", 100), ("a", 140)]).with_method(EstimationMethod::Mean);
        let e = est.estimate(&meta("a", "q", 1)).unwrap();
        assert_eq!(e.runtime, SimDuration::from_secs(120));
        // Sample stddev of {100, 140} is ~28.28.
        assert!((e.std_dev_s - 28.28).abs() < 0.1, "σ {}", e.std_dev_s);
        let (lo, hi) = e.interval();
        assert!(lo < e.runtime && e.runtime < hi);
        assert!((e.relative_spread() - 28.28 / 120.0).abs() < 0.01);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let est = estimator_with(&[("solo", 300)]);
        let e = est.estimate(&meta("solo", "q", 1)).unwrap();
        assert_eq!(e.std_dev_s, 0.0);
        let (lo, hi) = e.interval();
        assert_eq!(lo, hi);
    }

    #[test]
    fn negative_extrapolation_falls_back() {
        // Sharply decreasing trend would forecast below zero.
        let est = estimator_with(&[("a", 400), ("a", 200), ("a", 50), ("a", 1)])
            .with_method(EstimationMethod::Regression);
        let e = est.estimate(&meta("a", "q", 1)).unwrap();
        assert!(e.runtime > SimDuration::ZERO);
    }

    #[test]
    fn single_sample_regression_degrades_to_mean() {
        let est = estimator_with(&[("solo", 300)]).with_method(EstimationMethod::Regression);
        // Template tier with one match is below min_matches, falls
        // through; ultimately the last template matches it alone.
        let e = est.estimate(&meta("solo", "q", 1)).unwrap();
        assert_eq!(e.runtime, SimDuration::from_secs(300));
    }

    /// The retarget contract: the columnar path must reproduce the
    /// legacy ring's estimates bit for bit — same tier, same samples,
    /// same float — and its error messages verbatim.
    #[test]
    fn columnar_estimates_are_bit_identical_to_legacy() {
        use gae_hist::{HistConfig, HistOp, HistRecord, HistStore};

        let entries: &[(&str, u64)] = &[
            ("alice", 100),
            ("alice", 123),
            ("bob", 9000),
            ("alice", 140),
            ("carol", 77),
            ("alice", 161),
        ];
        let legacy = HistoryStore::new(1000);
        let store = HistStore::new(HistConfig { segment_rows: 2 });
        for (i, (login, rt)) in entries.iter().enumerate() {
            legacy.observe(meta(login, "q", 1), SimDuration::from_secs(*rt));
            store.apply(&HistOp::Append(HistRecord {
                task: i as u64,
                site: 1,
                nodes: 1,
                submit_us: 0,
                start_us: 0,
                finish_us: 0,
                runtime_us: rt * 1_000_000,
                success: true,
                account: "a".into(),
                login: (*login).into(),
                executable: "x".into(),
                queue: "q".into(),
                partition: "p".into(),
                job_type: "batch".into(),
            }));
        }
        let est = RuntimeEstimator::new(legacy);
        let site = SiteId::new(1);
        for target in ["alice", "bob", "dave"] {
            let m = meta(target, "q", 1);
            let a = est.estimate(&m).unwrap();
            let b = est.estimate_columnar(&store, site, &m).unwrap();
            assert_eq!(a.template_tier, b.template_tier, "{target}");
            assert_eq!(a.samples, b.samples, "{target}");
            assert_eq!(a.used_regression, b.used_regression, "{target}");
            assert_eq!(
                a.runtime.as_secs_f64().to_bits(),
                b.runtime.as_secs_f64().to_bits(),
                "{target}"
            );
            assert_eq!(a.std_dev_s.to_bits(), b.std_dev_s.to_bits(), "{target}");
        }
        // Error parity: empty store and empty site both say what the
        // legacy path says.
        let empty = HistStore::new(HistConfig::default());
        let err = est
            .estimate_columnar(&empty, site, &meta("alice", "q", 1))
            .unwrap_err();
        assert!(err.to_string().contains("history is empty"), "{err}");
        let err = est
            .estimate_columnar(&store, SiteId::new(9), &meta("alice", "q", 1))
            .unwrap_err();
        assert!(err.to_string().contains("history is empty"), "{err}");
    }

    /// The headline property behind Figure 5: on a Downey-style
    /// workload with a 100-job history, mean error over 20 probes is
    /// in the paper's ballpark (they report 13.53 %).
    #[test]
    fn figure5_mean_error_in_range() {
        let model = WorkloadModel::default();
        let (history_recs, probes) = model.figure5_split(2005);
        let h = HistoryStore::new(1000);
        h.load_trace(&history_recs);
        let est = RuntimeEstimator::new(h);
        let mut errors = Vec::new();
        for probe in probes.iter().filter(|p| p.success) {
            let actual = probe.runtime().as_secs_f64();
            let predicted = est
                .estimate(&TaskMeta::from_record(probe))
                .unwrap()
                .runtime
                .as_secs_f64();
            errors.push(((actual - predicted) / actual * 100.0).abs());
        }
        let mean_error = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(
            mean_error < 35.0,
            "mean error {mean_error:.2}% far outside the paper's regime"
        );
    }
}
