//! The per-site task history the runtime estimator searches.
//!
//! "We maintain a history of tasks that have executed along with
//! their respective runtimes. ... A decentralized approach is used
//! for history maintenance" (§6.1): every site keeps its own store;
//! nothing here is global.

use gae_trace::{ParagonRecord, TaskMeta};
use gae_types::SimDuration;
use parking_lot::RwLock;
use std::collections::VecDeque;

/// One observed execution.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// The task's similarity attributes.
    pub meta: TaskMeta,
    /// Its observed runtime.
    pub runtime: SimDuration,
    /// Insertion sequence (regression covariate: captures drift).
    pub seq: u64,
}

/// A bounded, append-only history of `(task, runtime)` observations.
/// The buffer is a ring: at capacity, evicting the oldest entry is
/// O(1), so a long-running site pays the same for observation number
/// ten million as for the first.
pub struct HistoryStore {
    entries: RwLock<VecDeque<HistoryEntry>>,
    capacity: usize,
    next_seq: std::sync::atomic::AtomicU64,
}

impl HistoryStore {
    /// Creates a store retaining at most `capacity` observations
    /// (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        HistoryStore {
            entries: RwLock::new(VecDeque::new()),
            capacity,
            next_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, meta: TaskMeta, runtime: SimDuration) {
        let seq = self
            .next_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut entries = self.entries.write();
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(HistoryEntry { meta, runtime, seq });
    }

    /// Loads successful jobs from an accounting trace (failed jobs
    /// carry truncated runtimes and would poison the predictor).
    pub fn load_trace(&self, records: &[ParagonRecord]) -> usize {
        let mut loaded = 0;
        for r in records.iter().filter(|r| r.success) {
            self.observe(TaskMeta::from_record(r), r.runtime());
            loaded += 1;
        }
        loaded
    }

    /// Snapshot as `(meta, (runtime, seq))` pairs for template search.
    pub fn snapshot(&self) -> Vec<(TaskMeta, (SimDuration, u64))> {
        self.entries
            .read()
            .iter()
            .map(|e| (e.meta.clone(), (e.runtime, e.seq)))
            .collect()
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if no observations are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_trace::WorkloadModel;
    use gae_types::JobType;

    fn meta(login: &str) -> TaskMeta {
        TaskMeta {
            account: "a".into(),
            login: login.into(),
            executable: "x".into(),
            queue: "q".into(),
            partition: "p".into(),
            nodes: 1,
            job_type: JobType::Batch,
        }
    }

    #[test]
    fn observe_and_snapshot() {
        let h = HistoryStore::new(10);
        assert!(h.is_empty());
        h.observe(meta("a"), SimDuration::from_secs(10));
        h.observe(meta("b"), SimDuration::from_secs(20));
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].1 .0, SimDuration::from_secs(10));
        assert!(snap[0].1 .1 < snap[1].1 .1, "sequence increases");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let h = HistoryStore::new(3);
        for i in 0..10 {
            h.observe(meta("a"), SimDuration::from_secs(i));
        }
        assert_eq!(h.len(), 3);
        let snap = h.snapshot();
        assert_eq!(snap[0].1 .0, SimDuration::from_secs(7));
    }

    #[test]
    fn capacity_churn_stays_cheap() {
        // Regression test for the old `Vec::remove(0)` eviction: a
        // small ring churned far past capacity must stay exact (oldest
        // out first, sequence monotonic) and fast. 50k observations
        // through a 16-slot ring finishes instantly under the ring;
        // the shifting eviction made this quadratic.
        let h = HistoryStore::new(16);
        for i in 0..50_000u64 {
            h.observe(meta("churn"), SimDuration::from_secs(i));
        }
        assert_eq!(h.len(), 16);
        let snap = h.snapshot();
        for (k, (_, (rt, seq))) in snap.iter().enumerate() {
            assert_eq!(*rt, SimDuration::from_secs(49_984 + k as u64));
            assert_eq!(*seq, 49_984 + k as u64);
        }
    }

    #[test]
    fn trace_loading_skips_failures() {
        let model = WorkloadModel {
            failure_fraction: 0.5,
            ..WorkloadModel::default()
        };
        let records = model.generate(100, 5);
        let h = HistoryStore::new(1000);
        let loaded = h.load_trace(&records);
        let successes = records.iter().filter(|r| r.success).count();
        assert_eq!(loaded, successes);
        assert_eq!(h.len(), successes);
        assert!(successes < 100, "some failures expected at 50%");
    }
}
