//! Replica catalog: the data-grid half of the GAE's world.
//!
//! The paper's setting is a data grid — "large amounts of data ...
//! have to be stored and replicated to several geographically
//! distributed sites" and the middleware must identify "where the
//! requested data is located" (§2) and manage "the locations from
//! where the jobs access their required data" (§9). The catalog maps
//! logical file names to replica locations, resolves task input lists
//! before scheduling, and performs managed replication whose transfer
//! time follows the grid's network model.

use crate::grid::Grid;
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{FileRef, GaeError, GaeResult, SimTime, SiteId, TaskSpec};
use gae_wire::Value;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// One completed or in-flight managed replication.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferRecord {
    /// Logical file name.
    pub lfn: String,
    /// Source replica used.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// When the transfer started.
    pub started: SimTime,
    /// When the replica becomes (became) available.
    pub arrives: SimTime,
}

/// The replica catalog service.
pub struct ReplicaCatalog {
    grid: Arc<Grid>,
    files: RwLock<HashMap<String, FileRef>>,
    in_flight: Mutex<Vec<TransferRecord>>,
    history: Mutex<Vec<TransferRecord>>,
}

impl ReplicaCatalog {
    /// An empty catalog over the grid's network.
    pub fn new(grid: Arc<Grid>) -> Arc<Self> {
        Arc::new(ReplicaCatalog {
            grid,
            files: RwLock::new(HashMap::new()),
            in_flight: Mutex::new(Vec::new()),
            history: Mutex::new(Vec::new()),
        })
    }

    /// Registers (or replaces) a logical file and its replicas.
    pub fn register(&self, file: FileRef) {
        self.files.write().insert(file.logical_name.clone(), file);
    }

    /// Looks up a logical file.
    pub fn lookup(&self, lfn: &str) -> Option<FileRef> {
        self.files.read().get(lfn).cloned()
    }

    /// Number of catalogued files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops one replica; the file stays catalogued even with no
    /// replicas left (it can be re-produced).
    pub fn delete_replica(&self, lfn: &str, site: SiteId) -> GaeResult<()> {
        let mut files = self.files.write();
        let file = files
            .get_mut(lfn)
            .ok_or_else(|| GaeError::NotFound(format!("lfn {lfn:?}")))?;
        file.replicas.retain(|s| *s != site);
        Ok(())
    }

    /// Starts a managed replication of `lfn` to `site` from its
    /// nearest replica. Returns the arrival time; the new replica
    /// becomes visible once [`ReplicaCatalog::poll`] passes it.
    pub fn replicate(&self, lfn: &str, to: SiteId) -> GaeResult<SimTime> {
        let file = self
            .lookup(lfn)
            .ok_or_else(|| GaeError::NotFound(format!("lfn {lfn:?}")))?;
        if file.available_at(to) {
            return Ok(self.grid.now()); // already there
        }
        // Coalesce with an identical transfer already in flight.
        if let Some(t) = self
            .in_flight
            .lock()
            .iter()
            .find(|t| t.lfn == lfn && t.to == to)
        {
            return Ok(t.arrives);
        }
        let now = self.grid.now();
        let (from, duration) = file
            .replicas
            .iter()
            .map(|src| {
                (
                    *src,
                    self.grid.network().transfer_time(*src, to, file.size_bytes),
                )
            })
            .min_by_key(|(_, d)| *d)
            .ok_or_else(|| GaeError::Estimator(format!("{lfn:?} has no replica to copy from")))?;
        let record = TransferRecord {
            lfn: lfn.to_string(),
            from,
            to,
            started: now,
            arrives: now + duration,
        };
        let arrives = record.arrives;
        self.in_flight.lock().push(record);
        Ok(arrives)
    }

    /// Applies every transfer that has arrived by the grid's current
    /// time; returns how many replicas landed.
    pub fn poll(&self) -> usize {
        let now = self.grid.now();
        let mut in_flight = self.in_flight.lock();
        let mut landed = 0;
        let mut remaining = Vec::with_capacity(in_flight.len());
        for t in in_flight.drain(..) {
            if t.arrives <= now {
                if let Some(file) = self.files.write().get_mut(&t.lfn) {
                    if !file.replicas.contains(&t.to) {
                        file.replicas.push(t.to);
                    }
                }
                self.history.lock().push(t);
                landed += 1;
            } else {
                remaining.push(t);
            }
        }
        *in_flight = remaining;
        landed
    }

    /// Transfers still in flight.
    pub fn in_flight(&self) -> Vec<TransferRecord> {
        self.in_flight.lock().clone()
    }

    /// Completed transfers, in arrival order.
    pub fn transfer_history(&self) -> Vec<TransferRecord> {
        self.history.lock().clone()
    }

    /// Fills the replica lists of a task's inputs from the catalog
    /// (by logical name) so the scheduler sees current data locality.
    /// Unknown files pass through unchanged.
    pub fn resolve_inputs(&self, mut spec: TaskSpec) -> TaskSpec {
        let files = self.files.read();
        for input in &mut spec.input_files {
            if let Some(known) = files.get(&input.logical_name) {
                input.size_bytes = known.size_bytes;
                input.replicas = known.replicas.clone();
            }
        }
        spec
    }
}

/// XML-RPC facade, registered as the `replica` service.
pub struct ReplicaRpc {
    catalog: Arc<ReplicaCatalog>,
}

impl ReplicaRpc {
    /// Wraps the catalog for RPC registration.
    pub fn new(catalog: Arc<ReplicaCatalog>) -> Self {
        ReplicaRpc { catalog }
    }
}

impl Service for ReplicaRpc {
    fn name(&self) -> &'static str {
        "replica"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            "register" => {
                // register(lfn, size, [site...])
                if params.len() != 3 {
                    return Err(GaeError::Parse("register(lfn, size, sites)".into()));
                }
                let mut file = FileRef::new(params[0].as_str()?, params[1].as_u64()?);
                for s in params[2].as_array()? {
                    file.replicas.push(SiteId::new(s.as_u64()?));
                }
                self.catalog.register(file);
                Ok(Value::Bool(true))
            }
            "lookup" => {
                let lfn = params
                    .first()
                    .ok_or_else(|| GaeError::Parse("lookup(lfn)".into()))?
                    .as_str()?;
                Ok(match self.catalog.lookup(lfn) {
                    Some(f) => Value::struct_of([
                        ("lfn", Value::from(f.logical_name)),
                        ("size", Value::from(f.size_bytes)),
                        (
                            "replicas",
                            Value::Array(f.replicas.iter().map(|s| Value::from(s.raw())).collect()),
                        ),
                    ]),
                    None => Value::Nil,
                })
            }
            "replicate" => {
                if params.len() != 2 {
                    return Err(GaeError::Parse("replicate(lfn, to_site)".into()));
                }
                let lfn = params[0].as_str()?;
                let to = SiteId::new(params[1].as_u64()?);
                let arrives = self.catalog.replicate(lfn, to)?;
                Ok(Value::from(arrives.as_micros()))
            }
            "delete_replica" => {
                if params.len() != 2 {
                    return Err(GaeError::Parse("delete_replica(lfn, site)".into()));
                }
                self.catalog
                    .delete_replica(params[0].as_str()?, SiteId::new(params[1].as_u64()?))?;
                Ok(Value::Bool(true))
            }
            other => Err(gae_rpc::service::unknown_method("replica", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "register",
                help: "catalogue a logical file with replicas",
            },
            MethodInfo {
                name: "lookup",
                help: "replicas and size of a logical file",
            },
            MethodInfo {
                name: "replicate",
                help: "start a managed replication; returns the arrival time (µs)",
            },
            MethodInfo {
                name: "delete_replica",
                help: "drop one replica of a file",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridBuilder;
    use gae_sim::{Link, NetworkModel};
    use gae_types::{SimDuration, SiteDescription};

    fn grid() -> Arc<Grid> {
        let mut net = NetworkModel::new(Link::new(1e6, SimDuration::ZERO));
        net.set_symmetric(
            SiteId::new(1),
            SiteId::new(2),
            Link::new(1e6, SimDuration::ZERO),
        );
        GridBuilder::new()
            .site(SiteDescription::new(SiteId::new(1), "a", 1, 1))
            .site(SiteDescription::new(SiteId::new(2), "b", 1, 1))
            .network(net)
            .build()
    }

    #[test]
    fn register_lookup_delete() {
        let catalog = ReplicaCatalog::new(grid());
        assert!(catalog.is_empty());
        catalog.register(FileRef::new("lfn:/a", 100).with_replicas(vec![SiteId::new(1)]));
        assert_eq!(catalog.len(), 1);
        let f = catalog.lookup("lfn:/a").unwrap();
        assert!(f.available_at(SiteId::new(1)));
        catalog.delete_replica("lfn:/a", SiteId::new(1)).unwrap();
        assert!(!catalog
            .lookup("lfn:/a")
            .unwrap()
            .available_at(SiteId::new(1)));
        assert!(catalog.delete_replica("lfn:/zzz", SiteId::new(1)).is_err());
        assert!(catalog.lookup("lfn:/zzz").is_none());
    }

    #[test]
    fn replication_takes_network_time() {
        let g = grid();
        let catalog = ReplicaCatalog::new(g.clone());
        // 10 MB at 1 MB/s = 10 s.
        catalog.register(FileRef::new("lfn:/d", 10_000_000).with_replicas(vec![SiteId::new(1)]));
        let arrives = catalog.replicate("lfn:/d", SiteId::new(2)).unwrap();
        assert_eq!(arrives, SimTime::from_secs(10));
        assert_eq!(catalog.in_flight().len(), 1);
        // Not there yet.
        g.advance_to(SimTime::from_secs(5));
        catalog.poll();
        assert!(!catalog
            .lookup("lfn:/d")
            .unwrap()
            .available_at(SiteId::new(2)));
        // Arrived.
        g.advance_to(SimTime::from_secs(10));
        assert_eq!(catalog.poll(), 1);
        assert!(catalog
            .lookup("lfn:/d")
            .unwrap()
            .available_at(SiteId::new(2)));
        assert_eq!(catalog.transfer_history().len(), 1);
        assert!(catalog.in_flight().is_empty());
    }

    #[test]
    fn duplicate_replication_coalesces() {
        let g = grid();
        let catalog = ReplicaCatalog::new(g.clone());
        catalog.register(FileRef::new("lfn:/d", 10_000_000).with_replicas(vec![SiteId::new(1)]));
        let a = catalog.replicate("lfn:/d", SiteId::new(2)).unwrap();
        let b = catalog.replicate("lfn:/d", SiteId::new(2)).unwrap();
        assert_eq!(a, b, "second request joins the first transfer");
        assert_eq!(catalog.in_flight().len(), 1);
        // Replicating to a site that already holds it is instant.
        let c = catalog.replicate("lfn:/d", SiteId::new(1)).unwrap();
        assert_eq!(c, g.now());
    }

    #[test]
    fn replication_needs_a_source() {
        let catalog = ReplicaCatalog::new(grid());
        catalog.register(FileRef::new("lfn:/orphan", 1));
        assert!(catalog.replicate("lfn:/orphan", SiteId::new(2)).is_err());
        assert!(catalog.replicate("lfn:/missing", SiteId::new(2)).is_err());
    }

    #[test]
    fn resolve_inputs_fills_replicas() {
        let catalog = ReplicaCatalog::new(grid());
        catalog.register(FileRef::new("lfn:/known", 5_000).with_replicas(vec![SiteId::new(2)]));
        let spec = gae_types::TaskSpec::new(gae_types::TaskId::new(1), "t", "x").with_inputs(vec![
            FileRef::new("lfn:/known", 0),
            FileRef::new("lfn:/unknown", 7),
        ]);
        let resolved = catalog.resolve_inputs(spec);
        assert_eq!(resolved.input_files[0].size_bytes, 5_000);
        assert!(resolved.input_files[0].available_at(SiteId::new(2)));
        assert_eq!(resolved.input_files[1].size_bytes, 7, "unknown untouched");
    }

    #[test]
    fn rpc_facade_roundtrip() {
        let catalog = ReplicaCatalog::new(grid());
        let svc = ReplicaRpc::new(catalog.clone());
        let ctx = CallContext::anonymous("t");
        svc.call(
            &ctx,
            "register",
            &[
                Value::from("lfn:/x"),
                Value::from(1_000_000u64),
                Value::Array(vec![Value::from(1u64)]),
            ],
        )
        .unwrap();
        let f = svc.call(&ctx, "lookup", &[Value::from("lfn:/x")]).unwrap();
        assert_eq!(f.member("size").unwrap().as_u64().unwrap(), 1_000_000);
        let arrives = svc
            .call(
                &ctx,
                "replicate",
                &[Value::from("lfn:/x"), Value::from(2u64)],
            )
            .unwrap();
        assert_eq!(arrives.as_u64().unwrap(), 1_000_000, "1 s in µs");
        svc.call(
            &ctx,
            "delete_replica",
            &[Value::from("lfn:/x"), Value::from(1u64)],
        )
        .unwrap();
        assert!(svc
            .call(&ctx, "lookup", &[Value::from("lfn:/nope")])
            .unwrap()
            .is_nil());
        assert!(svc.call(&ctx, "bogus", &[]).is_err());
    }
}
