//! Replica catalog: the data-grid half of the GAE's world.
//!
//! The paper's setting is a data grid — "large amounts of data ...
//! have to be stored and replicated to several geographically
//! distributed sites" and the middleware must identify "where the
//! requested data is located" (§2) and manage "the locations from
//! where the jobs access their required data" (§9). The catalog maps
//! logical file names to replica locations, resolves task input lists
//! before scheduling, and requests managed replication.
//!
//! Since the data plane moved into `gae-xfer`, the catalog is a thin
//! facade over the grid's transfer scheduler: every byte still moves
//! through one place, so catalog-initiated replications contend for
//! links with task input staging, are retried against link faults,
//! and respect site storage budgets. Replicas become visible when the
//! grid clock passes their *contended* arrival time — the scheduler
//! lands them during [`Grid::advance_to`], no catalog poll needed.

use crate::grid::Grid;
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{FileRef, GaeError, GaeResult, SimTime, SiteId, TaskSpec};
use gae_wire::Value;
use parking_lot::Mutex;
use std::sync::Arc;

pub use gae_xfer::TransferRecord;

/// The replica catalog service.
pub struct ReplicaCatalog {
    grid: Arc<Grid>,
    /// Landings this catalog has already reported through
    /// [`ReplicaCatalog::poll`].
    seen_landings: Mutex<u64>,
}

impl ReplicaCatalog {
    /// A catalog facade over the grid's transfer scheduler.
    pub fn new(grid: Arc<Grid>) -> Arc<Self> {
        Arc::new(ReplicaCatalog {
            grid,
            seen_landings: Mutex::new(0),
        })
    }

    /// Registers (or replaces) a logical file and its replicas.
    pub fn register(&self, file: FileRef) {
        self.grid.with_xfer(|x| x.register(&file));
    }

    /// Looks up a logical file.
    pub fn lookup(&self, lfn: &str) -> Option<FileRef> {
        self.grid.with_xfer(|x| x.lookup(lfn))
    }

    /// Number of catalogued files.
    pub fn len(&self) -> usize {
        self.grid.with_xfer(|x| x.len())
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops one replica; the file stays catalogued even with no
    /// replicas left (it can be re-produced). In-flight transfers
    /// reading the deleted replica are re-pointed at another replica
    /// (restarting from zero bytes) or failed with a typed
    /// [`GaeError::Transfer`] — they never silently materialize data
    /// from the deleted source.
    pub fn delete_replica(&self, lfn: &str, site: SiteId) -> GaeResult<()> {
        self.grid.with_xfer(|x| x.delete_replica(lfn, site))
    }

    /// Starts a managed replication of `lfn` to `site` from the best
    /// source replica. Returns the projected arrival time under
    /// current link load; the replica becomes visible once the grid
    /// clock passes the (possibly later, if contention grows) actual
    /// arrival. Identical outstanding requests coalesce.
    pub fn replicate(&self, lfn: &str, to: SiteId) -> GaeResult<SimTime> {
        self.grid.with_xfer(|x| x.replicate(lfn, to))
    }

    /// Reports how many replicas landed since the last poll. Landings
    /// happen inside [`Grid::advance_to`]; this is bookkeeping for
    /// callers that want a delta, not a visibility barrier.
    pub fn poll(&self) -> usize {
        let total = self.grid.with_xfer(|x| x.landed_total());
        let mut seen = self.seen_landings.lock();
        let landed = total.saturating_sub(*seen);
        *seen = total;
        landed as usize
    }

    /// Transfers still in flight, with projected arrivals.
    pub fn in_flight(&self) -> Vec<TransferRecord> {
        self.grid.with_xfer(|x| x.in_flight())
    }

    /// Completed transfers, oldest first — a bounded ring of the last
    /// `history_capacity` landings. [`ReplicaCatalog::history_dropped`]
    /// counts what fell off the ring.
    pub fn transfer_history(&self) -> Vec<TransferRecord> {
        self.grid.with_xfer(|x| x.history())
    }

    /// Monotonic count of history records dropped off the bounded
    /// ring (published to MonALISA as `xfer.history_dropped`).
    pub fn history_dropped(&self) -> u64 {
        self.grid.with_xfer(|x| x.counters().history_dropped)
    }

    /// Fills the replica lists of a task's inputs from the catalog
    /// (by logical name) so the scheduler sees current data locality.
    /// Unknown files pass through unchanged.
    pub fn resolve_inputs(&self, mut spec: TaskSpec) -> TaskSpec {
        self.grid
            .with_xfer(|x| x.resolve_inputs(&mut spec.input_files));
        spec
    }
}

/// XML-RPC facade, registered as the `replica` service.
pub struct ReplicaRpc {
    catalog: Arc<ReplicaCatalog>,
}

impl ReplicaRpc {
    /// Wraps the catalog for RPC registration.
    pub fn new(catalog: Arc<ReplicaCatalog>) -> Self {
        ReplicaRpc { catalog }
    }
}

impl Service for ReplicaRpc {
    fn name(&self) -> &'static str {
        "replica"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            "register" => {
                // register(lfn, size, [site...])
                if params.len() != 3 {
                    return Err(GaeError::Parse("register(lfn, size, sites)".into()));
                }
                let mut file = FileRef::new(params[0].as_str()?, params[1].as_u64()?);
                for s in params[2].as_array()? {
                    file.replicas.push(SiteId::new(s.as_u64()?));
                }
                self.catalog.register(file);
                Ok(Value::Bool(true))
            }
            "lookup" => {
                let lfn = params
                    .first()
                    .ok_or_else(|| GaeError::Parse("lookup(lfn)".into()))?
                    .as_str()?;
                Ok(match self.catalog.lookup(lfn) {
                    Some(f) => Value::struct_of([
                        ("lfn", Value::from(f.logical_name)),
                        ("size", Value::from(f.size_bytes)),
                        (
                            "replicas",
                            Value::Array(f.replicas.iter().map(|s| Value::from(s.raw())).collect()),
                        ),
                    ]),
                    None => Value::Nil,
                })
            }
            "replicate" => {
                if params.len() != 2 {
                    return Err(GaeError::Parse("replicate(lfn, to_site)".into()));
                }
                let lfn = params[0].as_str()?;
                let to = SiteId::new(params[1].as_u64()?);
                let arrives = self.catalog.replicate(lfn, to)?;
                Ok(Value::from(arrives.as_micros()))
            }
            "delete_replica" => {
                if params.len() != 2 {
                    return Err(GaeError::Parse("delete_replica(lfn, site)".into()));
                }
                self.catalog
                    .delete_replica(params[0].as_str()?, SiteId::new(params[1].as_u64()?))?;
                Ok(Value::Bool(true))
            }
            other => Err(gae_rpc::service::unknown_method("replica", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "register",
                help: "catalogue a logical file with replicas",
            },
            MethodInfo {
                name: "lookup",
                help: "replicas and size of a logical file",
            },
            MethodInfo {
                name: "replicate",
                help: "start a managed replication; returns the projected arrival time (µs)",
            },
            MethodInfo {
                name: "delete_replica",
                help: "drop one replica of a file",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridBuilder;
    use gae_sim::{Link, NetworkModel};
    use gae_types::{SimDuration, SiteDescription};

    fn grid() -> Arc<Grid> {
        let mut net = NetworkModel::new(Link::new(1e6, SimDuration::ZERO));
        net.set_symmetric(
            SiteId::new(1),
            SiteId::new(2),
            Link::new(1e6, SimDuration::ZERO),
        );
        GridBuilder::new()
            .site(SiteDescription::new(SiteId::new(1), "a", 1, 1))
            .site(SiteDescription::new(SiteId::new(2), "b", 1, 1))
            .network(net)
            .build()
    }

    #[test]
    fn register_lookup_delete() {
        let catalog = ReplicaCatalog::new(grid());
        assert!(catalog.is_empty());
        catalog.register(FileRef::new("lfn:/a", 100).with_replicas(vec![SiteId::new(1)]));
        assert_eq!(catalog.len(), 1);
        let f = catalog.lookup("lfn:/a").unwrap();
        assert!(f.available_at(SiteId::new(1)));
        catalog.delete_replica("lfn:/a", SiteId::new(1)).unwrap();
        assert!(!catalog
            .lookup("lfn:/a")
            .unwrap()
            .available_at(SiteId::new(1)));
        assert!(catalog.delete_replica("lfn:/zzz", SiteId::new(1)).is_err());
        assert!(catalog.lookup("lfn:/zzz").is_none());
    }

    #[test]
    fn replication_takes_network_time() {
        let g = grid();
        let catalog = ReplicaCatalog::new(g.clone());
        // 10 MB at 1 MB/s = 10 s.
        catalog.register(FileRef::new("lfn:/d", 10_000_000).with_replicas(vec![SiteId::new(1)]));
        let arrives = catalog.replicate("lfn:/d", SiteId::new(2)).unwrap();
        assert_eq!(arrives, SimTime::from_secs(10));
        assert_eq!(catalog.in_flight().len(), 1);
        // Not there yet.
        g.advance_to(SimTime::from_secs(5));
        assert_eq!(catalog.poll(), 0);
        assert!(!catalog
            .lookup("lfn:/d")
            .unwrap()
            .available_at(SiteId::new(2)));
        // Arrived: the scheduler lands it as the clock passes 10 s.
        g.advance_to(SimTime::from_secs(10));
        assert_eq!(catalog.poll(), 1);
        assert!(catalog
            .lookup("lfn:/d")
            .unwrap()
            .available_at(SiteId::new(2)));
        assert_eq!(catalog.transfer_history().len(), 1);
        assert!(catalog.in_flight().is_empty());
    }

    #[test]
    fn duplicate_replication_coalesces() {
        let g = grid();
        let catalog = ReplicaCatalog::new(g.clone());
        catalog.register(FileRef::new("lfn:/d", 10_000_000).with_replicas(vec![SiteId::new(1)]));
        let a = catalog.replicate("lfn:/d", SiteId::new(2)).unwrap();
        let b = catalog.replicate("lfn:/d", SiteId::new(2)).unwrap();
        assert_eq!(a, b, "second request joins the first transfer");
        assert_eq!(catalog.in_flight().len(), 1);
        // Replicating to a site that already holds it is instant.
        let c = catalog.replicate("lfn:/d", SiteId::new(1)).unwrap();
        assert_eq!(c, g.now());
    }

    #[test]
    fn replication_needs_a_source_and_a_known_site() {
        let catalog = ReplicaCatalog::new(grid());
        catalog.register(FileRef::new("lfn:/orphan", 1));
        assert!(catalog.replicate("lfn:/orphan", SiteId::new(2)).is_err());
        assert!(catalog.replicate("lfn:/missing", SiteId::new(2)).is_err());
        // Replicating to a site outside the grid is a typed NotFound.
        catalog.register(FileRef::new("lfn:/ok", 1).with_replicas(vec![SiteId::new(1)]));
        assert!(matches!(
            catalog.replicate("lfn:/ok", SiteId::new(99)),
            Err(GaeError::NotFound(_))
        ));
    }

    #[test]
    fn resolve_inputs_fills_replicas() {
        let catalog = ReplicaCatalog::new(grid());
        catalog.register(FileRef::new("lfn:/known", 5_000).with_replicas(vec![SiteId::new(2)]));
        let spec = gae_types::TaskSpec::new(gae_types::TaskId::new(1), "t", "x").with_inputs(vec![
            FileRef::new("lfn:/known", 0),
            FileRef::new("lfn:/unknown", 7),
        ]);
        let resolved = catalog.resolve_inputs(spec);
        assert_eq!(resolved.input_files[0].size_bytes, 5_000);
        assert!(resolved.input_files[0].available_at(SiteId::new(2)));
        assert_eq!(resolved.input_files[1].size_bytes, 7, "unknown untouched");
    }

    #[test]
    fn history_ring_is_bounded_and_counts_drops() {
        let mut net = NetworkModel::new(Link::new(1e9, SimDuration::ZERO));
        net.set_symmetric(
            SiteId::new(1),
            SiteId::new(2),
            Link::new(1e9, SimDuration::ZERO),
        );
        let g = GridBuilder::new()
            .site(SiteDescription::new(SiteId::new(1), "a", 1, 1))
            .site(SiteDescription::new(SiteId::new(2), "b", 1, 1))
            .network(net)
            .xfer(gae_xfer::XferConfig {
                history_capacity: 2,
                ..gae_xfer::XferConfig::with_defaults()
            })
            .build();
        let catalog = ReplicaCatalog::new(g.clone());
        for i in 0..5 {
            let lfn = format!("lfn:/f{i}");
            catalog.register(FileRef::new(&lfn, 1000).with_replicas(vec![SiteId::new(1)]));
            catalog.replicate(&lfn, SiteId::new(2)).unwrap();
            let next = g.next_event_time().expect("transfer in flight");
            g.advance_to(next);
        }
        assert_eq!(catalog.poll(), 5, "all five landed");
        assert_eq!(catalog.transfer_history().len(), 2, "ring keeps last 2");
        assert_eq!(catalog.history_dropped(), 3, "three fell off");
    }

    #[test]
    fn rpc_facade_roundtrip() {
        let catalog = ReplicaCatalog::new(grid());
        let svc = ReplicaRpc::new(catalog.clone());
        let ctx = CallContext::anonymous("t");
        svc.call(
            &ctx,
            "register",
            &[
                Value::from("lfn:/x"),
                Value::from(1_000_000u64),
                Value::Array(vec![Value::from(1u64)]),
            ],
        )
        .unwrap();
        let f = svc.call(&ctx, "lookup", &[Value::from("lfn:/x")]).unwrap();
        assert_eq!(f.member("size").unwrap().as_u64().unwrap(), 1_000_000);
        let arrives = svc
            .call(
                &ctx,
                "replicate",
                &[Value::from("lfn:/x"), Value::from(2u64)],
            )
            .unwrap();
        assert_eq!(arrives.as_u64().unwrap(), 1_000_000, "1 s in µs");
        svc.call(
            &ctx,
            "delete_replica",
            &[Value::from("lfn:/x"), Value::from(1u64)],
        )
        .unwrap();
        assert!(svc
            .call(&ctx, "lookup", &[Value::from("lfn:/nope")])
            .unwrap()
            .is_nil());
        assert!(svc.call(&ctx, "bogus", &[]).is_err());
    }
}
