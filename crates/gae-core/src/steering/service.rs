//! The Steering Service proper: Command Processor, Optimizer, and
//! Backup & Recovery over the Subscriber's state.

use crate::estimator::EstimatorService;
use crate::grid::Grid;
use crate::jobmon::JobMonitoringService;
use crate::persist::{self, Persistence};
use crate::quota::{ChargeRecord, QuotaService};
use crate::steering::session::JobAuthorizer;
use crate::steering::state::{TaskPhase, TrackedJob, TrackedTask};
use crate::steering::SteeringPolicy;
use gae_exec::Checkpoint;
use gae_sched::Scheduler;
use gae_types::{
    ConcretePlan, GaeError, GaeResult, JobId, OptimizationPreference, Priority, SimDuration,
    SimTime, SiteId, TaskId, TaskSpec, TaskStatus, UserId,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// A client-visible steering command (§4: "kill, pause, and resume,
/// change priority of the job or moving the job to some other
/// execution site").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SteeringCommand {
    /// Terminate the task.
    Kill,
    /// Suspend execution (keeps the slot).
    Pause,
    /// Resume a paused task.
    Resume,
    /// Change the scheduling priority.
    SetPriority(Priority),
    /// Move to another site (`None` = let the Optimizer pick).
    Move(Option<SiteId>),
}

/// Why a task was moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveReason {
    /// A user asked for it.
    Manual,
    /// The Optimizer judged progress too slow.
    SlowProgress,
    /// Backup & Recovery resubmitted after a failure.
    Recovery,
    /// The execution layer flocked the queued task to a partner pool.
    Flocked,
}

/// Client notifications ("the Steering Service notifies the client
/// about the failure ... \[and\] about the completion of the job",
/// §4.2.4). Drained by [`SteeringService::drain_notifications`].
#[derive(Clone, Debug, PartialEq)]
pub enum Notification {
    /// Every task of the job completed; the execution state was
    /// collected from the execution services.
    JobCompleted {
        /// The job.
        job: JobId,
        /// Completion time.
        at: SimTime,
    },
    /// The job can no longer complete.
    JobFailed {
        /// The job.
        job: JobId,
        /// Failure time.
        at: SimTime,
        /// Human-readable reason.
        reason: String,
    },
    /// A task failed (recovery may still be in progress).
    TaskFailed {
        /// The task.
        task: TaskId,
        /// Site it failed at.
        site: SiteId,
        /// Failure time.
        at: SimTime,
        /// Human-readable reason.
        reason: String,
    },
    /// A task was re-placed.
    TaskMoved {
        /// The task.
        task: TaskId,
        /// Old site.
        from: SiteId,
        /// New site.
        to: SiteId,
        /// When.
        at: SimTime,
        /// Why.
        reason: MoveReason,
    },
}

/// A log entry of one move decision (Figure 7 diagnostics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveRecord {
    /// The task moved.
    pub task: TaskId,
    /// Old site.
    pub from: SiteId,
    /// New site.
    pub to: SiteId,
    /// Decision instant.
    pub at: SimTime,
    /// Why.
    pub reason: MoveReason,
}

/// The execution state the Backup & Recovery module collects from the
/// execution service when a task settles (§4.2.4: "gets the execution
/// state from the execution service. This execution state is made
/// available for download").
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionState {
    /// The task.
    pub task: TaskId,
    /// Site it settled at.
    pub site: SiteId,
    /// Terminal status.
    pub status: TaskStatus,
    /// CPU time consumed.
    pub cpu_time: SimDuration,
    /// Output bytes the task produced (all of them for completed
    /// tasks, the partial output "local files ... produced by the
    /// failed job" otherwise).
    pub output_bytes: u64,
    /// When the state was collected.
    pub collected_at: SimTime,
}

/// Owner and live (unsettled) tasks of a tracked job.
fn owner_and_live_tasks(tracked: &TrackedJob) -> (UserId, Vec<TaskId>) {
    let tasks = tracked
        .plan
        .job
        .task_ids()
        .into_iter()
        .filter(|t| !tracked.tasks[t].phase.is_settled())
        .collect();
    (tracked.owner(), tasks)
}

/// The Steering Service.
pub struct SteeringService {
    grid: Arc<Grid>,
    scheduler: Arc<Scheduler>,
    jobmon: Arc<JobMonitoringService>,
    estimators: Arc<EstimatorService>,
    quota: Arc<QuotaService>,
    policy: RwLock<SteeringPolicy>,
    jobs: RwLock<HashMap<JobId, TrackedJob>>,
    task_index: RwLock<HashMap<TaskId, JobId>>,
    authorizer: JobAuthorizer,
    notifications: Mutex<Vec<Notification>>,
    moves: Mutex<Vec<MoveRecord>>,
    execution_states: Mutex<HashMap<TaskId, ExecutionState>>,
    persist: RwLock<Option<Arc<Persistence>>>,
    /// The gate whose circuit breakers guard downstream calls
    /// (execution sites and the scheduler). Installed by the
    /// composition root; absent in bare unit-test wirings.
    gate: RwLock<Option<Arc<gae_gate::Gate>>>,
    /// The observability hub spans and lifecycle marks go to.
    /// Installed by the composition root; absent in bare wirings.
    obs: RwLock<Option<Arc<gae_obs::ObsHub>>>,
}

impl SteeringService {
    /// Wires the service over its collaborators (Figure 1).
    pub fn new(
        grid: Arc<Grid>,
        scheduler: Arc<Scheduler>,
        jobmon: Arc<JobMonitoringService>,
        estimators: Arc<EstimatorService>,
        quota: Arc<QuotaService>,
        policy: SteeringPolicy,
    ) -> Self {
        SteeringService {
            grid,
            scheduler,
            jobmon,
            estimators,
            quota,
            policy: RwLock::new(policy),
            jobs: RwLock::new(HashMap::new()),
            task_index: RwLock::new(HashMap::new()),
            authorizer: JobAuthorizer::new(),
            notifications: Mutex::new(Vec::new()),
            moves: Mutex::new(Vec::new()),
            execution_states: Mutex::new(HashMap::new()),
            persist: RwLock::new(None),
            gate: RwLock::new(None),
            obs: RwLock::new(None),
        }
    }

    /// Installs the gate whose breaker bank guards downstream calls.
    pub(crate) fn attach_gate(&self, gate: Arc<gae_gate::Gate>) {
        *self.gate.write() = Some(gate);
    }

    /// Installs the observability hub: every submission from here on
    /// roots (or extends) the task's CondorId-derived trace and marks
    /// its lifecycle timeline.
    pub(crate) fn attach_obs(&self, obs: Arc<gae_obs::ObsHub>) {
        *self.obs.write() = Some(obs);
    }

    /// The breaker key for an execution site.
    fn exec_breaker_key(site: SiteId) -> String {
        format!("exec-site-{}", site.raw())
    }

    // ---- durability (Backup & Recovery's persistent half) ----

    /// Routes every future state transition through the WAL.
    pub(crate) fn attach_persistence(&self, persistence: Arc<Persistence>) {
        *self.persist.write() = Some(persistence);
    }

    /// Logs the current plan of a job. Call *after* the mutation, with
    /// no job lock held.
    fn log_plan(&self, job_id: JobId) {
        let Some(p) = self.persist.read().clone() else {
            return;
        };
        let jobs = self.jobs.read();
        if let Some(tracked) = jobs.get(&job_id) {
            p.append("plan", persist::plan_to_record(&tracked.plan));
        }
    }

    /// Logs the current tracked state of one task. Call *after* the
    /// mutation, with no job lock held.
    fn log_task(&self, job_id: JobId, task: TaskId) {
        let Some(p) = self.persist.read().clone() else {
            return;
        };
        let jobs = self.jobs.read();
        if let Some(t) = jobs.get(&job_id).and_then(|j| j.tasks.get(&task)) {
            p.append("task", persist::task_to_record(job_id, t));
        }
    }

    fn log_notified(&self, job_id: JobId) {
        if let Some(p) = self.persist.read().clone() {
            p.append(
                "notified",
                gae_wire::Value::struct_of([("job", gae_wire::Value::from(job_id.raw()))]),
            );
        }
    }

    fn log_charge(&self, record: &ChargeRecord) {
        if let Some(p) = self.persist.read().clone() {
            p.append("charge", persist::charge_to_record(record));
        }
    }

    /// Replaces (or installs) a job's plan from the WAL, *without*
    /// submitting anything — submissions are re-armed explicitly after
    /// replay finishes.
    pub(crate) fn replay_plan(&self, plan: ConcretePlan) -> GaeResult<()> {
        let job_id = plan.job_id();
        let mut jobs = self.jobs.write();
        match jobs.get_mut(&job_id) {
            Some(tracked) => {
                tracked.plan = plan;
            }
            None => {
                let tracked = TrackedJob::subscribe(plan)?;
                let mut index = self.task_index.write();
                for t in tracked.plan.job.task_ids() {
                    index.insert(t, job_id);
                }
                jobs.insert(job_id, tracked);
            }
        }
        Ok(())
    }

    /// Overwrites one task's tracked state from the WAL.
    pub(crate) fn replay_task(&self, job_id: JobId, task: TrackedTask) {
        self.task_index.write().insert(task.task, job_id);
        if let Some(tracked) = self.jobs.write().get_mut(&job_id) {
            tracked.tasks.insert(task.task, task);
        }
    }

    /// Marks a job's completion notification as already delivered.
    pub(crate) fn replay_notified(&self, job_id: JobId) {
        if let Some(tracked) = self.jobs.write().get_mut(&job_id) {
            tracked.completion_notified = true;
        }
    }

    /// Installs a whole tracked job from a snapshot.
    pub(crate) fn restore_job(&self, tracked: TrackedJob) {
        let job_id = tracked.plan.job_id();
        {
            let mut index = self.task_index.write();
            for t in tracked.plan.job.task_ids() {
                index.insert(t, job_id);
            }
        }
        self.jobs.write().insert(job_id, tracked);
    }

    /// Deterministic export of the tracker: jobs id-sorted (snapshot
    /// encoding + crash digests).
    pub fn export_jobs(&self) -> Vec<TrackedJob> {
        let jobs = self.jobs.read();
        let mut ids: Vec<&JobId> = jobs.keys().collect();
        ids.sort();
        ids.into_iter().map(|id| jobs[id].clone()).collect()
    }

    /// Exactly-once re-arm after recovery: every task the log says was
    /// in flight at the crash is resubmitted to its planned site (the
    /// old Condor id died with the process), then ready successors are
    /// submitted. Returns the resubmitted tasks, deterministic order.
    pub(crate) fn rearm_submitted(&self) -> GaeResult<Vec<TaskId>> {
        let mut inflight: Vec<(JobId, TaskId, SiteId, TaskSpec)> = Vec::new();
        {
            let jobs = self.jobs.read();
            let mut ids: Vec<&JobId> = jobs.keys().collect();
            ids.sort();
            for job_id in ids {
                let tracked = &jobs[job_id];
                let mut tasks: Vec<&TaskId> = tracked.tasks.keys().collect();
                tasks.sort();
                for t in tasks {
                    if let TaskPhase::Submitted { site, .. } = tracked.tasks[t].phase {
                        let spec = tracked
                            .plan
                            .job
                            .task(*t)
                            .ok_or_else(|| GaeError::NotFound(t.to_string()))?
                            .clone();
                        inflight.push((*job_id, *t, site, spec));
                    }
                }
            }
        }
        let mut resubmitted = Vec::with_capacity(inflight.len());
        for (job_id, task, site, spec) in inflight {
            // The checkpoint died with the process in this model;
            // restart from zero at the planned site.
            self.submit_task_to(job_id, task, site, spec, None)?;
            resubmitted.push(task);
        }
        // Jobs with no in-flight tasks may still have ready work
        // (e.g. crash landed between completion and resubmission).
        let mut job_ids: Vec<JobId> = self.jobs.read().keys().copied().collect();
        job_ids.sort();
        for job_id in job_ids {
            self.submit_ready(job_id)?;
        }
        Ok(resubmitted)
    }

    /// The Session Manager.
    pub fn authorizer(&self) -> &JobAuthorizer {
        &self.authorizer
    }

    /// The current policy.
    pub fn policy(&self) -> SteeringPolicy {
        *self.policy.read()
    }

    /// Replaces the policy at runtime.
    pub fn set_policy(&self, policy: SteeringPolicy) {
        *self.policy.write() = policy;
    }

    // ---- Subscriber ----

    /// Accepts a concrete plan from the scheduler (§4.2.1) and
    /// submits every ready task.
    pub fn subscribe_plan(&self, plan: ConcretePlan) -> GaeResult<()> {
        let job_id = plan.job_id();
        let tracked = TrackedJob::subscribe(plan)?;
        {
            let mut index = self.task_index.write();
            for t in tracked.plan.job.task_ids() {
                index.insert(t, job_id);
            }
        }
        self.jobs.write().insert(job_id, tracked);
        self.log_plan(job_id);
        self.submit_ready(job_id)
    }

    /// Submits every ready task of a job to its planned site.
    fn submit_ready(&self, job_id: JobId) -> GaeResult<()> {
        loop {
            // Snapshot the ready set without holding the lock across
            // execution-service calls.
            let ready: Vec<(TaskId, SiteId, TaskSpec)> = {
                let jobs = self.jobs.read();
                let Some(tracked) = jobs.get(&job_id) else {
                    return Ok(());
                };
                tracked
                    .ready_tasks()
                    .into_iter()
                    .filter_map(|t| {
                        let site = tracked.plan.site_of(t)?;
                        let spec = tracked.plan.job.task(t)?.clone();
                        Some((t, site, spec))
                    })
                    .collect()
            };
            if ready.is_empty() {
                return Ok(());
            }
            for (task, site, spec) in ready {
                self.submit_task_to(job_id, task, site, spec, None)?;
            }
        }
    }

    /// Submits one task, recording its submission-time runtime
    /// estimate in the site's estimate database (§6.2c).
    fn submit_task_to(
        &self,
        job_id: JobId,
        task: TaskId,
        site: SiteId,
        spec: TaskSpec,
        checkpoint: Option<Checkpoint>,
    ) -> GaeResult<()> {
        let estimate = self
            .estimators
            .estimate_runtime(site, &spec)
            .map(|e| e.runtime)
            .unwrap_or_else(|_| SimDuration::from_secs_f64(spec.requested_cpu_hours * 3600.0));
        // The site's circuit breaker: a site that failed its last N
        // submissions is not re-contacted until its cooldown probe —
        // the typed Overloaded error routes recovery elsewhere.
        let gate = self.gate.read().clone();
        if let Some(gate) = &gate {
            match gate.breaker_check(
                &Self::exec_breaker_key(site),
                gae_gate::GateClass::Production,
            ) {
                Ok(()) => gate.observe_disposition("admit", SimDuration::ZERO),
                Err(e) => {
                    gate.observe_disposition("breaker_denied", SimDuration::ZERO);
                    return Err(e);
                }
            }
        }
        let submitted = self.grid.submit(site, spec, checkpoint);
        if let Some(gate) = &gate {
            gate.breaker_record(&Self::exec_breaker_key(site), submitted.is_ok());
        }
        let condor = submitted?;
        self.estimators.record_submission(site, condor, estimate);
        // Root the task's causal tree on its CondorId (both driver
        // modes derive the same trace id) and mark the lifecycle
        // instants decided at this point. Scheduling, admission and
        // hand-off all resolve within this one virtual instant.
        if let Some(hub) = self.obs.read().clone() {
            let now = self.grid.now();
            let root = hub.condor_trace(condor.raw(), &format!("task {job_id}/{task}"), now);
            hub.span_at(root, &format!("sched.place site-{}", site.raw()), now);
            if gate.is_some() {
                hub.span_at(root, "gate.admit", now);
            }
            hub.span_at(root, &format!("steer.submit site-{}", site.raw()), now);
            hub.mark_at(condor.raw(), gae_obs::TimelineEvent::Schedule, now);
            hub.mark_at(condor.raw(), gae_obs::TimelineEvent::Admit, now);
            hub.mark_at(condor.raw(), gae_obs::TimelineEvent::Submit, now);
        }
        if let Some(tracked) = self.jobs.write().get_mut(&job_id) {
            if let Some(t) = tracked.tasks.get_mut(&task) {
                t.phase = TaskPhase::Submitted { site, condor };
            }
        }
        self.log_task(job_id, task);
        Ok(())
    }

    // ---- Command Processor (§4.2.2) ----

    /// Executes a user command against a task, enforcing the Session
    /// Manager's authorization.
    pub fn command(&self, user: UserId, task: TaskId, cmd: SteeringCommand) -> GaeResult<()> {
        let job_id = self.job_of(task)?;
        let owner = {
            let jobs = self.jobs.read();
            jobs.get(&job_id)
                .ok_or_else(|| GaeError::NotFound(job_id.to_string()))?
                .owner()
        };
        self.authorizer.authorize(user, job_id, owner)?;
        match cmd {
            SteeringCommand::Kill => {
                let (site, condor) = self.location(job_id, task)?;
                self.grid.exec(site)?.lock().kill(condor)?;
                self.grid.release_task_data(site, condor);
                if let Some(tracked) = self.jobs.write().get_mut(&job_id) {
                    tracked.tasks.get_mut(&task).expect("indexed task").phase = TaskPhase::Killed;
                }
                self.estimators.evict_submission(site, condor);
                self.log_task(job_id, task);
                Ok(())
            }
            SteeringCommand::Pause => {
                let (site, condor) = self.location(job_id, task)?;
                self.grid.exec(site)?.lock().suspend(condor)
            }
            SteeringCommand::Resume => {
                let (site, condor) = self.location(job_id, task)?;
                self.grid.exec(site)?.lock().resume(condor)
            }
            SteeringCommand::SetPriority(p) => {
                let (site, condor) = self.location(job_id, task)?;
                self.grid.exec(site)?.lock().set_priority(condor, p)
            }
            SteeringCommand::Move(target) => {
                self.move_task(job_id, task, target, MoveReason::Manual)
            }
        }
    }

    /// Applies a command to **every live task of a job** — the paper
    /// phrases the command set at job granularity ("kill, pause, and
    /// resume, change priority of the job or moving the job", §4).
    /// Returns how many tasks the command reached; per-task errors on
    /// settled tasks are skipped rather than aborting the sweep.
    pub fn command_job(
        &self,
        user: UserId,
        job_id: JobId,
        cmd: SteeringCommand,
    ) -> GaeResult<usize> {
        let (owner, tasks) = {
            let jobs = self.jobs.read();
            let tracked = jobs
                .get(&job_id)
                .ok_or_else(|| GaeError::NotFound(job_id.to_string()))?;
            owner_and_live_tasks(tracked)
        };
        self.authorizer.authorize(user, job_id, owner)?;
        let mut affected = 0;
        for task in tasks {
            if self.command(user, task, cmd).is_ok() {
                affected += 1;
            }
        }
        Ok(affected)
    }

    /// Jobs steered here that `user` owns, sorted by id.
    pub fn jobs_of(&self, user: UserId) -> Vec<JobId> {
        let mut out: Vec<JobId> = self
            .jobs
            .read()
            .iter()
            .filter(|(_, j)| j.owner() == user)
            .map(|(id, _)| *id)
            .collect();
        out.sort();
        out
    }

    fn job_of(&self, task: TaskId) -> GaeResult<JobId> {
        self.task_index
            .read()
            .get(&task)
            .copied()
            .ok_or_else(|| GaeError::NotFound(format!("{task} is not steered here")))
    }

    fn location(&self, job_id: JobId, task: TaskId) -> GaeResult<(SiteId, gae_types::CondorId)> {
        let jobs = self.jobs.read();
        jobs.get(&job_id)
            .and_then(|j| j.location(task))
            .ok_or_else(|| GaeError::NotFound(format!("{task} is not on any site")))
    }

    // ---- Optimizer (§4.2.2) + move plumbing ----

    /// Moves a task to `target` (or the Optimizer's best site if
    /// `None`), carrying a checkpoint when the task supports it.
    /// "Requests for job redirection are sent to the scheduler."
    pub fn move_task(
        &self,
        job_id: JobId,
        task: TaskId,
        target: Option<SiteId>,
        reason: MoveReason,
    ) -> GaeResult<()> {
        let (from, condor) = self.location(job_id, task)?;
        let preference = self.policy.read().preference;
        let spec_for_scoring = {
            let jobs = self.jobs.read();
            jobs.get(&job_id)
                .and_then(|j| j.plan.job.task(task).cloned())
                .ok_or_else(|| GaeError::NotFound(task.to_string()))?
        };
        let to = match target {
            Some(site) => {
                if !self.grid.is_alive(site) {
                    return Err(GaeError::ExecutionFailure(format!("{site} is down")));
                }
                site
            }
            None => {
                self.scheduler
                    .best_site(&spec_for_scoring, |_| true, &[from], preference)?
                    .site
            }
        };
        if to == from {
            return Err(GaeError::InvalidPlan(format!("{task} is already at {to}")));
        }
        // Pull the task (with checkpoint if supported) and resubmit.
        let (spec, checkpoint) = self.grid.exec(from)?.lock().remove_for_migration(condor)?;
        // The old CondorId left the source queue with the migration.
        self.estimators.evict_submission(from, condor);
        self.grid.release_task_data(from, condor);
        self.submit_task_to(job_id, task, to, spec, checkpoint)?;
        let at = self.grid.now();
        {
            let mut jobs = self.jobs.write();
            if let Some(tracked) = jobs.get_mut(&job_id) {
                tracked.plan = tracked.plan.reassigned(task, to)?;
                tracked.tasks.get_mut(&task).expect("indexed").moves += 1;
            }
        }
        self.log_task(job_id, task);
        self.log_plan(job_id);
        self.moves.lock().push(MoveRecord {
            task,
            from,
            to,
            at,
            reason,
        });
        self.notifications.lock().push(Notification::TaskMoved {
            task,
            from,
            to,
            at,
            reason,
        });
        Ok(())
    }

    // ---- Backup & Recovery + monitoring loop (§4.2.4) ----

    /// One steering round: track progress through the Job Monitoring
    /// Service, detect failures, recover, optimize, and notify.
    pub fn poll(&self) {
        let mut job_ids: Vec<JobId> = self.jobs.read().keys().copied().collect();
        // The tracker is a HashMap; process in id order so a poll
        // round is a deterministic function of the tracked state (the
        // sharded-driver equivalence contract relies on this).
        job_ids.sort();
        for job_id in job_ids {
            self.process_job(job_id);
        }
    }

    fn process_job(&self, job_id: JobId) {
        let submitted: Vec<(TaskId, SiteId, gae_types::CondorId)> = {
            let jobs = self.jobs.read();
            let Some(tracked) = jobs.get(&job_id) else {
                return;
            };
            tracked
                .plan
                .job
                .task_ids()
                .into_iter()
                .filter_map(|t| tracked.location(t).map(|(s, c)| (t, s, c)))
                .collect()
        };
        for (task, site, _condor) in submitted {
            // Backup & Recovery "continuously checks all the
            // Execution Services ... for failure".
            if !self.grid.is_alive(site) {
                self.recover_task(job_id, task, site, "execution service failed");
                continue;
            }
            let Ok(info) = self.jobmon.job_info(task) else {
                continue;
            };
            match info.status {
                TaskStatus::Completed => self.settle_completed(job_id, task, site, &info),
                TaskStatus::Failed => self.recover_task(job_id, task, site, "task failed"),
                TaskStatus::Killed => {
                    if let Some(tracked) = self.jobs.write().get_mut(&job_id) {
                        tracked.tasks.get_mut(&task).expect("indexed").phase = TaskPhase::Killed;
                    }
                    self.estimators.evict_submission(site, info.condor);
                    self.grid.release_task_data(site, info.condor);
                    self.log_task(job_id, task);
                }
                TaskStatus::Running => self.maybe_optimize(job_id, task, site, &info),
                _ => {}
            }
        }
        self.maybe_notify_settled(job_id);
    }

    fn settle_completed(
        &self,
        job_id: JobId,
        task: TaskId,
        site: SiteId,
        info: &crate::jobmon::JobMonitoringInfo,
    ) {
        {
            let mut jobs = self.jobs.write();
            let Some(tracked) = jobs.get_mut(&job_id) else {
                return;
            };
            let t = tracked.tasks.get_mut(&task).expect("indexed");
            if matches!(t.phase, TaskPhase::Done { .. }) {
                return;
            }
            t.phase = TaskPhase::Done { site };
        }
        self.log_task(job_id, task);
        // Accounting: charge the owner for the CPU actually used. The
        // charged amount is logged verbatim so replay never re-quotes.
        if let Ok(amount) = self.quota.charge(info.owner, site, info.cpu_time) {
            self.log_charge(&ChargeRecord {
                user: info.owner,
                site,
                cpu_time: info.cpu_time,
                amount,
            });
        }
        self.collect_execution_state(task, site, info);
        // Backup & Recovery collected the state: the submission-time
        // estimate for this CondorId can never be consulted again.
        self.estimators.evict_submission(site, info.condor);
        // The task is done with its inputs: release the data-plane
        // pins so the replicas become evictable.
        self.grid.release_task_data(site, info.condor);
        // Close the task's causal tree with the collection step.
        if let Some(hub) = self.obs.read().clone() {
            let now = self.grid.now();
            let root = hub.condor_trace(info.condor.raw(), &format!("task {job_id}/{task}"), now);
            hub.span_at(root, "steer.collect", now);
        }
        // Completion may unblock successors.
        let _ = self.submit_ready(job_id);
    }

    /// §4.2.4: pulls the execution state (including the output files
    /// produced so far) from the execution service and keeps it for
    /// download.
    fn collect_execution_state(
        &self,
        task: TaskId,
        site: SiteId,
        info: &crate::jobmon::JobMonitoringInfo,
    ) {
        self.execution_states.lock().insert(
            task,
            ExecutionState {
                task,
                site,
                status: info.status,
                cpu_time: info.cpu_time,
                output_bytes: info.output_io,
                collected_at: self.grid.now(),
            },
        );
    }

    /// The collected execution state of a settled task, if any.
    pub fn execution_state(&self, task: TaskId) -> Option<ExecutionState> {
        self.execution_states.lock().get(&task).cloned()
    }

    /// A Clarens web-interface handler serving `/state/<task-id>`
    /// downloads of collected execution state — "this execution state
    /// is made available for download on the web interface" (§4.2.4).
    /// Register with [`gae_rpc::ServiceHost::register_web`].
    pub fn web_handler(
        self: &std::sync::Arc<Self>,
    ) -> impl Fn(&str) -> Option<(String, Vec<u8>)> + Send + Sync + 'static {
        let service = std::sync::Arc::downgrade(self);
        move |path: &str| {
            let service = service.upgrade()?;
            let id = path.strip_prefix("/state/")?;
            let task: TaskId = id.parse().ok()?;
            let state = service.execution_state(task)?;
            let body = format!(
                "task: {}\nsite: {}\nstatus: {}\ncpu_time_s: {:.3}\n\
                 output_bytes: {}\ncollected_at_s: {:.3}\n",
                state.task,
                state.site,
                state.status,
                state.cpu_time.as_secs_f64(),
                state.output_bytes,
                state.collected_at.as_secs_f64(),
            );
            Some(("text/plain; charset=utf-8".to_string(), body.into_bytes()))
        }
    }

    /// Updates bookkeeping after an execution-layer migration the
    /// steering service did not itself initiate (flocking): the task
    /// is now at `to` under a new Condor id.
    pub fn note_external_move(
        &self,
        task: TaskId,
        from: SiteId,
        to: SiteId,
        condor: gae_types::CondorId,
    ) {
        let Ok(job_id) = self.job_of(task) else {
            return;
        };
        let at = self.grid.now();
        {
            let mut jobs = self.jobs.write();
            let Some(tracked) = jobs.get_mut(&job_id) else {
                return;
            };
            if let Some(t) = tracked.tasks.get_mut(&task) {
                // The previous CondorId died with the flock; drop its
                // estimate so the §6.2 database tracks live ids only.
                if let TaskPhase::Submitted {
                    site: old_site,
                    condor: old_condor,
                } = t.phase
                {
                    self.estimators.evict_submission(old_site, old_condor);
                }
                t.phase = TaskPhase::Submitted { site: to, condor };
                t.moves += 1;
            }
            if let Ok(replanned) = tracked.plan.reassigned(task, to) {
                tracked.plan = replanned;
            }
        }
        self.log_task(job_id, task);
        self.log_plan(job_id);
        self.moves.lock().push(MoveRecord {
            task,
            from,
            to,
            at,
            reason: MoveReason::Flocked,
        });
    }

    /// Backup & Recovery: contact the scheduler for a new execution
    /// service and resubmit; give up after the policy's attempt cap.
    fn recover_task(&self, job_id: JobId, task: TaskId, failed_site: SiteId, reason: &str) {
        let at = self.grid.now();
        // "It then contacts the execution service to get all the
        // local files that were produced by the failed job" (§4.2.4).
        if let Ok(info) = self.jobmon.job_info(task) {
            self.collect_execution_state(task, failed_site, &info);
            self.estimators.evict_submission(failed_site, info.condor);
            self.grid.release_task_data(failed_site, info.condor);
        }
        self.notifications.lock().push(Notification::TaskFailed {
            task,
            site: failed_site,
            at,
            reason: reason.to_string(),
        });
        let (attempts_exceeded, plan) = {
            let mut jobs = self.jobs.write();
            let Some(tracked) = jobs.get_mut(&job_id) else {
                return;
            };
            let t = tracked.tasks.get_mut(&task).expect("indexed");
            t.recovery_attempts += 1;
            (
                t.recovery_attempts > self.policy.read().max_recovery_attempts,
                tracked.plan.clone(),
            )
        };
        self.log_task(job_id, task);
        if attempts_exceeded {
            self.fail_task(job_id, task, "recovery attempts exhausted");
            return;
        }
        let preference = self.policy.read().preference;
        // The scheduler's breaker: a scheduler failing every
        // reschedule in a row is left alone for a cooldown instead of
        // being hammered once per recovery.
        let gate = self.gate.read().clone();
        if let Some(gate) = &gate {
            if let Err(e) = gate.breaker_check("sched", gae_gate::GateClass::Production) {
                self.fail_task(job_id, task, &format!("scheduler breaker open: {e}"));
                return;
            }
        }
        let rescheduled = self
            .scheduler
            .reschedule_task(&plan, task, &[failed_site], preference);
        if let Some(gate) = &gate {
            gate.breaker_record("sched", rescheduled.is_ok());
        }
        match rescheduled {
            Ok(new_plan) => {
                let new_site = new_plan.site_of(task).expect("rescheduled task");
                let spec = new_plan.job.task(task).expect("known task").clone();
                {
                    let mut jobs = self.jobs.write();
                    if let Some(tracked) = jobs.get_mut(&job_id) {
                        tracked.plan = new_plan;
                    }
                }
                self.log_plan(job_id);
                // Failure lost the in-memory state; restart from zero
                // (a checkpointable task's checkpoint died with the
                // site in this model).
                if self
                    .submit_task_to(job_id, task, new_site, spec, None)
                    .is_ok()
                {
                    self.moves.lock().push(MoveRecord {
                        task,
                        from: failed_site,
                        to: new_site,
                        at,
                        reason: MoveReason::Recovery,
                    });
                    self.notifications.lock().push(Notification::TaskMoved {
                        task,
                        from: failed_site,
                        to: new_site,
                        at,
                        reason: MoveReason::Recovery,
                    });
                } else {
                    self.fail_task(job_id, task, "resubmission failed");
                }
            }
            Err(e) => {
                self.fail_task(job_id, task, &format!("no replacement site: {e}"));
            }
        }
    }

    fn fail_task(&self, job_id: JobId, task: TaskId, reason: &str) {
        let at = self.grid.now();
        {
            let mut jobs = self.jobs.write();
            if let Some(tracked) = jobs.get_mut(&job_id) {
                tracked.tasks.get_mut(&task).expect("indexed").phase = TaskPhase::Failed;
            }
        }
        self.log_task(job_id, task);
        self.notifications.lock().push(Notification::JobFailed {
            job: job_id,
            at,
            reason: format!("{task}: {reason}"),
        });
    }

    /// The Optimizer's autonomous decision (§7's Figure 7 behaviour):
    /// if a running task accrues CPU time much slower than wall time
    /// and a markedly better site exists, move it.
    fn maybe_optimize(
        &self,
        job_id: JobId,
        task: TaskId,
        site: SiteId,
        info: &crate::jobmon::JobMonitoringInfo,
    ) {
        let policy = *self.policy.read();
        if !policy.auto_move {
            return;
        }
        if info.elapsed < policy.min_observation {
            return;
        }
        let elapsed = info.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            return;
        }
        let rate = info.cpu_time.as_secs_f64() / elapsed;
        if rate >= policy.slow_rate_threshold {
            return;
        }
        let spec = {
            let jobs = self.jobs.read();
            let Some(s) = jobs
                .get(&job_id)
                .and_then(|j| j.plan.job.task(task).cloned())
            else {
                return;
            };
            s
        };
        let Ok(candidate) = self
            .scheduler
            .best_site(&spec, |_| true, &[site], policy.preference)
        else {
            return;
        };
        // Only move if the candidate's effective rate beats the
        // observed one with margin (moving costs a restart unless the
        // task checkpoints).
        let candidate_rate = 1.0 / (1.0 + candidate.estimate.load.max(0.0));
        if candidate_rate <= rate * 1.5 {
            return;
        }
        // Xfer-aware veto: a move re-stages the task's inputs at the
        // candidate, so price staying (finish at the observed rate)
        // against moving (queue + transfer over the live link
        // estimate + restarted execution under the candidate's load)
        // and only move when the candidate still wins by 20 %.
        if policy.xfer_aware && !spec.input_files.is_empty() {
            let remaining = info
                .remaining_time
                .map(|d| d.as_secs_f64())
                .unwrap_or_else(|| spec.requested_cpu_hours * 3600.0)
                .max(1.0);
            let stay_secs = remaining / rate.max(1e-6);
            let est = &candidate.estimate;
            let move_secs = est.queue_time.as_secs_f64()
                + est.transfer_time.as_secs_f64()
                + remaining / candidate_rate;
            if move_secs * 1.2 >= stay_secs {
                return;
            }
        }
        let _ = self.move_task(job_id, task, Some(candidate.site), MoveReason::SlowProgress);
    }

    fn maybe_notify_settled(&self, job_id: JobId) {
        let (completed, failed) = {
            let mut jobs = self.jobs.write();
            let Some(tracked) = jobs.get_mut(&job_id) else {
                return;
            };
            if tracked.completion_notified || !tracked.is_settled() {
                return;
            }
            tracked.completion_notified = true;
            (tracked.is_completed(), tracked.is_failed())
        };
        self.log_notified(job_id);
        let at = self.grid.now();
        if completed {
            // "For completed jobs, the Backup and Recovery module
            // notifies the client about the completion of the job and
            // gets the execution state from the execution service."
            self.notifications
                .lock()
                .push(Notification::JobCompleted { job: job_id, at });
        } else if failed {
            self.notifications.lock().push(Notification::JobFailed {
                job: job_id,
                at,
                reason: "one or more tasks failed or were killed".into(),
            });
        }
    }

    // ---- introspection ----

    /// Steering-side snapshot of a job.
    pub fn tracked_job(&self, job: JobId) -> Option<TrackedJob> {
        self.jobs.read().get(&job).cloned()
    }

    /// Drains pending client notifications.
    pub fn drain_notifications(&self) -> Vec<Notification> {
        std::mem::take(&mut self.notifications.lock())
    }

    /// The move log (Figure 7 diagnostics).
    pub fn move_log(&self) -> Vec<MoveRecord> {
        self.moves.lock().clone()
    }

    /// Convenience for clients: (cpu time, elapsed, progress) of a
    /// task, via the Job Monitoring Service — the numbers the Figure 7
    /// chart plots.
    pub fn job_progress(&self, task: TaskId) -> GaeResult<(SimDuration, SimDuration, f64)> {
        let info = self.jobmon.job_info(task)?;
        Ok((info.cpu_time, info.elapsed, info.progress))
    }

    /// The optimizer's preference currently in force.
    pub fn preference(&self) -> OptimizationPreference {
        self.policy.read().preference
    }
}
