//! The Steering Service (§4): "allows users to interact with
//! submitted jobs ... kill, pause, and resume, change priority of the
//! job or moving the job to some other execution site", with
//! autonomous optimization and failure recovery.
//!
//! Component mapping (Figure 2):
//!
//! * **Subscriber** ([`state`]) — ingests concrete job plans from the
//!   scheduler and tracks which execution services host which tasks;
//! * **Command Processor** ([`service`], `command` methods) — client
//!   job control, with redirection requests routed to the scheduler;
//! * **Optimizer** ([`service`], `optimize`/`move` paths) — finds the
//!   "Best Site" under the *cheap* or *fast* preference using the
//!   Quota and Accounting Service and the Estimators;
//! * **Backup & Recovery** ([`service`], `poll` path) — watches the
//!   execution services for failure, has the scheduler re-allocate,
//!   resubmits, and notifies the client;
//! * **Session Manager** ([`session`]) — "makes sure that the
//!   authorized users steer the jobs".

pub mod rpc;
#[allow(clippy::module_inception)]
pub mod service;
pub mod session;
pub mod state;

pub use rpc::SteeringRpc;
pub use service::{
    ExecutionState, MoveReason, MoveRecord, Notification, SteeringCommand, SteeringService,
};
pub use session::JobAuthorizer;
pub use state::{TaskPhase, TrackedJob};

use gae_types::{OptimizationPreference, SimDuration};

/// Tunables of the steering loop.
#[derive(Clone, Copy, Debug)]
pub struct SteeringPolicy {
    /// Whether the Optimizer may move slow jobs autonomously (the
    /// paper's Figure 7 behaviour; users "could have moved the job
    /// ... manually as well").
    pub auto_move: bool,
    /// Minimum elapsed observation before judging a task slow.
    pub min_observation: SimDuration,
    /// Move when accrual rate (CPU time / elapsed) drops below this.
    pub slow_rate_threshold: f64,
    /// Default optimization preference for autonomous decisions.
    pub preference: OptimizationPreference,
    /// How many times Backup & Recovery resubmits a failing task
    /// before declaring the job failed.
    pub max_recovery_attempts: u32,
    /// Price migrations with transfer cost: when a slow task has
    /// staged inputs, the Optimizer only moves it if the candidate
    /// site still wins after re-staging those inputs over the live
    /// link estimate (queue + transfer + loaded execution), with a
    /// 20 % margin. Tasks without inputs are unaffected.
    pub xfer_aware: bool,
}

impl Default for SteeringPolicy {
    fn default() -> Self {
        SteeringPolicy {
            auto_move: true,
            min_observation: SimDuration::from_secs(60),
            slow_rate_threshold: 0.5,
            preference: OptimizationPreference::Fast,
            max_recovery_attempts: 3,
            xfer_aware: true,
        }
    }
}

impl SteeringPolicy {
    /// A policy with autonomous optimization disabled (manual
    /// steering only).
    pub fn manual() -> Self {
        SteeringPolicy {
            auto_move: false,
            ..Self::default()
        }
    }
}
