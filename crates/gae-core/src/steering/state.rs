//! The Subscriber's bookkeeping (§4.2.1).
//!
//! "A scheduler sends a 'concrete job plan' to the Steering Service.
//! The Subscriber analyzes the received job plan to get the list of
//! Execution Services to be used for the execution of the job."

use gae_types::{ConcretePlan, CondorId, GaeResult, SiteId, TaskId, UserId};
use std::collections::HashMap;

/// Where one task currently is in its steering lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskPhase {
    /// Prerequisites not yet complete; not submitted anywhere.
    WaitingPrereqs,
    /// Submitted to a site's execution service.
    Submitted {
        /// Hosting site.
        site: SiteId,
        /// Site-local id.
        condor: CondorId,
    },
    /// Completed successfully at `site`.
    Done {
        /// Where it completed.
        site: SiteId,
    },
    /// Permanently failed (recovery exhausted).
    Failed,
    /// Killed by a steering command.
    Killed,
}

impl TaskPhase {
    /// True once the task needs no further steering.
    pub fn is_settled(self) -> bool {
        matches!(
            self,
            TaskPhase::Done { .. } | TaskPhase::Failed | TaskPhase::Killed
        )
    }
}

/// Steering-side record of one task.
#[derive(Clone, Debug)]
pub struct TrackedTask {
    /// The task.
    pub task: TaskId,
    /// Current phase.
    pub phase: TaskPhase,
    /// Recovery resubmissions so far.
    pub recovery_attempts: u32,
    /// Autonomous/manual moves so far.
    pub moves: u32,
}

/// Steering-side record of one job (the subscribed plan plus task
/// phases).
#[derive(Clone, Debug)]
pub struct TrackedJob {
    /// The concrete plan, kept current across reschedules.
    pub plan: ConcretePlan,
    /// Per-task steering state.
    pub tasks: HashMap<TaskId, TrackedTask>,
    /// Whether the client was already told the job finished.
    pub completion_notified: bool,
}

impl TrackedJob {
    /// Subscribes a plan: every task starts unsubmitted.
    pub fn subscribe(plan: ConcretePlan) -> GaeResult<TrackedJob> {
        plan.job.validate()?;
        let tasks = plan
            .job
            .task_ids()
            .into_iter()
            .map(|t| {
                (
                    t,
                    TrackedTask {
                        task: t,
                        phase: TaskPhase::WaitingPrereqs,
                        recovery_attempts: 0,
                        moves: 0,
                    },
                )
            })
            .collect();
        Ok(TrackedJob {
            plan,
            tasks,
            completion_notified: false,
        })
    }

    /// The job's owner (for the Session Manager).
    pub fn owner(&self) -> UserId {
        self.plan.job.owner
    }

    /// The execution services the plan uses — what the paper's
    /// Subscriber extracts.
    pub fn sites(&self) -> Vec<SiteId> {
        self.plan.sites()
    }

    /// Tasks whose prerequisites are all done and which are still
    /// waiting — ready for submission.
    pub fn ready_tasks(&self) -> Vec<TaskId> {
        self.plan
            .job
            .task_ids()
            .into_iter()
            .filter(|t| {
                matches!(self.tasks[t].phase, TaskPhase::WaitingPrereqs)
                    && self
                        .plan
                        .job
                        .prerequisites(*t)
                        .iter()
                        .all(|p| matches!(self.tasks[p].phase, TaskPhase::Done { .. }))
            })
            .collect()
    }

    /// True once every task reached a settled phase.
    pub fn is_settled(&self) -> bool {
        self.tasks.values().all(|t| t.phase.is_settled())
    }

    /// True if every task completed successfully.
    pub fn is_completed(&self) -> bool {
        self.tasks
            .values()
            .all(|t| matches!(t.phase, TaskPhase::Done { .. }))
    }

    /// True if any task permanently failed or was killed.
    pub fn is_failed(&self) -> bool {
        self.tasks
            .values()
            .any(|t| matches!(t.phase, TaskPhase::Failed | TaskPhase::Killed))
    }

    /// Where a task currently runs, if submitted.
    pub fn location(&self, task: TaskId) -> Option<(SiteId, CondorId)> {
        match self.tasks.get(&task)?.phase {
            TaskPhase::Submitted { site, condor } => Some((site, condor)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::{JobId, JobSpec, PlanId, TaskAssignment, TaskSpec};

    fn plan() -> ConcretePlan {
        let mut job = JobSpec::new(JobId::new(1), "j", UserId::new(9));
        for i in 1..=3 {
            job.add_task(TaskSpec::new(TaskId::new(i), format!("t{i}"), "x"));
        }
        job.add_dependency(TaskId::new(1), TaskId::new(3));
        job.add_dependency(TaskId::new(2), TaskId::new(3));
        ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![
                TaskAssignment {
                    task: TaskId::new(1),
                    site: SiteId::new(1),
                },
                TaskAssignment {
                    task: TaskId::new(2),
                    site: SiteId::new(2),
                },
                TaskAssignment {
                    task: TaskId::new(3),
                    site: SiteId::new(1),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn subscribe_extracts_sites_and_owner() {
        let tracked = TrackedJob::subscribe(plan()).unwrap();
        assert_eq!(tracked.sites(), vec![SiteId::new(1), SiteId::new(2)]);
        assert_eq!(tracked.owner(), UserId::new(9));
        assert!(!tracked.is_settled());
        assert!(!tracked.is_completed());
    }

    #[test]
    fn ready_tasks_respect_dag() {
        let mut tracked = TrackedJob::subscribe(plan()).unwrap();
        assert_eq!(tracked.ready_tasks(), vec![TaskId::new(1), TaskId::new(2)]);
        tracked.tasks.get_mut(&TaskId::new(1)).unwrap().phase = TaskPhase::Done {
            site: SiteId::new(1),
        };
        // Task 3 still blocked on task 2.
        assert_eq!(tracked.ready_tasks(), vec![TaskId::new(2)]);
        tracked.tasks.get_mut(&TaskId::new(2)).unwrap().phase = TaskPhase::Done {
            site: SiteId::new(2),
        };
        assert_eq!(tracked.ready_tasks(), vec![TaskId::new(3)]);
    }

    #[test]
    fn completion_and_failure_predicates() {
        let mut tracked = TrackedJob::subscribe(plan()).unwrap();
        for t in tracked.plan.job.task_ids() {
            tracked.tasks.get_mut(&t).unwrap().phase = TaskPhase::Done {
                site: SiteId::new(1),
            };
        }
        assert!(tracked.is_settled());
        assert!(tracked.is_completed());
        assert!(!tracked.is_failed());
        tracked.tasks.get_mut(&TaskId::new(2)).unwrap().phase = TaskPhase::Failed;
        assert!(tracked.is_failed());
        assert!(!tracked.is_completed());
    }

    #[test]
    fn location_only_for_submitted() {
        let mut tracked = TrackedJob::subscribe(plan()).unwrap();
        assert!(tracked.location(TaskId::new(1)).is_none());
        tracked.tasks.get_mut(&TaskId::new(1)).unwrap().phase = TaskPhase::Submitted {
            site: SiteId::new(1),
            condor: CondorId::new(5),
        };
        assert_eq!(
            tracked.location(TaskId::new(1)),
            Some((SiteId::new(1), CondorId::new(5)))
        );
        assert!(tracked.location(TaskId::new(99)).is_none());
    }

    #[test]
    fn phase_settlement() {
        assert!(TaskPhase::Done {
            site: SiteId::new(1)
        }
        .is_settled());
        assert!(TaskPhase::Failed.is_settled());
        assert!(TaskPhase::Killed.is_settled());
        assert!(!TaskPhase::WaitingPrereqs.is_settled());
        assert!(!TaskPhase::Submitted {
            site: SiteId::new(1),
            condor: CondorId::new(1)
        }
        .is_settled());
    }
}
