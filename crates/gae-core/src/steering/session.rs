//! The Session Manager (§4.2.5): "makes sure that the authorized
//! users steer the jobs."
//!
//! Authorization model: a job may be steered by its owner or by a
//! registered operator. (Authentication itself — who holds which
//! session — is the Clarens layer's job, `gae_rpc::auth`.)

use gae_types::{GaeError, GaeResult, JobId, UserId};
use parking_lot::RwLock;
use std::collections::HashSet;

/// Decides who may steer which job.
pub struct JobAuthorizer {
    operators: RwLock<HashSet<UserId>>,
}

impl JobAuthorizer {
    /// No operators; only owners may steer.
    pub fn new() -> Self {
        JobAuthorizer {
            operators: RwLock::new(HashSet::new()),
        }
    }

    /// Grants a user operator rights (may steer any job).
    pub fn add_operator(&self, user: UserId) {
        self.operators.write().insert(user);
    }

    /// Revokes operator rights.
    pub fn remove_operator(&self, user: UserId) -> bool {
        self.operators.write().remove(&user)
    }

    /// True if `user` is an operator.
    pub fn is_operator(&self, user: UserId) -> bool {
        self.operators.read().contains(&user)
    }

    /// Enforces that `user` may steer `job` (owned by `owner`).
    pub fn authorize(&self, user: UserId, job: JobId, owner: UserId) -> GaeResult<()> {
        if user == owner || self.is_operator(user) {
            Ok(())
        } else {
            Err(GaeError::Unauthorized(format!(
                "{user} may not steer {job} (owned by {owner})"
            )))
        }
    }
}

impl Default for JobAuthorizer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_may_steer() {
        let auth = JobAuthorizer::new();
        assert!(auth
            .authorize(UserId::new(1), JobId::new(1), UserId::new(1))
            .is_ok());
    }

    #[test]
    fn stranger_may_not() {
        let auth = JobAuthorizer::new();
        let err = auth
            .authorize(UserId::new(2), JobId::new(1), UserId::new(1))
            .unwrap_err();
        assert!(matches!(err, GaeError::Unauthorized(_)));
    }

    #[test]
    fn operators_may_steer_anything() {
        let auth = JobAuthorizer::new();
        auth.add_operator(UserId::new(7));
        assert!(auth.is_operator(UserId::new(7)));
        assert!(auth
            .authorize(UserId::new(7), JobId::new(1), UserId::new(1))
            .is_ok());
        assert!(auth.remove_operator(UserId::new(7)));
        assert!(!auth.remove_operator(UserId::new(7)));
        assert!(auth
            .authorize(UserId::new(7), JobId::new(1), UserId::new(1))
            .is_err());
    }
}
