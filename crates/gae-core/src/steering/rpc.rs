//! The steering XML-RPC facade, registered as the `steering` service.
//!
//! Every method requires an authenticated session; the Session
//! Manager then checks the caller owns the job (or is an operator).

use crate::steering::service::{SteeringCommand, SteeringService};
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{GaeResult, Priority, SiteId, TaskId};
use gae_wire::Value;
use std::sync::Arc;

/// XML-RPC wrapper over [`SteeringService`].
pub struct SteeringRpc {
    service: Arc<SteeringService>,
}

impl SteeringRpc {
    /// Wraps the service for RPC registration.
    pub fn new(service: Arc<SteeringService>) -> Self {
        SteeringRpc { service }
    }

    fn task_param(params: &[Value], i: usize) -> GaeResult<TaskId> {
        Ok(TaskId::new(
            params
                .get(i)
                .ok_or_else(|| gae_types::GaeError::Parse(format!("missing parameter {i}")))?
                .as_u64()?,
        ))
    }
}

impl Service for SteeringRpc {
    fn name(&self) -> &'static str {
        "steering"
    }

    fn call(&self, ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        let user = ctx.require_user()?;
        match method {
            "kill" => {
                let task = Self::task_param(params, 0)?;
                self.service.command(user, task, SteeringCommand::Kill)?;
                Ok(Value::Bool(true))
            }
            "pause" => {
                let task = Self::task_param(params, 0)?;
                self.service.command(user, task, SteeringCommand::Pause)?;
                Ok(Value::Bool(true))
            }
            "resume" => {
                let task = Self::task_param(params, 0)?;
                self.service.command(user, task, SteeringCommand::Resume)?;
                Ok(Value::Bool(true))
            }
            "set_priority" => {
                let task = Self::task_param(params, 0)?;
                let level = params
                    .get(1)
                    .ok_or_else(|| gae_types::GaeError::Parse("missing priority".into()))?
                    .as_i32()?;
                self.service.command(
                    user,
                    task,
                    SteeringCommand::SetPriority(Priority::new(level)),
                )?;
                Ok(Value::Bool(true))
            }
            "move" => {
                let task = Self::task_param(params, 0)?;
                // Second parameter: target site id, or 0/absent for
                // "let the Optimizer choose".
                let target = match params.get(1) {
                    Some(v) if !v.is_nil() => {
                        let raw = v.as_u64()?;
                        if raw == 0 {
                            None
                        } else {
                            Some(SiteId::new(raw))
                        }
                    }
                    _ => None,
                };
                self.service
                    .command(user, task, SteeringCommand::Move(target))?;
                Ok(Value::Bool(true))
            }
            "kill_job" | "pause_job" | "resume_job" => {
                let job = gae_types::JobId::new(
                    params
                        .first()
                        .ok_or_else(|| gae_types::GaeError::Parse("missing job id".into()))?
                        .as_u64()?,
                );
                let cmd = match method {
                    "kill_job" => SteeringCommand::Kill,
                    "pause_job" => SteeringCommand::Pause,
                    _ => SteeringCommand::Resume,
                };
                let affected = self.service.command_job(user, job, cmd)?;
                Ok(Value::Int64(affected as i64))
            }
            "set_job_priority" => {
                let job = gae_types::JobId::new(
                    params
                        .first()
                        .ok_or_else(|| gae_types::GaeError::Parse("missing job id".into()))?
                        .as_u64()?,
                );
                let level = params
                    .get(1)
                    .ok_or_else(|| gae_types::GaeError::Parse("missing priority".into()))?
                    .as_i32()?;
                let affected = self.service.command_job(
                    user,
                    job,
                    SteeringCommand::SetPriority(Priority::new(level)),
                )?;
                Ok(Value::Int64(affected as i64))
            }
            "my_jobs" => Ok(Value::Array(
                self.service
                    .jobs_of(user)
                    .into_iter()
                    .map(|j| Value::from(j.raw()))
                    .collect(),
            )),
            "execution_state" => {
                let task = Self::task_param(params, 0)?;
                match self.service.execution_state(task) {
                    Some(state) => Ok(Value::struct_of([
                        ("task", Value::from(state.task.raw())),
                        ("site", Value::from(state.site.raw())),
                        ("status", Value::from(state.status.to_string())),
                        ("cpu_time_s", Value::from(state.cpu_time.as_secs_f64())),
                        ("output_bytes", Value::from(state.output_bytes)),
                        ("collected_us", Value::from(state.collected_at.as_micros())),
                    ])),
                    None => Ok(Value::Nil),
                }
            }
            "job_progress" => {
                let task = Self::task_param(params, 0)?;
                let (cpu, elapsed, progress) = self.service.job_progress(task)?;
                Ok(Value::struct_of([
                    ("cpu_time_s", Value::from(cpu.as_secs_f64())),
                    ("elapsed_s", Value::from(elapsed.as_secs_f64())),
                    ("progress", Value::from(progress)),
                ]))
            }
            other => Err(gae_rpc::service::unknown_method("steering", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "kill",
                help: "kill a task (owner or operator only)",
            },
            MethodInfo {
                name: "pause",
                help: "suspend a running task",
            },
            MethodInfo {
                name: "resume",
                help: "resume a suspended task",
            },
            MethodInfo {
                name: "set_priority",
                help: "change a task's priority",
            },
            MethodInfo {
                name: "move",
                help: "move a task to a site (0 = let the optimizer choose)",
            },
            MethodInfo {
                name: "job_progress",
                help: "cpu time, elapsed time and progress fraction of a task",
            },
            MethodInfo {
                name: "execution_state",
                help: "collected execution state of a settled task, or nil",
            },
            MethodInfo {
                name: "kill_job",
                help: "kill every live task of a job",
            },
            MethodInfo {
                name: "pause_job",
                help: "suspend every live task of a job",
            },
            MethodInfo {
                name: "resume_job",
                help: "resume every live task of a job",
            },
            MethodInfo {
                name: "set_job_priority",
                help: "change the priority of every live task of a job",
            },
            MethodInfo {
                name: "my_jobs",
                help: "job ids owned by the calling session",
            },
        ]
    }
}
