//! Remote job submission: the wire codec for job specifications and
//! concrete plans, plus the `scheduler` RPC facade.
//!
//! The paper's clients are remote (Figure 1: "Client" talks to every
//! service over SOAP/XML-RPC); this module lets them hand a whole job
//! — tasks, DAG edges, file lists, preferences — to the scheduler in
//! one `scheduler.submit_job` call and receive the concrete plan
//! back.

use crate::grid::ServiceStack;
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{
    AbstractPlan, ConcretePlan, FileRef, GaeError, GaeResult, JobId, JobSpec,
    OptimizationPreference, Priority, SimDuration, SiteId, TaskId, TaskSpec,
};
use gae_wire::Value;
use std::sync::{Arc, Weak};

// ---- wire codecs ----

/// Encodes a file reference.
pub fn file_to_value(f: &FileRef) -> Value {
    Value::struct_of([
        ("lfn", Value::from(f.logical_name.as_str())),
        ("size", Value::from(f.size_bytes)),
        (
            "replicas",
            Value::Array(f.replicas.iter().map(|s| Value::from(s.raw())).collect()),
        ),
    ])
}

/// Decodes a file reference.
pub fn file_from_value(v: &Value) -> GaeResult<FileRef> {
    let mut f = FileRef::new(v.member("lfn")?.as_str()?, v.member("size")?.as_u64()?);
    for s in v.member("replicas")?.as_array()? {
        f.replicas.push(SiteId::new(s.as_u64()?));
    }
    Ok(f)
}

/// Encodes a task specification.
pub fn task_to_value(t: &TaskSpec) -> Value {
    Value::struct_of([
        ("id", Value::from(t.id.raw())),
        ("name", Value::from(t.name.as_str())),
        ("executable", Value::from(t.executable.as_str())),
        (
            "args",
            Value::Array(t.args.iter().map(|a| Value::from(a.as_str())).collect()),
        ),
        ("priority", Value::Int(t.priority.level())),
        ("requested_nodes", Value::from(t.requested_nodes)),
        ("requested_cpu_hours", Value::from(t.requested_cpu_hours)),
        ("queue", Value::from(t.queue.as_str())),
        ("partition", Value::from(t.partition.as_str())),
        ("job_type", Value::from(t.job_type.to_string())),
        (
            "input_files",
            Value::Array(t.input_files.iter().map(file_to_value).collect()),
        ),
        (
            "output_files",
            Value::Array(t.output_files.iter().map(file_to_value).collect()),
        ),
        (
            "env",
            Value::Array(
                t.env
                    .iter()
                    .map(|(k, v)| {
                        Value::struct_of([
                            ("name", Value::from(k.as_str())),
                            ("value", Value::from(v.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cpu_demand_s",
            t.true_cpu_demand.map(|d| d.as_secs_f64()).into(),
        ),
        ("checkpointable", Value::Bool(t.checkpointable)),
    ])
}

/// Decodes a task specification.
pub fn task_from_value(v: &Value) -> GaeResult<TaskSpec> {
    let mut t = TaskSpec::new(
        TaskId::new(v.member("id")?.as_u64()?),
        v.member("name")?.as_str()?,
        v.member("executable")?.as_str()?,
    );
    for a in v.member("args")?.as_array()? {
        t.args.push(a.as_str()?.to_string());
    }
    t.priority = Priority::new(v.member("priority")?.as_i32()?);
    t.requested_nodes = v.member("requested_nodes")?.as_u64()? as u32;
    t.requested_cpu_hours = v.member("requested_cpu_hours")?.as_f64()?;
    t.queue = v.member("queue")?.as_str()?.to_string();
    t.partition = v.member("partition")?.as_str()?.to_string();
    t.job_type = v.member("job_type")?.as_str()?.parse()?;
    for f in v.member("input_files")?.as_array()? {
        t.input_files.push(file_from_value(f)?);
    }
    for f in v.member("output_files")?.as_array()? {
        t.output_files.push(file_from_value(f)?);
    }
    for e in v.member("env")?.as_array()? {
        t.env.push((
            e.member("name")?.as_str()?.to_string(),
            e.member("value")?.as_str()?.to_string(),
        ));
    }
    if let Some(d) = v.member_opt("cpu_demand_s")? {
        t.true_cpu_demand = Some(SimDuration::from_secs_f64(d.as_f64()?));
    }
    t.checkpointable = v.member("checkpointable")?.as_bool()?;
    Ok(t)
}

/// Encodes a whole job (the caller's identity provides the owner).
pub fn job_to_value(job: &JobSpec) -> Value {
    Value::struct_of([
        ("id", Value::from(job.id.raw())),
        ("name", Value::from(job.name.as_str())),
        (
            "tasks",
            Value::Array(job.tasks.iter().map(task_to_value).collect()),
        ),
        (
            "dependencies",
            Value::Array(
                job.dependencies
                    .iter()
                    .map(|(a, b)| {
                        Value::struct_of([
                            ("before", Value::from(a.raw())),
                            ("after", Value::from(b.raw())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a job, assigning `owner` (remote clients cannot submit on
/// someone else's behalf).
pub fn job_from_value(v: &Value, owner: gae_types::UserId) -> GaeResult<JobSpec> {
    let mut job = JobSpec::new(
        JobId::new(v.member("id")?.as_u64()?),
        v.member("name")?.as_str()?,
        owner,
    );
    for t in v.member("tasks")?.as_array()? {
        job.add_task(task_from_value(t)?);
    }
    for d in v.member("dependencies")?.as_array()? {
        job.add_dependency(
            TaskId::new(d.member("before")?.as_u64()?),
            TaskId::new(d.member("after")?.as_u64()?),
        );
    }
    Ok(job)
}

/// Encodes a concrete plan for the response.
pub fn plan_to_value(plan: &ConcretePlan) -> Value {
    Value::struct_of([
        ("plan", Value::from(plan.id.raw())),
        ("job", Value::from(plan.job_id().raw())),
        ("revision", Value::from(u64::from(plan.revision))),
        (
            "assignments",
            Value::Array(
                plan.assignments
                    .iter()
                    .map(|a| {
                        Value::struct_of([
                            ("task", Value::from(a.task.raw())),
                            ("site", Value::from(a.site.raw())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---- the RPC facade ----

/// The `scheduler` RPC service: remote job submission.
pub struct SchedulerRpc {
    stack: Weak<ServiceStack>,
}

impl SchedulerRpc {
    /// Wraps the service stack for RPC registration (weak: the host
    /// must not keep the stack alive).
    pub fn new(stack: &Arc<ServiceStack>) -> Self {
        SchedulerRpc {
            stack: Arc::downgrade(stack),
        }
    }

    fn stack(&self) -> GaeResult<Arc<ServiceStack>> {
        self.stack
            .upgrade()
            .ok_or_else(|| GaeError::ExecutionFailure("service stack shut down".into()))
    }
}

impl Service for SchedulerRpc {
    fn name(&self) -> &'static str {
        "scheduler"
    }

    fn call(&self, ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            // submit_job(job_struct [, preference [, allowed_sites]])
            "submit_job" => {
                let owner = ctx.require_user()?;
                let job = job_from_value(
                    params
                        .first()
                        .ok_or_else(|| GaeError::Parse("submit_job(job, ...)".into()))?,
                    owner,
                )?;
                let mut plan = AbstractPlan::new(job);
                if let Some(pref) = params.get(1).filter(|v| !v.is_nil()) {
                    plan.preference = match pref.as_str()? {
                        "fast" => OptimizationPreference::Fast,
                        "cheap" => OptimizationPreference::Cheap,
                        other => {
                            return Err(GaeError::Parse(format!("unknown preference {other:?}")))
                        }
                    };
                }
                if let Some(sites) = params.get(2).filter(|v| !v.is_nil()) {
                    for s in sites.as_array()? {
                        plan.allowed_sites.push(SiteId::new(s.as_u64()?));
                    }
                }
                let concrete = self.stack()?.submit_plan(&plan)?;
                Ok(plan_to_value(&concrete))
            }
            "sites" => {
                let stack = self.stack()?;
                Ok(Value::Array(
                    stack
                        .grid
                        .site_ids()
                        .into_iter()
                        .map(|s| {
                            let d = stack.grid.description(s).expect("listed site");
                            Value::struct_of([
                                ("id", Value::from(s.raw())),
                                ("name", Value::from(d.name.as_str())),
                                ("nodes", Value::from(d.nodes)),
                                ("slots_per_node", Value::from(d.slots_per_node)),
                                ("speed_factor", Value::from(d.speed_factor)),
                                ("charge_per_cpu_hour", Value::from(d.charge_per_cpu_hour)),
                                ("alive", Value::Bool(stack.grid.is_alive(s))),
                            ])
                        })
                        .collect(),
                ))
            }
            other => Err(gae_rpc::service::unknown_method("scheduler", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "submit_job",
                help: "schedule a job (struct) and subscribe it for steering; returns the plan",
            },
            MethodInfo {
                name: "sites",
                help: "descriptions and liveness of every site",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::{JobType, UserId};

    fn sample_job() -> JobSpec {
        let mut job = JobSpec::new(JobId::new(9), "remote", UserId::new(3));
        let mut t1 = TaskSpec::new(TaskId::new(1), "gen", "generator")
            .with_cpu_demand(SimDuration::from_secs(120))
            .with_priority(Priority::new(2))
            .with_nodes(4)
            .with_queue("q_short")
            .with_checkpointable(true);
        t1.args = vec!["--events".into(), "1000".into()];
        t1.env = vec![("CMS_CONFIG".into(), "/etc/cms".into())];
        t1.input_files = vec![FileRef::new("lfn:/in", 1024).with_replicas(vec![SiteId::new(1)])];
        t1.output_files = vec![FileRef::new("lfn:/out", 2048)];
        t1.job_type = JobType::Interactive;
        job.add_task(t1);
        job.add_task(TaskSpec::new(TaskId::new(2), "reco", "reco"));
        job.add_dependency(TaskId::new(1), TaskId::new(2));
        job
    }

    #[test]
    fn job_roundtrips_through_the_wire_codec() {
        let job = sample_job();
        let v = job_to_value(&job);
        let back = job_from_value(&v, UserId::new(3)).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn owner_comes_from_the_session_not_the_payload() {
        let job = sample_job();
        let v = job_to_value(&job);
        let back = job_from_value(&v, UserId::new(42)).unwrap();
        assert_eq!(back.owner, UserId::new(42));
        assert!(back.tasks.iter().all(|t| t.owner == UserId::new(42)));
    }

    #[test]
    fn task_codec_rejects_garbage() {
        assert!(task_from_value(&Value::Int(1)).is_err());
        assert!(task_from_value(&Value::empty_struct()).is_err());
        let mut v = task_to_value(&sample_job().tasks[0]);
        if let Value::Struct(m) = &mut v {
            m.insert("job_type".into(), Value::from("weird"));
        }
        assert!(task_from_value(&v).is_err());
    }

    #[test]
    fn plan_encoding_shape() {
        use gae_types::{PlanId, TaskAssignment};
        let job = {
            let mut j = JobSpec::new(JobId::new(1), "j", UserId::new(1));
            j.add_task(TaskSpec::new(TaskId::new(1), "t", "x"));
            j
        };
        let plan = ConcretePlan::new(
            PlanId::new(7),
            job,
            vec![TaskAssignment {
                task: TaskId::new(1),
                site: SiteId::new(2),
            }],
        )
        .unwrap();
        let v = plan_to_value(&plan);
        assert_eq!(v.member("plan").unwrap().as_u64().unwrap(), 7);
        let assignments = v.member("assignments").unwrap().as_array().unwrap();
        assert_eq!(assignments[0].member("site").unwrap().as_u64().unwrap(), 2);
    }
}
