//! The grid fabric and the service composition root.
//!
//! [`Grid`] binds the per-site execution services, the MonALISA
//! repository and the network model into one object with a single
//! virtual clock. [`ServiceStack`] wires the paper's full
//! architecture over a grid — scheduler, estimators, job monitoring,
//! steering, quota — and drives it forward in time, interleaving
//! execution-service events with the services' polling loops exactly
//! the way Figure 1's deployment would.

use crate::estimator::EstimatorService;
use crate::jobmon::JobMonitoringService;
use crate::provider::GridSiteInfo;
use crate::quota::QuotaService;
use crate::steering::{SteeringPolicy, SteeringService};
use gae_exec::{Checkpoint, ExecEvent, ExecutionService, SiteConfig};
use gae_monitor::MonAlisaRepository;
use gae_sched::Scheduler;
use gae_sim::{LoadTrace, NetworkModel};
use gae_types::{
    ConcretePlan, CondorId, GaeError, GaeResult, JobSpec, SimDuration, SimTime, SiteDescription,
    SiteId, TaskSpec,
};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The execution fabric: sites + monitoring + network, one clock.
pub struct Grid {
    sites: BTreeMap<SiteId, Arc<Mutex<ExecutionService>>>,
    descriptions: BTreeMap<SiteId, SiteDescription>,
    monitor: Arc<MonAlisaRepository>,
    network: NetworkModel,
    now: RwLock<SimTime>,
    /// Directed flocking partnerships: queued work at the key site
    /// may overflow to the listed partners (Condor flocking, §7).
    flock_partners: RwLock<BTreeMap<SiteId, Vec<SiteId>>>,
}

/// Builder for [`Grid`].
pub struct GridBuilder {
    configs: Vec<SiteConfig>,
    network: NetworkModel,
    monitor: Option<Arc<MonAlisaRepository>>,
}

impl GridBuilder {
    /// Starts an empty grid over the default 2005-era WAN.
    pub fn new() -> Self {
        GridBuilder {
            configs: Vec::new(),
            network: NetworkModel::wan_2005(),
            monitor: None,
        }
    }

    /// Adds a site whose nodes are free.
    pub fn site(mut self, description: SiteDescription) -> Self {
        self.configs.push(SiteConfig::free(description));
        self
    }

    /// Adds a site with constant external load on every node.
    pub fn site_with_load(mut self, description: SiteDescription, load: f64) -> Self {
        self.configs.push(SiteConfig::uniform_load(
            description,
            LoadTrace::constant(load),
        ));
        self
    }

    /// Adds a site with an explicit per-node trace configuration.
    pub fn site_with_config(mut self, config: SiteConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Replaces the network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Uses an existing monitoring repository (sharing with an
    /// external dashboard).
    pub fn monitor(mut self, monitor: Arc<MonAlisaRepository>) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Builds the grid.
    pub fn build(self) -> Arc<Grid> {
        let monitor = self
            .monitor
            .unwrap_or_else(MonAlisaRepository::with_defaults);
        let mut sites = BTreeMap::new();
        let mut descriptions = BTreeMap::new();
        for config in self.configs {
            let id = config.description.id;
            descriptions.insert(id, config.description.clone());
            sites.insert(id, Arc::new(Mutex::new(ExecutionService::new(config))));
        }
        let grid = Arc::new(Grid {
            sites,
            descriptions,
            monitor,
            network: self.network,
            now: RwLock::new(SimTime::ZERO),
            flock_partners: RwLock::new(BTreeMap::new()),
        });
        grid.publish_metrics();
        grid
    }
}

impl Default for GridBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl Grid {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        *self.now.read()
    }

    /// All site ids, sorted.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.keys().copied().collect()
    }

    /// A site's static description.
    pub fn description(&self, site: SiteId) -> GaeResult<&SiteDescription> {
        self.descriptions
            .get(&site)
            .ok_or_else(|| GaeError::NotFound(site.to_string()))
    }

    /// The execution service of a site.
    pub fn exec(&self, site: SiteId) -> GaeResult<Arc<Mutex<ExecutionService>>> {
        self.sites
            .get(&site)
            .cloned()
            .ok_or_else(|| GaeError::NotFound(site.to_string()))
    }

    /// The shared monitoring repository.
    pub fn monitor(&self) -> &Arc<MonAlisaRepository> {
        &self.monitor
    }

    /// The network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Submits a task to a site's execution service. Input files not
    /// replicated at the site are staged first: the task spends the
    /// true network transfer time in `Pending` before it can queue.
    pub fn submit(
        &self,
        site: SiteId,
        spec: TaskSpec,
        checkpoint: Option<Checkpoint>,
    ) -> GaeResult<CondorId> {
        let stage_in = self.staging_time(site, &spec);
        self.exec(site)?
            .lock()
            .submit_staged(spec, checkpoint, stage_in)
    }

    /// Ground-truth input staging time at a site: sequential transfer
    /// of every missing input from its nearest replica. Files with no
    /// replica anywhere are produced by the job itself and cost
    /// nothing.
    pub fn staging_time(&self, site: SiteId, spec: &TaskSpec) -> gae_types::SimDuration {
        spec.input_files
            .iter()
            .filter(|f| !f.available_at(site) && !f.replicas.is_empty())
            .map(|f| {
                f.replicas
                    .iter()
                    .map(|src| self.network.transfer_time(*src, site, f.size_bytes))
                    .min()
                    .expect("non-empty replicas")
            })
            .sum()
    }

    /// Whether a site's execution service answers.
    pub fn is_alive(&self, site: SiteId) -> bool {
        self.sites
            .get(&site)
            .map(|s| s.lock().is_alive())
            .unwrap_or(false)
    }

    /// The earliest pending completion across all sites.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.sites
            .values()
            .filter_map(|s| s.lock().next_event_time())
            .min()
    }

    /// Advances every site to `t` and publishes fresh metrics.
    pub fn advance_to(&self, t: SimTime) {
        {
            let mut now = self.now.write();
            assert!(t >= *now, "grid cannot advance backwards");
            *now = t;
        }
        for site in self.sites.values() {
            site.lock().advance_to(t);
        }
        self.publish_metrics();
    }

    /// Publishes per-site load and queue length to MonALISA (§6.1d's
    /// "status of load at execution sites"), plus per-node load and
    /// slot occupancy (MonALISA's Farm/Node hierarchy).
    pub fn publish_metrics(&self) {
        use gae_monitor::MetricKey;
        let now = self.now();
        for (id, site) in &self.sites {
            let site = site.lock();
            self.monitor
                .publish_site_load(*id, now, site.current_load());
            self.monitor
                .publish_queue_length(*id, now, site.queue_length() as f64);
            for node in site.nodes() {
                let entity = node.id.to_string();
                self.monitor.publish_metric(
                    MetricKey::new(*id, entity.clone(), "cpu_load"),
                    now,
                    node.load_at(now),
                );
                self.monitor.publish_metric(
                    MetricKey::new(*id, entity, "busy_slots"),
                    now,
                    f64::from(node.busy_slots()),
                );
            }
        }
    }

    /// Enables directed flocking: queued work at `from` may overflow
    /// to `to` when `to` has free slots ("flocking is enabled between
    /// site A and Site B", §7).
    pub fn enable_flocking(&self, from: SiteId, to: SiteId) {
        let mut partners = self.flock_partners.write();
        let list = partners.entry(from).or_default();
        if !list.contains(&to) {
            list.push(to);
        }
    }

    /// The flocking partners of a site.
    pub fn flock_partners(&self, from: SiteId) -> Vec<SiteId> {
        self.flock_partners
            .read()
            .get(&from)
            .cloned()
            .unwrap_or_default()
    }

    /// One flocking round: for every site with queued work and a
    /// partner with a free slot, migrate the head of the queue
    /// (carrying a checkpoint when the task supports it). Returns the
    /// moves so the steering layer can update its bookkeeping.
    pub fn flock_pass(&self) -> Vec<FlockMove> {
        let partnerships: Vec<(SiteId, Vec<SiteId>)> = self
            .flock_partners
            .read()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let mut moves = Vec::new();
        for (from, partners) in partnerships {
            loop {
                // Head of the queue at `from`, if any.
                let head = {
                    let Ok(exec) = self.exec(from) else { break };
                    let exec = exec.lock();
                    if !exec.is_alive() {
                        break;
                    }
                    exec.queue_snapshot().first().map(|e| e.condor)
                };
                let Some(condor) = head else { break };
                // A live partner with a free slot right now.
                let target = partners.iter().copied().find(|p| {
                    self.exec(*p)
                        .map(|e| {
                            let e = e.lock();
                            e.is_alive() && e.running_count() < e.site().total_slots() as usize
                        })
                        .unwrap_or(false)
                });
                let Some(to) = target else { break };
                let Ok((spec, checkpoint)) = ({
                    let exec = self.exec(from).expect("listed site");
                    let mut exec = exec.lock();
                    exec.remove_for_migration(condor)
                }) else {
                    break;
                };
                let task = spec.id;
                match self.submit(to, spec.clone(), checkpoint) {
                    Ok(new_condor) => {
                        moves.push(FlockMove {
                            task,
                            spec,
                            from,
                            to,
                            condor: new_condor,
                        });
                    }
                    Err(_) => break,
                }
            }
        }
        moves
    }

    /// Drains execution events from every site, tagged with the site.
    pub fn drain_events(&self) -> Vec<(SiteId, ExecEvent)> {
        let mut out = Vec::new();
        for (id, site) in &self.sites {
            for e in site.lock().drain_events() {
                out.push((*id, e));
            }
        }
        out
    }
}

/// A flocking migration performed by [`Grid::flock_pass`].
#[derive(Clone, Debug)]
pub struct FlockMove {
    /// The task that flocked.
    pub task: gae_types::TaskId,
    /// Its specification (for estimate re-registration).
    pub spec: TaskSpec,
    /// Overloaded source site.
    pub from: SiteId,
    /// Receiving partner site.
    pub to: SiteId,
    /// The Condor id assigned by the receiving site.
    pub condor: CondorId,
}

/// The full Figure 1 deployment wired over one grid.
pub struct ServiceStack {
    /// The fabric.
    pub grid: Arc<Grid>,
    /// Quota and Accounting Service (§4.2.2).
    pub quota: Arc<QuotaService>,
    /// Estimator Service (§6).
    pub estimators: Arc<EstimatorService>,
    /// Job Monitoring Service (§5).
    pub jobmon: Arc<JobMonitoringService>,
    /// Sphinx-substitute scheduler.
    pub scheduler: Arc<Scheduler>,
    /// Steering Service (§4).
    pub steering: Arc<SteeringService>,
    /// How often the polling services run (collector + steering).
    poll_period: SimDuration,
    next_poll: Mutex<SimTime>,
}

impl ServiceStack {
    /// Wires the whole architecture with default policies.
    pub fn over(grid: Arc<Grid>) -> Arc<ServiceStack> {
        Self::with_policy(grid, SteeringPolicy::default(), SimDuration::from_secs(5))
    }

    /// Wires the architecture with an explicit steering policy and
    /// polling period.
    pub fn with_policy(
        grid: Arc<Grid>,
        policy: SteeringPolicy,
        poll_period: SimDuration,
    ) -> Arc<ServiceStack> {
        let quota = Arc::new(QuotaService::new());
        for site in grid.site_ids() {
            quota.register_site(grid.description(site).expect("listed site"));
        }
        let estimators = Arc::new(EstimatorService::new(grid.clone()));
        let jobmon = Arc::new(JobMonitoringService::new(grid.clone(), estimators.clone()));
        let info = Arc::new(GridSiteInfo::new(
            grid.clone(),
            estimators.clone(),
            quota.clone(),
        ));
        let scheduler = Arc::new(Scheduler::new(info));
        let steering = Arc::new(SteeringService::new(
            grid.clone(),
            scheduler.clone(),
            jobmon.clone(),
            estimators.clone(),
            quota.clone(),
            policy,
        ));
        Arc::new(ServiceStack {
            grid,
            quota,
            estimators,
            jobmon,
            scheduler,
            steering,
            poll_period,
            next_poll: Mutex::new(SimTime::ZERO + poll_period),
        })
    }

    /// Schedules a job and registers the concrete plan with the
    /// steering service (the scheduler "sends a concrete job plan to
    /// the Steering Service", §4.2.1). Ready tasks are submitted
    /// immediately; successors follow as prerequisites complete.
    pub fn submit_job(&self, job: JobSpec) -> GaeResult<ConcretePlan> {
        let plan = self
            .scheduler
            .schedule(&gae_types::AbstractPlan::new(job))?;
        self.steering.subscribe_plan(plan.clone())?;
        Ok(plan)
    }

    /// Variant of [`ServiceStack::submit_job`] with an explicit
    /// abstract plan (preferences, site restrictions).
    pub fn submit_plan(&self, plan: &gae_types::AbstractPlan) -> GaeResult<ConcretePlan> {
        let concrete = self.scheduler.schedule(plan)?;
        self.steering.subscribe_plan(concrete.clone())?;
        Ok(concrete)
    }

    /// Runs one service polling round at the current grid time:
    /// flocking first (it changes placements), then monitoring, then
    /// steering.
    pub fn poll(&self) {
        for mv in self.grid.flock_pass() {
            let estimate = self
                .estimators
                .estimate_runtime(mv.to, &mv.spec)
                .map(|e| e.runtime)
                .unwrap_or_else(|_| {
                    SimDuration::from_secs_f64(mv.spec.requested_cpu_hours * 3600.0)
                });
            self.estimators
                .record_submission(mv.to, mv.condor, estimate);
            self.steering
                .note_external_move(mv.task, mv.from, mv.to, mv.condor);
        }
        self.jobmon.poll();
        self.steering.poll();
    }

    /// Drives the grid and the polling services to `t`.
    ///
    /// Interleaving: execution-service completions happen at exact
    /// instants; the collector and steering service poll every
    /// `poll_period`, which is how the paper's services actually
    /// observed the grid ("periodically monitor the performance of
    /// the job", §7).
    pub fn run_until(&self, t: SimTime) {
        loop {
            let now = self.grid.now();
            if now >= t {
                break;
            }
            // Events sitting exactly at `now` (zero-length tasks,
            // just-submitted work) are consumed without moving time.
            if self
                .grid
                .next_event_time()
                .map(|ev| ev <= now)
                .unwrap_or(false)
            {
                self.grid.advance_to(now);
                continue;
            }
            let next_poll = *self.next_poll.lock();
            if next_poll <= now {
                // The clock moved past a due poll (e.g. the caller
                // advanced the grid directly); catch up first.
                self.poll();
                *self.next_poll.lock() = now + self.poll_period;
                continue;
            }
            let mut target = t.min(next_poll);
            if let Some(ev) = self.grid.next_event_time() {
                target = target.min(ev);
            }
            self.grid.advance_to(target);
            if target >= next_poll {
                self.poll();
                *self.next_poll.lock() = next_poll + self.poll_period;
            }
        }
        // Final poll at the horizon so callers observe fresh state.
        self.poll();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::{JobId, TaskId, TaskStatus, UserId};

    fn two_site_grid() -> Arc<Grid> {
        GridBuilder::new()
            .site_with_load(SiteDescription::new(SiteId::new(1), "busy", 2, 1), 3.0)
            .site(SiteDescription::new(SiteId::new(2), "free", 2, 1))
            .build()
    }

    #[test]
    fn builder_registers_sites() {
        let grid = two_site_grid();
        assert_eq!(grid.site_ids(), vec![SiteId::new(1), SiteId::new(2)]);
        assert!(grid.is_alive(SiteId::new(1)));
        assert!(!grid.is_alive(SiteId::new(9)));
        assert!(grid.description(SiteId::new(2)).is_ok());
        assert!(grid.description(SiteId::new(9)).is_err());
        assert!(grid.exec(SiteId::new(9)).is_err());
    }

    #[test]
    fn metrics_published_at_build_and_advance() {
        let grid = two_site_grid();
        assert_eq!(grid.monitor().site_load(SiteId::new(1)), Some(3.0));
        assert_eq!(grid.monitor().site_load(SiteId::new(2)), Some(0.0));
        grid.advance_to(SimTime::from_secs(10));
        assert_eq!(grid.now(), SimTime::from_secs(10));
        assert_eq!(grid.monitor().queue_length(SiteId::new(2)), Some(0.0));
    }

    #[test]
    fn grid_submit_and_events() {
        let grid = two_site_grid();
        let spec =
            TaskSpec::new(TaskId::new(1), "t", "x").with_cpu_demand(SimDuration::from_secs(10));
        grid.submit(SiteId::new(2), spec, None).unwrap();
        assert_eq!(grid.next_event_time(), Some(SimTime::from_secs(10)));
        grid.advance_to(SimTime::from_secs(10));
        let events = grid.drain_events();
        assert_eq!(events.len(), 3, "queued, running, completed");
        assert!(events.iter().all(|(s, _)| *s == SiteId::new(2)));
    }

    #[test]
    fn stack_runs_simple_job_to_completion() {
        let stack = ServiceStack::over(two_site_grid());
        let mut job = JobSpec::new(JobId::new(1), "demo", UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(1), "t", "prime").with_cpu_demand(SimDuration::from_secs(60)),
        );
        let plan = stack.submit_job(job).unwrap();
        // The scheduler must have preferred the free site.
        assert_eq!(plan.site_of(TaskId::new(1)), Some(SiteId::new(2)));
        stack.run_until(SimTime::from_secs(120));
        let info = stack.jobmon.job_info(TaskId::new(1)).unwrap();
        assert_eq!(info.status, TaskStatus::Completed);
    }

    #[test]
    fn stack_executes_dag_in_order() {
        let stack = ServiceStack::over(two_site_grid());
        let mut job = JobSpec::new(JobId::new(1), "dag", UserId::new(1));
        for i in 1..=3 {
            job.add_task(
                TaskSpec::new(TaskId::new(i), format!("t{i}"), "step")
                    .with_cpu_demand(SimDuration::from_secs(20)),
            );
        }
        job.add_dependency(TaskId::new(1), TaskId::new(2));
        job.add_dependency(TaskId::new(2), TaskId::new(3));
        stack.submit_job(job).unwrap();
        stack.run_until(SimTime::from_secs(30));
        // Task 2 must not have finished before task 1.
        let t1 = stack.jobmon.job_info(TaskId::new(1)).unwrap();
        assert_eq!(t1.status, TaskStatus::Completed);
        // Task 3 is blocked on task 2: either not yet submitted
        // anywhere (unknown to monitoring) or not completed.
        match stack.jobmon.job_info(TaskId::new(3)) {
            Ok(info) => assert_ne!(info.status, TaskStatus::Completed),
            Err(e) => assert!(e.to_string().contains("not found"), "{e}"),
        }
        stack.run_until(SimTime::from_secs(200));
        let t3 = stack.jobmon.job_info(TaskId::new(3)).unwrap();
        assert_eq!(t3.status, TaskStatus::Completed);
    }

    #[test]
    fn run_until_is_idempotent_at_horizon() {
        let stack = ServiceStack::over(two_site_grid());
        stack.run_until(SimTime::from_secs(50));
        stack.run_until(SimTime::from_secs(50));
        assert_eq!(stack.grid.now(), SimTime::from_secs(50));
    }
}
