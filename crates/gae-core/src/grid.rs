//! The grid fabric and the service composition root.
//!
//! [`Grid`] binds the per-site execution services, the MonALISA
//! repository and the network model into one object with a single
//! virtual clock. [`ServiceStack`] wires the paper's full
//! architecture over a grid — scheduler, estimators, job monitoring,
//! steering, quota — and drives it forward in time, interleaving
//! execution-service events with the services' polling loops exactly
//! the way Figure 1's deployment would.

use crate::estimator::EstimatorService;
use crate::jobmon::JobMonitoringService;
use crate::persist::{self, Persistence, PersistenceConfig, RecoveryReport};
use crate::provider::GridSiteInfo;
use crate::quota::QuotaService;
use crate::steering::{SteeringPolicy, SteeringService};
use gae_durable::DurableStore;
use gae_exec::{Checkpoint, ExecEvent, ExecutionService, SiteConfig};
use gae_gate::{Gate, GateClass, GateClock, GateConfig, Principal};
use gae_monitor::{MetricKey, MonAlisaRepository, Sample};
use gae_sched::Scheduler;
use gae_sim::{LoadTrace, NetworkModel};
use gae_types::{
    ConcretePlan, CondorId, GaeError, GaeResult, JobSpec, SimDuration, SimTime, SiteDescription,
    SiteId, TaskSpec,
};
use gae_xfer::{XferConfig, XferScheduler, XferUpdate};
use parking_lot::{Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// How [`Grid::advance_to`] fans work across the sites.
///
/// Sites are independent state machines between service polls, so the
/// sharded driver produces *bit-identical* results to the sequential
/// one — see DESIGN.md ("Sharded driver determinism contract"). The
/// mode is therefore purely a throughput knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DriverMode {
    /// Advance sites one after another on the calling thread.
    #[default]
    Sequential,
    /// Fan site advancement, metric collection and event draining
    /// across a fixed pool of scoped worker threads.
    Sharded {
        /// Worker count (clamped to at least 1 and at most the number
        /// of sites when applied).
        threads: usize,
    },
}

impl DriverMode {
    /// Sharded mode with `threads` workers (at least 1).
    pub fn sharded(threads: usize) -> Self {
        DriverMode::Sharded {
            threads: threads.max(1),
        }
    }

    /// Sharded mode sized to the machine's available parallelism.
    pub fn sharded_auto() -> Self {
        Self::sharded(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

/// Interned metric keys for one site, built once at grid construction
/// so the per-tick publication loop performs no string allocation.
struct SiteMetricKeys {
    /// Farm-wide CPU load.
    site_load: MetricKey,
    /// Farm-wide queue length.
    queue_length: MetricKey,
    /// Per node, in `nodes()` order: (`cpu_load`, `busy_slots`).
    node_keys: Vec<(MetricKey, MetricKey)>,
}

/// Cross-site next-event index. Every execution service pushes its
/// cached next-event instant here through a notifier installed at
/// build time, so the driver's [`Grid::next_event_time`] costs one
/// heap peek instead of locking and scanning every site per loop
/// iteration. Same lazy-invalidation discipline as the per-service
/// heaps: `current` is authoritative, heap entries are live only
/// while they still match it (DESIGN.md §15).
#[derive(Default)]
struct NextEventIndex {
    /// Authoritative per-site next event (absent = site is idle).
    current: BTreeMap<SiteId, SimTime>,
    /// Lazy min-heap over `current`, keyed `(instant, site)` so ties
    /// resolve by site id — deterministic in both driver modes.
    heap: BinaryHeap<Reverse<(SimTime, SiteId)>>,
    /// Memoised combined (sites + transfer plane) answer; cleared by
    /// any site notification and by every transfer-plane mutation.
    cached: Option<Option<SimTime>>,
}

impl NextEventIndex {
    /// Records a site's new next-event instant (or its draining).
    fn note(&mut self, site: SiteId, next: Option<SimTime>) {
        match next {
            Some(t) => {
                self.current.insert(site, t);
                self.heap.push(Reverse((t, site)));
            }
            None => {
                self.current.remove(&site);
            }
        }
        self.cached = None;
    }

    /// Earliest live site event, pruning entries whose site has since
    /// re-notified with a different instant or gone idle.
    fn site_min(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, site))) = self.heap.peek() {
            if self.current.get(&site) == Some(&t) {
                return Some(t);
            }
            self.heap.pop();
        }
        None
    }
}

/// The execution fabric: sites + monitoring + network, one clock.
pub struct Grid {
    sites: BTreeMap<SiteId, Arc<Mutex<ExecutionService>>>,
    descriptions: BTreeMap<SiteId, SiteDescription>,
    monitor: Arc<MonAlisaRepository>,
    network: NetworkModel,
    now: RwLock<SimTime>,
    /// Directed flocking partnerships: queued work at the key site
    /// may overflow to the listed partners (Condor flocking, §7).
    flock_partners: RwLock<BTreeMap<SiteId, Vec<SiteId>>>,
    /// Pre-interned publication keys, one entry per site.
    metric_keys: BTreeMap<SiteId, SiteMetricKeys>,
    /// The managed data plane: every inter-site byte moves through it.
    xfer: Mutex<XferScheduler>,
    /// Cached cross-site next-event minimum, fed by per-site
    /// notifiers; shared (`Arc`) because those notifier closures
    /// capture it without holding the grid itself.
    next_index: Arc<Mutex<NextEventIndex>>,
    /// Sequential or sharded advancement (fixed at build time).
    driver: DriverMode,
    /// Where a service stack over this grid should persist itself.
    persist_config: Option<PersistenceConfig>,
    /// Admission-control policy for service stacks over this grid.
    gate_config: Option<GateConfig>,
    /// Which RPC server implementation should front a service stack
    /// over this grid.
    rpc_transport: gae_rpc::RpcTransport,
}

/// Builder for [`Grid`].
pub struct GridBuilder {
    configs: Vec<SiteConfig>,
    network: NetworkModel,
    monitor: Option<Arc<MonAlisaRepository>>,
    driver: DriverMode,
    persist: Option<PersistenceConfig>,
    gate: Option<GateConfig>,
    xfer: Option<XferConfig>,
    rpc_transport: gae_rpc::RpcTransport,
}

impl GridBuilder {
    /// Starts an empty grid over the default 2005-era WAN.
    pub fn new() -> Self {
        GridBuilder {
            configs: Vec::new(),
            network: NetworkModel::wan_2005(),
            monitor: None,
            driver: DriverMode::Sequential,
            persist: None,
            gate: None,
            xfer: None,
            rpc_transport: gae_rpc::RpcTransport::default(),
        }
    }

    /// Configures the transfer scheduler (retry policy, storage
    /// budgets, history depth). Without it the data plane runs with
    /// [`XferConfig::with_defaults`].
    pub fn xfer(mut self, config: XferConfig) -> Self {
        self.xfer = Some(config);
        self
    }

    /// Sets the admission-control policy for service stacks built
    /// over this grid: per-principal rate limits, the bounded
    /// priority admission queue, and downstream circuit breakers.
    /// Without it the gate runs with [`GateConfig::default`].
    pub fn gate(mut self, config: GateConfig) -> Self {
        self.gate = Some(config);
        self
    }

    /// Selects the advancement driver (sequential by default).
    pub fn driver(mut self, driver: DriverMode) -> Self {
        self.driver = driver;
        self
    }

    /// Selects which RPC server fronts service stacks over this grid:
    /// the blocking thread-per-connection server (default) or the
    /// `gae-aio` epoll reactor for C10k-scale keep-alive fleets.
    pub fn rpc_transport(mut self, transport: gae_rpc::RpcTransport) -> Self {
        self.rpc_transport = transport;
        self
    }

    /// Asks any [`ServiceStack`] built over this grid to persist its
    /// state (WAL + snapshots) in `config.dir`. Creating a stack over
    /// a directory that already holds a store fails — recover it with
    /// [`ServiceStack::recover_from_disk`] instead.
    pub fn persist(mut self, config: PersistenceConfig) -> Self {
        self.persist = Some(config);
        self
    }

    /// Adds a site whose nodes are free.
    pub fn site(mut self, description: SiteDescription) -> Self {
        self.configs.push(SiteConfig::free(description));
        self
    }

    /// Adds a site with constant external load on every node.
    pub fn site_with_load(mut self, description: SiteDescription, load: f64) -> Self {
        self.configs.push(SiteConfig::uniform_load(
            description,
            LoadTrace::constant(load),
        ));
        self
    }

    /// Adds a site with an explicit per-node trace configuration.
    pub fn site_with_config(mut self, config: SiteConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Replaces the network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Uses an existing monitoring repository (sharing with an
    /// external dashboard).
    pub fn monitor(mut self, monitor: Arc<MonAlisaRepository>) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Builds the grid.
    pub fn build(self) -> Arc<Grid> {
        let monitor = self
            .monitor
            .unwrap_or_else(MonAlisaRepository::with_defaults);
        let mut sites = BTreeMap::new();
        let mut descriptions = BTreeMap::new();
        for config in self.configs {
            let id = config.description.id;
            descriptions.insert(id, config.description.clone());
            sites.insert(id, Arc::new(Mutex::new(ExecutionService::new(config))));
        }
        // Intern every publication key up front: two shared parameter
        // names, one entity name per node. The hot loop then only
        // clones `Arc`s.
        let cpu_load: Arc<str> = Arc::from("cpu_load");
        let busy_slots: Arc<str> = Arc::from("busy_slots");
        let mut metric_keys = BTreeMap::new();
        for (id, site) in &sites {
            let exec = site.lock();
            let node_keys = exec
                .nodes()
                .iter()
                .map(|node| {
                    let entity: Arc<str> = Arc::from(node.id.to_string());
                    (
                        MetricKey::new(*id, entity.clone(), cpu_load.clone()),
                        MetricKey::new(*id, entity, busy_slots.clone()),
                    )
                })
                .collect();
            metric_keys.insert(
                *id,
                SiteMetricKeys {
                    site_load: MetricKey::site_wide(*id, cpu_load.clone()),
                    queue_length: MetricKey::site_wide(*id, "queue_length"),
                    node_keys,
                },
            );
        }
        let xfer = XferScheduler::new(
            self.network.clone(),
            sites.keys().copied(),
            self.xfer.unwrap_or_else(XferConfig::with_defaults),
        );
        // Wire every site's next-event notifier into the shared index
        // before the grid goes live; installation synchronously
        // reports the service's current answer, so the index starts
        // consistent even for sites built with queued state.
        let next_index = Arc::new(Mutex::new(NextEventIndex::default()));
        for (id, site) in &sites {
            let idx = next_index.clone();
            let sid = *id;
            site.lock()
                .set_event_notifier(Box::new(move |next| idx.lock().note(sid, next)));
        }
        let grid = Arc::new(Grid {
            sites,
            descriptions,
            monitor,
            network: self.network,
            now: RwLock::new(SimTime::ZERO),
            flock_partners: RwLock::new(BTreeMap::new()),
            metric_keys,
            xfer: Mutex::new(xfer),
            next_index,
            driver: self.driver,
            persist_config: self.persist,
            gate_config: self.gate,
            rpc_transport: self.rpc_transport,
        });
        grid.publish_metrics();
        grid
    }
}

impl Default for GridBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// [`gae_xfer::LinkView`] over a grid: the transfer estimator reads
/// live link state (injected faults, active drain counts) straight
/// from the transfer scheduler, so dead links surface as typed
/// unreachable errors and contended links degrade to their fair
/// share.
pub struct GridLinkView(pub Arc<Grid>);

impl gae_xfer::LinkView for GridLinkView {
    fn blocked(&self, from: SiteId, to: SiteId) -> bool {
        self.0.xfer.lock().link_blocked(from, to)
    }

    fn active(&self, from: SiteId, to: SiteId) -> usize {
        self.0.xfer.lock().active_on(from, to)
    }
}

impl Grid {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        *self.now.read()
    }

    /// All site ids, sorted.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.keys().copied().collect()
    }

    /// A site's static description.
    pub fn description(&self, site: SiteId) -> GaeResult<&SiteDescription> {
        self.descriptions
            .get(&site)
            .ok_or_else(|| GaeError::NotFound(site.to_string()))
    }

    /// The execution service of a site.
    pub fn exec(&self, site: SiteId) -> GaeResult<Arc<Mutex<ExecutionService>>> {
        self.sites
            .get(&site)
            .cloned()
            .ok_or_else(|| GaeError::NotFound(site.to_string()))
    }

    /// The shared monitoring repository.
    pub fn monitor(&self) -> &Arc<MonAlisaRepository> {
        &self.monitor
    }

    /// The network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Submits a task to a site's execution service. Input files not
    /// replicated at the site are staged through the transfer
    /// scheduler first: the task spends the *contended* transfer time
    /// of its input chain in `Pending` before it can queue, and the
    /// release instant is corrected as link load changes.
    pub fn submit(
        &self,
        site: SiteId,
        spec: TaskSpec,
        checkpoint: Option<Checkpoint>,
    ) -> GaeResult<CondorId> {
        let exec = self.exec(site)?;
        let plan = self.with_xfer(|x| x.plan_stage(site, &spec.input_files));
        match plan {
            None => exec
                .lock()
                .submit_staged(spec, checkpoint, SimDuration::ZERO),
            Some((token, projection)) => {
                let stage_in = projection.saturating_since(self.now());
                let admitted = exec.lock().submit_staged(spec, checkpoint, stage_in);
                match admitted {
                    Ok(condor) => {
                        self.with_xfer(|x| x.bind_chain(token, condor.raw()));
                        Ok(condor)
                    }
                    Err(e) => {
                        self.with_xfer(|x| x.cancel_chain(token));
                        Err(e)
                    }
                }
            }
        }
    }

    /// Runs a closure against the transfer scheduler, then applies
    /// whatever staging corrections it produced to the execution
    /// services. The xfer lock is released before any exec lock is
    /// taken, so the two subsystems never deadlock.
    pub fn with_xfer<R>(&self, f: impl FnOnce(&mut XferScheduler) -> R) -> R {
        let (result, updates) = {
            let mut xfer = self.xfer.lock();
            let result = f(&mut xfer);
            (result, xfer.drain_updates())
        };
        // The closure may have moved transfer-plane events; the memo
        // over the combined minimum is no longer trustworthy. (Site
        // notifiers fired by the updates below clear it again, but
        // pins-only mutations produce no updates.)
        self.next_index.lock().cached = None;
        self.apply_xfer_updates(updates);
        result
    }

    fn apply_xfer_updates(&self, updates: Vec<XferUpdate>) {
        for update in updates {
            match update {
                XferUpdate::Restage {
                    site,
                    condor,
                    until,
                } => {
                    // NotFound here means the chain was pins-only and
                    // the task queued immediately — nothing to move.
                    if let Ok(exec) = self.exec(site) {
                        let _ = exec.lock().restage(CondorId::new(condor), until);
                    }
                }
                XferUpdate::StagingFailed {
                    site,
                    condor,
                    reason,
                } => {
                    if let Ok(exec) = self.exec(site) {
                        let _ = exec.lock().fail_staging(CondorId::new(condor), &reason);
                    }
                }
            }
        }
    }

    /// Releases a task's data-plane footprint (staged-input pins,
    /// unfinished chain transfers). Steering calls this whenever a
    /// task leaves a site for good: completion, permanent failure,
    /// kill, or migration.
    pub fn release_task_data(&self, site: SiteId, condor: CondorId) {
        self.with_xfer(|x| x.release_task(site, condor.raw()));
    }

    /// A point-in-time transfer-plane metrics snapshot.
    pub fn xfer_metrics(&self) -> gae_xfer::XferMetrics {
        self.xfer.lock().metrics()
    }

    /// Ground-truth input staging time at a site: sequential transfer
    /// of every missing input from its nearest *reachable* replica.
    /// Files with no replica anywhere are produced by the job itself
    /// and cost nothing; replicas behind dead or zero-bandwidth links
    /// are skipped, and a file whose every replica is unreachable is
    /// the estimator's typed error — not a finite time over a link
    /// that cannot carry the bytes.
    pub fn staging_time(&self, site: SiteId, spec: &TaskSpec) -> GaeResult<SimDuration> {
        let xfer = self.xfer.lock();
        let mut total = SimDuration::ZERO;
        for f in spec
            .input_files
            .iter()
            .filter(|f| !f.available_at(site) && !f.replicas.is_empty())
        {
            let best = f
                .replicas
                .iter()
                .filter(|src| !xfer.link_blocked(**src, site))
                .map(|src| self.network.transfer_time(*src, site, f.size_bytes))
                .min();
            match best {
                Some(t) => total += t,
                None => {
                    return Err(GaeError::Estimator(format!(
                        "{} has no reachable replica to stage to {site} (of {})",
                        f.logical_name,
                        f.replicas.len()
                    )))
                }
            }
        }
        Ok(total)
    }

    /// Whether a site's execution service answers.
    pub fn is_alive(&self, site: SiteId) -> bool {
        self.sites
            .get(&site)
            .map(|s| s.lock().is_alive())
            .unwrap_or(false)
    }

    /// The earliest pending completion across all sites and the
    /// transfer plane.
    ///
    /// O(1) when nothing changed since the last call: the combined
    /// minimum is memoised and invalidated only by mutation (site
    /// notifiers, [`Grid::with_xfer`]), so the driver's idle loop no
    /// longer re-locks every site. Lock order is index → xfer; site
    /// notifiers take exec → index; nothing takes xfer → exec or
    /// xfer → index, so the three pairs cannot cycle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut idx = self.next_index.lock();
        if let Some(memo) = idx.cached {
            return memo;
        }
        let site_event = idx.site_min();
        let xfer_event = self.xfer.lock().next_event_time();
        let next = match (site_event, xfer_event) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        idx.cached = Some(next);
        next
    }

    /// The same answer by brute force — lock and scan every site plus
    /// the transfer plane. Retained as the differential oracle for the
    /// cached index and as the bench baseline; not for the hot path.
    #[doc(hidden)]
    pub fn next_event_time_uncached(&self) -> Option<SimTime> {
        let site_event = self
            .sites
            .values()
            .filter_map(|s| s.lock().next_event_time())
            .min();
        let xfer_event = self.xfer.lock().next_event_time();
        match (site_event, xfer_event) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The configured advancement driver.
    pub fn driver_mode(&self) -> DriverMode {
        self.driver
    }

    /// The persistence configuration the builder attached, if any.
    pub fn persistence_config(&self) -> Option<&PersistenceConfig> {
        self.persist_config.as_ref()
    }

    /// The admission-control policy the builder attached, if any.
    pub fn gate_config(&self) -> Option<GateConfig> {
        self.gate_config
    }

    /// Which RPC server implementation the builder selected.
    pub fn rpc_transport(&self) -> gae_rpc::RpcTransport {
        self.rpc_transport
    }

    /// The sites partitioned into at most `threads` contiguous chunks
    /// of id-sorted order. Contiguity is what makes shard-wise
    /// concatenation reproduce the sequential site iteration order.
    fn site_chunks(&self, threads: usize) -> Vec<Vec<(SiteId, Arc<Mutex<ExecutionService>>)>> {
        let entries: Vec<(SiteId, Arc<Mutex<ExecutionService>>)> = self
            .sites
            .iter()
            .map(|(id, site)| (*id, site.clone()))
            .collect();
        if entries.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, entries.len());
        entries
            .chunks(entries.len().div_ceil(threads))
            .map(<[_]>::to_vec)
            .collect()
    }

    /// Applies `work` to every shard and returns the per-shard results
    /// in shard (= site) order. The first chunk runs on the calling
    /// thread; additional chunks get scoped worker threads. A single
    /// chunk therefore costs no thread spawn at all, which keeps
    /// `DriverMode::sharded(1)` within noise of sequential.
    fn run_sharded<T: Send>(
        &self,
        threads: usize,
        work: impl Fn(&[(SiteId, Arc<Mutex<ExecutionService>>)]) -> T + Sync,
    ) -> Vec<T> {
        let chunks = self.site_chunks(threads);
        if chunks.len() <= 1 {
            return chunks.iter().map(|chunk| work(chunk)).collect();
        }
        let work = &work;
        crossbeam::thread::scope(|scope| {
            let (first, rest) = chunks.split_first().expect("checked non-empty");
            let handles: Vec<_> = rest
                .iter()
                .map(|chunk| scope.spawn(move |_| work(chunk)))
                .collect();
            let mut results = vec![work(first)];
            results.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard panicked")),
            );
            results
        })
        .expect("shard scope panicked")
    }

    /// Advances every site to `t` and publishes fresh metrics.
    ///
    /// The transfer plane advances first, on the calling thread:
    /// landings re-project contended chains and the resulting
    /// `Restage`/`StagingFailed` corrections reach the execution
    /// services *before* the sites themselves advance, in both driver
    /// modes — part of the sharded-determinism contract.
    pub fn advance_to(&self, t: SimTime) {
        {
            let mut now = self.now.write();
            assert!(t >= *now, "grid cannot advance backwards");
            *now = t;
        }
        self.with_xfer(|x| x.advance_to(t));
        match self.driver {
            DriverMode::Sequential => {
                for site in self.sites.values() {
                    site.lock().advance_to(t);
                }
            }
            DriverMode::Sharded { threads } => {
                // Sites are independent between polls: no cross-site
                // state is touched while advancing, so shard order
                // cannot influence the result.
                self.run_sharded(threads, |chunk| {
                    for (_, site) in chunk {
                        site.lock().advance_to(t);
                    }
                });
            }
        }
        self.publish_metrics();
    }

    /// Collects one tick's samples for a run of sites, in site order:
    /// farm load, queue length, then per-node load and slot occupancy.
    fn collect_samples(
        &self,
        sites: &[(SiteId, Arc<Mutex<ExecutionService>>)],
        now: SimTime,
    ) -> Vec<(MetricKey, Sample)> {
        let mut out = Vec::new();
        for (id, site) in sites {
            let site = site.lock();
            let keys = &self.metric_keys[id];
            out.push((
                keys.site_load.clone(),
                Sample {
                    at: now,
                    value: site.current_load(),
                },
            ));
            out.push((
                keys.queue_length.clone(),
                Sample {
                    at: now,
                    value: site.queue_length() as f64,
                },
            ));
            for (node, (load_key, slots_key)) in site.nodes().iter().zip(&keys.node_keys) {
                out.push((
                    load_key.clone(),
                    Sample {
                        at: now,
                        value: node.load_at(now),
                    },
                ));
                out.push((
                    slots_key.clone(),
                    Sample {
                        at: now,
                        value: f64::from(node.busy_slots()),
                    },
                ));
            }
        }
        out
    }

    /// Publishes per-site load and queue length to MonALISA (§6.1d's
    /// "status of load at execution sites"), plus per-node load and
    /// slot occupancy (MonALISA's Farm/Node hierarchy).
    ///
    /// All of a tick's samples go to the repository as one
    /// [`MonAlisaRepository::publish_batch`] call — one store-lock
    /// acquisition per tick instead of one per metric — using the keys
    /// interned at construction. Sample order is site order regardless
    /// of driver mode.
    pub fn publish_metrics(&self) {
        let now = self.now();
        let samples = match self.driver {
            DriverMode::Sequential => {
                let entries: Vec<(SiteId, Arc<Mutex<ExecutionService>>)> = self
                    .sites
                    .iter()
                    .map(|(id, site)| (*id, site.clone()))
                    .collect();
                self.collect_samples(&entries, now)
            }
            DriverMode::Sharded { threads } => {
                // Chunks are contiguous in site order, so in-order
                // concatenation equals the sequential sample order.
                self.run_sharded(threads, |chunk| self.collect_samples(chunk, now))
                    .into_iter()
                    .flatten()
                    .collect()
            }
        };
        self.monitor.publish_batch(samples);
    }

    /// Enables directed flocking: queued work at `from` may overflow
    /// to `to` when `to` has free slots ("flocking is enabled between
    /// site A and Site B", §7).
    pub fn enable_flocking(&self, from: SiteId, to: SiteId) {
        let mut partners = self.flock_partners.write();
        let list = partners.entry(from).or_default();
        if !list.contains(&to) {
            list.push(to);
        }
    }

    /// The flocking partners of a site.
    pub fn flock_partners(&self, from: SiteId) -> Vec<SiteId> {
        self.flock_partners
            .read()
            .get(&from)
            .cloned()
            .unwrap_or_default()
    }

    /// One flocking round: for every site with queued work and a
    /// partner with a free slot, migrate the head of the queue
    /// (carrying a checkpoint when the task supports it). Returns the
    /// moves so the steering layer can update its bookkeeping.
    pub fn flock_pass(&self) -> Vec<FlockMove> {
        let partnerships: Vec<(SiteId, Vec<SiteId>)> = self
            .flock_partners
            .read()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let mut moves = Vec::new();
        for (from, partners) in partnerships {
            loop {
                // Head of the queue at `from`, if any.
                let head = {
                    let Ok(exec) = self.exec(from) else { break };
                    let exec = exec.lock();
                    if !exec.is_alive() {
                        break;
                    }
                    exec.queue_snapshot().first().map(|e| e.condor)
                };
                let Some(condor) = head else { break };
                // A live partner with a free slot right now.
                let target = partners.iter().copied().find(|p| {
                    self.exec(*p)
                        .map(|e| {
                            let e = e.lock();
                            e.is_alive() && e.running_count() < e.site().total_slots() as usize
                        })
                        .unwrap_or(false)
                });
                let Some(to) = target else { break };
                let Ok((spec, checkpoint)) = ({
                    let exec = self.exec(from).expect("listed site");
                    let mut exec = exec.lock();
                    exec.remove_for_migration(condor)
                }) else {
                    break;
                };
                // The task is leaving `from`: drop its staged-input
                // pins there so the replicas become evictable again.
                self.release_task_data(from, condor);
                let task = spec.id;
                match self.submit(to, spec.clone(), checkpoint) {
                    Ok(new_condor) => {
                        moves.push(FlockMove {
                            task,
                            spec,
                            from,
                            to,
                            condor: new_condor,
                        });
                    }
                    Err(_) => break,
                }
            }
        }
        moves
    }

    /// Drains execution events from every site, tagged with the site,
    /// in `(site, seq)` order — ascending site id, then per-site
    /// emission order. Under the sharded driver each shard drains its
    /// own sites into a private buffer and the buffers are merged by
    /// that same key, so consumers (the job monitoring collector, the
    /// steering service) see a stream independent of driver mode.
    pub fn drain_events(&self) -> Vec<(SiteId, ExecEvent)> {
        let mut out: Vec<(SiteId, ExecEvent)> = match self.driver {
            DriverMode::Sequential => {
                let mut out = Vec::new();
                for (id, site) in &self.sites {
                    for e in site.lock().drain_events() {
                        out.push((*id, e));
                    }
                }
                out
            }
            DriverMode::Sharded { threads } => self
                .run_sharded(threads, |chunk| {
                    let mut buf = Vec::new();
                    for (id, site) in chunk {
                        for e in site.lock().drain_events() {
                            buf.push((*id, e));
                        }
                    }
                    buf
                })
                .into_iter()
                .flatten()
                .collect(),
        };
        // Make the contract explicit whatever the chunking did; the
        // buffers arrive already ordered, so this is a linear check
        // for a stable sort.
        out.sort_by_key(|(site, e)| (*site, e.seq));
        out
    }
}

/// A flocking migration performed by [`Grid::flock_pass`].
#[derive(Clone, Debug)]
pub struct FlockMove {
    /// The task that flocked.
    pub task: gae_types::TaskId,
    /// Its specification (for estimate re-registration).
    pub spec: TaskSpec,
    /// Overloaded source site.
    pub from: SiteId,
    /// Receiving partner site.
    pub to: SiteId,
    /// The Condor id assigned by the receiving site.
    pub condor: CondorId,
}

/// A [`GateClock`] reading the grid's virtual time, so admission
/// decisions replay deterministically inside simulations. (A gate
/// fronting a real TCP server wants `gae_gate::WallClock` instead —
/// virtual time only advances when something drives the grid.)
struct GridClock(Arc<Grid>);

impl GateClock for GridClock {
    fn now(&self) -> SimTime {
        self.0.now()
    }
}

/// An [`gae_obs::ObsClock`] on the same virtual timeline, so spans,
/// histograms and lifecycle timelines are deterministic functions of
/// the workload — two runs of the same seed produce byte-identical
/// trace trees in both driver modes.
struct GridObsClock(Arc<Grid>);

impl gae_obs::ObsClock for GridObsClock {
    fn now(&self) -> SimTime {
        self.0.now()
    }
}

/// Interned publication keys for the gate counters, in the flattened
/// order [`gate_stat_values`] produces.
struct GateMetricKeys {
    counters: Vec<MetricKey>,
    queue_depth: MetricKey,
    peak_queue_depth: MetricKey,
}

/// The gate counter parameter names, metric-major; class suffixes
/// come from [`GateClass::ALL`] (e.g. `admitted_production`).
const GATE_COUNTER_STEMS: [&str; 5] = [
    "admitted",
    "rate_limited",
    "shed",
    "expired",
    "breaker_denied",
];

impl GateMetricKeys {
    /// Interns `(site 0, "gate", "<stem>_<class>")` for every counter
    /// plus the two queue-depth gauges.
    fn intern() -> GateMetricKeys {
        let zero = SiteId::new(0);
        let entity: Arc<str> = Arc::from("gate");
        let mut counters = Vec::with_capacity(GATE_COUNTER_STEMS.len() * GateClass::ALL.len());
        for stem in GATE_COUNTER_STEMS {
            for class in GateClass::ALL {
                counters.push(MetricKey::new(
                    zero,
                    entity.clone(),
                    format!("{stem}_{}", class.name()),
                ));
            }
        }
        GateMetricKeys {
            counters,
            queue_depth: MetricKey::new(zero, entity.clone(), "queue_depth"),
            peak_queue_depth: MetricKey::new(zero, entity, "peak_queue_depth"),
        }
    }
}

/// Flattens a [`gae_gate::GateStats`] snapshot in the same
/// metric-major, class-minor order as [`GateMetricKeys::intern`].
fn gate_stat_values(stats: &gae_gate::GateStats) -> Vec<f64> {
    [
        stats.admitted,
        stats.rate_limited,
        stats.shed,
        stats.expired,
        stats.breaker_denied,
    ]
    .iter()
    .flat_map(|arr| arr.iter().map(|v| *v as f64))
    .collect()
}

/// The full Figure 1 deployment wired over one grid.
pub struct ServiceStack {
    /// The fabric.
    pub grid: Arc<Grid>,
    /// Quota and Accounting Service (§4.2.2).
    pub quota: Arc<QuotaService>,
    /// Estimator Service (§6).
    pub estimators: Arc<EstimatorService>,
    /// Job Monitoring Service (§5).
    pub jobmon: Arc<JobMonitoringService>,
    /// Sphinx-substitute scheduler.
    pub scheduler: Arc<Scheduler>,
    /// Steering Service (§4).
    pub steering: Arc<SteeringService>,
    /// Admission control & overload protection for the front door.
    pub gate: Arc<Gate>,
    /// Columnar job-history funnel: journals every terminal task
    /// outcome into the append-only [`gae_hist::HistStore`] the
    /// estimators scan.
    pub hist: Arc<crate::hist::HistFunnel>,
    /// Observability: request traces, latency histograms, per-CondorId
    /// lifecycle timelines — all on the grid's virtual clock.
    obs: Arc<gae_obs::ObsHub>,
    /// How often the polling services run (collector + steering).
    poll_period: SimDuration,
    next_poll: Mutex<SimTime>,
    /// The durable store, when the grid was built with
    /// [`GridBuilder::persist`] or recovered from disk.
    persistence: RwLock<Option<Arc<Persistence>>>,
    /// The replication tee, when [`ServiceStack::attach_replication`]
    /// armed one (wrapped in `repl.*` instrumentation).
    replication: RwLock<Option<Arc<dyn gae_repl::ReplicationSink>>>,
    /// Interned keys for the estimator memo-cache counters published
    /// each poll (`(site 0, "estimator", "memo_hits"/"memo_misses")`).
    memo_keys: (MetricKey, MetricKey),
    /// Interned keys for the gate counters published each poll
    /// (`(site 0, "gate", ...)`).
    gate_keys: GateMetricKeys,
}

impl ServiceStack {
    /// Wires the whole architecture with default policies.
    ///
    /// Panics if the grid carries a persistence configuration whose
    /// directory cannot be initialised; use
    /// [`ServiceStack::try_with_policy`] to handle that as an error.
    pub fn over(grid: Arc<Grid>) -> Arc<ServiceStack> {
        Self::with_policy(grid, SteeringPolicy::default(), SimDuration::from_secs(5))
    }

    /// Wires the architecture with an explicit steering policy and
    /// polling period. Panics under the same conditions as
    /// [`ServiceStack::over`]; infallible for non-persistent grids.
    pub fn with_policy(
        grid: Arc<Grid>,
        policy: SteeringPolicy,
        poll_period: SimDuration,
    ) -> Arc<ServiceStack> {
        Self::try_with_policy(grid, policy, poll_period).expect("persistence initialisation failed")
    }

    /// Wires the architecture, initialising the durable store when the
    /// grid was built with [`GridBuilder::persist`]. Fails if the
    /// persistence directory already holds a store (recover it with
    /// [`ServiceStack::recover_from_disk`] instead) or cannot be
    /// written.
    pub fn try_with_policy(
        grid: Arc<Grid>,
        policy: SteeringPolicy,
        poll_period: SimDuration,
    ) -> GaeResult<Arc<ServiceStack>> {
        let stack = Self::assemble(grid, policy, poll_period);
        if let Some(config) = stack.grid.persistence_config().cloned() {
            stack.attach_persistence(Persistence::create(&config)?);
        }
        Ok(stack)
    }

    /// Wires the services without touching any persistence.
    fn assemble(
        grid: Arc<Grid>,
        policy: SteeringPolicy,
        poll_period: SimDuration,
    ) -> Arc<ServiceStack> {
        let quota = Arc::new(QuotaService::new());
        for site in grid.site_ids() {
            quota.register_site(grid.description(site).expect("listed site"));
        }
        let estimators = Arc::new(EstimatorService::new(grid.clone()));
        let jobmon = Arc::new(JobMonitoringService::new(grid.clone(), estimators.clone()));
        let info = Arc::new(GridSiteInfo::new(
            grid.clone(),
            estimators.clone(),
            quota.clone(),
        ));
        let scheduler = Arc::new(Scheduler::new(info));
        let steering = Arc::new(SteeringService::new(
            grid.clone(),
            scheduler.clone(),
            jobmon.clone(),
            estimators.clone(),
            quota.clone(),
            policy,
        ));
        // The gate reads the grid's virtual clock and classifies by
        // quota standing: a principal billed into the red (grids bill
        // after the fact) drops to Scavenger — first shed, last run.
        let gate = Gate::new(
            grid.gate_config().unwrap_or_default(),
            Arc::new(GridClock(grid.clone())),
        );
        {
            let quota = quota.clone();
            gate.set_class_resolver(move |principal: &Principal| match principal.user {
                Some(user) if quota.balance(user) < 0.0 => GateClass::Scavenger,
                _ => GateClass::Production,
            });
        }
        steering.attach_gate(gate.clone());
        // The observability hub shares the grid's virtual clock and is
        // threaded into every layer that emits spans or instants. The
        // gate reports admission dispositions through its callback so
        // gae-gate never depends on the obs crate.
        let obs = gae_obs::ObsHub::new(Arc::new(GridObsClock(grid.clone())));
        steering.attach_obs(obs.clone());
        jobmon.attach_obs(obs.clone());
        // The history funnel sits behind jobmon's DBManager: every
        // terminal task state the collector stores is also appended to
        // the columnar store, and the estimators retarget their
        // similar-task search onto its pushdown scans.
        let hist = crate::hist::HistFunnel::new(gae_hist::HistConfig::default());
        jobmon.attach_history(hist.clone());
        estimators.attach_history(hist.clone());
        {
            let hub = obs.clone();
            gate.set_disposition_observer(move |disposition, latency| {
                hub.record_gate(disposition, latency);
            });
        }
        // The transfer scheduler reports its lifecycle through a
        // callback so gae-xfer never depends on the obs crate. Every
        // event carries its own instant (the observer runs under the
        // xfer lock and must not read the grid clock).
        {
            let hub = obs.clone();
            grid.with_xfer(|x| {
                x.set_observer(Box::new(move |ev| {
                    use gae_xfer::XferEvent;
                    match ev {
                        XferEvent::Started {
                            id,
                            lfn,
                            from,
                            to,
                            at,
                        } => {
                            let ctx = hub.xfer_trace(*id, &format!("xfer {lfn} {from}->{to}"), *at);
                            hub.span_at(ctx, "xfer.start", *at);
                        }
                        XferEvent::Retried {
                            id, attempt, at, ..
                        } => {
                            let ctx = hub.xfer_trace(*id, "xfer", *at);
                            hub.span_at(ctx, &format!("xfer.retry#{attempt}"), *at);
                        }
                        XferEvent::Resourced { id, from, at } => {
                            let ctx = hub.xfer_trace(*id, "xfer", *at);
                            hub.span_at(ctx, &format!("xfer.resource {from}"), *at);
                        }
                        XferEvent::Landed {
                            id,
                            from,
                            to,
                            requested,
                            at,
                            ..
                        } => {
                            let ctx = hub.xfer_trace(*id, "xfer", *at);
                            hub.span_at(ctx, "xfer.land", *at);
                            hub.record_xfer(
                                &format!("{}->{}", from.raw(), to.raw()),
                                at.saturating_since(*requested),
                            );
                        }
                        XferEvent::Failed { id, reason, at, .. } => {
                            let ctx = hub.xfer_trace(*id, "xfer", *at);
                            hub.span_at(ctx, &format!("xfer.fail: {reason}"), *at);
                        }
                        XferEvent::Evicted { .. } => {}
                    }
                }));
            });
        }
        let memo_keys = (
            MetricKey::new(SiteId::new(0), "estimator", "memo_hits"),
            MetricKey::new(SiteId::new(0), "estimator", "memo_misses"),
        );
        Arc::new(ServiceStack {
            grid,
            quota,
            estimators,
            jobmon,
            scheduler,
            steering,
            gate,
            hist,
            obs,
            poll_period,
            next_poll: Mutex::new(SimTime::ZERO + poll_period),
            persistence: RwLock::new(None),
            replication: RwLock::new(None),
            memo_keys,
            gate_keys: GateMetricKeys::intern(),
        })
    }

    /// Routes every future state transition of the job repository and
    /// the steering tracker through the WAL.
    fn attach_persistence(&self, persistence: Arc<Persistence>) {
        self.jobmon.attach_persistence(persistence.clone());
        self.steering.attach_persistence(persistence.clone());
        self.hist.attach_persistence(persistence.clone());
        {
            let p = persistence.clone();
            self.grid.with_xfer(|x| {
                x.set_journal(Box::new(move |op| {
                    p.append("xfer", persist::xfer_to_record(op));
                }));
            });
        }
        *self.persistence.write() = Some(persistence);
    }

    /// The durable store, when one is attached.
    pub fn persistence(&self) -> Option<Arc<Persistence>> {
        self.persistence.read().clone()
    }

    /// Arms replication: every WAL append/commit/rotate this stack
    /// performs is teed to `sink` (typically a
    /// [`gae_repl::ReplicatedLog`] in attached mode), wrapped in
    /// `repl.*` span and commit-latency instrumentation. Requires an
    /// attached durable store whose commit index matches the sink's
    /// leader commit — replication must observe every commit from the
    /// point it is armed.
    pub fn attach_replication(&self, sink: Arc<dyn gae_repl::ReplicationSink>) -> GaeResult<()> {
        let Some(p) = self.persistence() else {
            return Err(GaeError::InvalidTransition {
                entity: "replication".to_string(),
                from: "no durable store attached".to_string(),
                attempted: "attach_replication".to_string(),
            });
        };
        let leader_commit = sink.stats().leader_commit;
        if p.commit_index() != leader_commit {
            return Err(GaeError::InvalidTransition {
                entity: "replication".to_string(),
                from: format!(
                    "store at commit {}, sink at {}",
                    p.commit_index(),
                    leader_commit
                ),
                attempted: "attach_replication".to_string(),
            });
        }
        let wrapped: Arc<dyn gae_repl::ReplicationSink> =
            Arc::new(crate::replication::ObsSink::new(sink, self.obs.clone()));
        p.set_replication_sink(wrapped.clone());
        *self.replication.write() = Some(wrapped);
        Ok(())
    }

    /// The instrumented replication sink, when one is armed.
    pub fn replication(&self) -> Option<Arc<dyn gae_repl::ReplicationSink>> {
        self.replication.read().clone()
    }

    /// The observability hub: request traces, latency histograms, and
    /// per-CondorId lifecycle timelines, all on the grid's virtual
    /// clock. Attach it to an RPC host
    /// ([`gae_rpc::ServiceHost::attach_obs`]) to time every dispatched
    /// method into it.
    pub fn obs(&self) -> Arc<gae_obs::ObsHub> {
        self.obs.clone()
    }

    /// Schedules a job and registers the concrete plan with the
    /// steering service (the scheduler "sends a concrete job plan to
    /// the Steering Service", §4.2.1). Ready tasks are submitted
    /// immediately; successors follow as prerequisites complete.
    pub fn submit_job(&self, job: JobSpec) -> GaeResult<ConcretePlan> {
        let plan = self
            .scheduler
            .schedule(&gae_types::AbstractPlan::new(job))?;
        self.steering.subscribe_plan(plan.clone())?;
        Ok(plan)
    }

    /// Variant of [`ServiceStack::submit_job`] with an explicit
    /// abstract plan (preferences, site restrictions).
    pub fn submit_plan(&self, plan: &gae_types::AbstractPlan) -> GaeResult<ConcretePlan> {
        let concrete = self.scheduler.schedule(plan)?;
        self.steering.subscribe_plan(concrete.clone())?;
        Ok(concrete)
    }

    /// Runs one service polling round at the current grid time:
    /// flocking first (it changes placements), then monitoring, then
    /// steering.
    pub fn poll(&self) {
        for mv in self.grid.flock_pass() {
            let estimate = self
                .estimators
                .estimate_runtime(mv.to, &mv.spec)
                .map(|e| e.runtime)
                .unwrap_or_else(|_| {
                    SimDuration::from_secs_f64(mv.spec.requested_cpu_hours * 3600.0)
                });
            self.estimators
                .record_submission(mv.to, mv.condor, estimate);
            self.steering
                .note_external_move(mv.task, mv.from, mv.to, mv.condor);
        }
        self.jobmon.poll();
        self.steering.poll();
        // History maintenance rides the poll loop: seal a lingering
        // tail and compact undersized segments on the virtual clock,
        // each decision journaled before it is applied.
        self.hist.maintain(self.grid.now());
        // Publish the estimator memo-cache counters (PR-1 perf work)
        // so dashboards and the `monalisa.*` RPC facade can watch hit
        // rates; keys are interned at construction.
        let (hits, misses) = self.estimators.memo_stats();
        let at = self.grid.now();
        let mut samples = vec![
            (
                self.memo_keys.0.clone(),
                Sample {
                    at,
                    value: hits as f64,
                },
            ),
            (
                self.memo_keys.1.clone(),
                Sample {
                    at,
                    value: misses as f64,
                },
            ),
        ];
        // Gate counters ride the same batch: admitted/shed/expired/
        // rate-limited/breaker-denied per class, queue depth gauges,
        // and one `breaker_<key>` state sample per materialised
        // breaker (closed=0, open=1, half-open=2).
        let stats = self.gate.stats();
        samples.extend(
            self.gate_keys
                .counters
                .iter()
                .zip(gate_stat_values(&stats))
                .map(|(key, value)| (key.clone(), Sample { at, value })),
        );
        samples.push((
            self.gate_keys.queue_depth.clone(),
            Sample {
                at,
                value: stats.queue_depth as f64,
            },
        ));
        samples.push((
            self.gate_keys.peak_queue_depth.clone(),
            Sample {
                at,
                value: stats.peak_queue_depth as f64,
            },
        ));
        for (key, state) in self.gate.breaker_states() {
            samples.push((
                MetricKey::new(SiteId::new(0), "gate", format!("breaker_{key}")),
                Sample {
                    at,
                    value: state.as_metric(),
                },
            ));
        }
        // Transfer-plane metrics under entity "xfer": monotonic
        // counters and queue gauges grid-wide (site 0), storage used/
        // pinned per site, active drains per directed link — all
        // key-sorted by construction (the snapshot's vectors are).
        let xm = self.grid.xfer_metrics();
        let xfer_entity: Arc<str> = Arc::from("xfer");
        for (param, value) in [
            ("completed", xm.counters.completed as f64),
            ("failed", xm.counters.failed as f64),
            ("retried", xm.counters.retried as f64),
            ("evicted", xm.counters.evicted as f64),
            ("history_dropped", xm.counters.history_dropped as f64),
            ("in_flight", xm.in_flight as f64),
            ("waiting", xm.waiting as f64),
        ] {
            samples.push((
                MetricKey::new(SiteId::new(0), xfer_entity.clone(), param),
                Sample { at, value },
            ));
        }
        for (site, used, pinned) in &xm.sites {
            samples.push((
                MetricKey::new(*site, xfer_entity.clone(), "storage_used_bytes"),
                Sample {
                    at,
                    value: *used as f64,
                },
            ));
            samples.push((
                MetricKey::new(*site, xfer_entity.clone(), "storage_pinned"),
                Sample {
                    at,
                    value: *pinned as f64,
                },
            ));
        }
        for (from, to, active) in &xm.links {
            samples.push((
                MetricKey::new(
                    SiteId::new(0),
                    xfer_entity.clone(),
                    format!("link_{}_{}_active", from.raw(), to.raw()),
                ),
                Sample {
                    at,
                    value: *active as f64,
                },
            ));
        }
        // Latency distributions under entity "obs": per-RPC-method and
        // per-gate-disposition count + p50/p95/p99, key-sorted so the
        // batch order is deterministic. The method set is dynamic, so
        // these keys cannot be interned up front.
        let obs_entity: Arc<str> = Arc::from("obs");
        let mut push_dist = |prefix: &str, name: &str, s: gae_obs::HistogramSnapshot| {
            for (suffix, value) in [
                ("count", s.count as f64),
                ("p50_us", s.p50_us as f64),
                ("p95_us", s.p95_us as f64),
                ("p99_us", s.p99_us as f64),
            ] {
                samples.push((
                    MetricKey::new(
                        SiteId::new(0),
                        obs_entity.clone(),
                        format!("{prefix}{name}_{suffix}"),
                    ),
                    Sample { at, value },
                ));
            }
        };
        for (method, snap) in self.obs.rpc_snapshot() {
            push_dist("", &method, snap);
        }
        for (disposition, snap) in self.obs.gate_snapshot() {
            push_dist("gate_", &disposition, snap);
        }
        for (link, snap) in self.obs.xfer_snapshot() {
            push_dist("xfer_", &link, snap);
        }
        for (op, snap) in self.obs.repl_snapshot() {
            push_dist("repl_", &op, snap);
        }
        for (method, snap) in self.obs.hist_snapshot() {
            push_dist("hist_", &method, snap);
        }
        // History-store shape under entity "hist": pure functions of
        // the store's contents (scan and op counters deliberately stay
        // out — they reset across recovery and would fork the metric
        // streams of otherwise-identical runs).
        {
            let hs = self.hist.store().stats();
            let hist_entity: Arc<str> = Arc::from("hist");
            for (param, value) in [
                ("rows", hs.rows as f64),
                ("sealed_segments", hs.sealed_segments as f64),
                ("tail_rows", hs.tail_rows as f64),
                ("dict_words", hs.dict_words as f64),
            ] {
                samples.push((
                    MetricKey::new(SiteId::new(0), hist_entity.clone(), param),
                    Sample { at, value },
                ));
            }
        }
        // Replication counters under entity "repl" whenever a sink is
        // armed: quorum/leader commit indexes, follower liveness,
        // stream/ack/stall/install/election totals.
        if let Some(repl) = self.replication.read().clone() {
            let rs = repl.stats();
            let repl_entity: Arc<str> = Arc::from("repl");
            for (param, value) in [
                ("commit_index", rs.commit_index as f64),
                ("leader_commit", rs.leader_commit as f64),
                ("followers_total", rs.followers_total as f64),
                ("followers_alive", rs.followers_alive as f64),
                ("streamed_records", rs.streamed_records as f64),
                ("acks", rs.acks as f64),
                ("quorum_stalls", rs.quorum_stalls as f64),
                ("snapshot_installs", rs.snapshot_installs as f64),
                ("elections", rs.elections as f64),
            ] {
                samples.push((
                    MetricKey::new(SiteId::new(0), repl_entity.clone(), param),
                    Sample { at, value },
                ));
            }
        }
        self.grid.monitor().publish_batch(samples);
    }

    /// A full, deterministic image of every persisted service.
    pub(crate) fn snapshot_state(&self) -> persist::SnapshotState {
        let (metrics, metrics_published) = self.grid.monitor().metrics_snapshot();
        persist::SnapshotState {
            events: self.grid.monitor().events_snapshot(),
            evicted: self.grid.monitor().evicted_count(),
            metrics,
            metrics_published,
            jobmon: self.jobmon.db_snapshot(),
            steering: self.steering.export_jobs(),
            balances: self.quota.balances_snapshot(),
            ledger: self.quota.ledger(),
            xfer: self.grid.with_xfer(|x| x.export()),
            hist: self.hist.store().encode(),
        }
    }

    /// Durably commits everything logged since the last checkpoint
    /// (one group-commit batch), rotating to a fresh snapshot
    /// generation when the snapshot cadence has elapsed. Returns the
    /// new commit index; a no-op `Ok(0)` when no store is attached.
    ///
    /// [`ServiceStack::run_until`] checkpoints automatically at its
    /// horizon, so every `run_until` call is a recovery point.
    pub fn checkpoint(&self) -> GaeResult<u64> {
        let Some(p) = self.persistence() else {
            return Ok(0);
        };
        let index = p.commit()?;
        let now = self.grid.now();
        if p.snapshot_due(now) {
            let snapshot = persist::encode_snapshot(&self.snapshot_state());
            p.rotate(now, &snapshot)?;
        }
        Ok(index)
    }

    /// Drives the grid and the polling services to `t`.
    ///
    /// Interleaving: execution-service completions happen at exact
    /// instants; the collector and steering service poll every
    /// `poll_period`, which is how the paper's services actually
    /// observed the grid ("periodically monitor the performance of
    /// the job", §7).
    pub fn run_until(&self, t: SimTime) {
        loop {
            let now = self.grid.now();
            if now >= t {
                break;
            }
            // Events sitting exactly at `now` (zero-length tasks,
            // just-submitted work) are consumed without moving time.
            if self
                .grid
                .next_event_time()
                .map(|ev| ev <= now)
                .unwrap_or(false)
            {
                self.grid.advance_to(now);
                continue;
            }
            let next_poll = *self.next_poll.lock();
            if next_poll <= now {
                // The clock moved past one or more due polls (e.g.
                // the caller advanced the grid directly); catch up
                // once, then realign to the original cadence: the
                // next poll stays on the `poll_period` grid anchored
                // at stack construction, so the same workload polls
                // at the same instants no matter who moved the clock.
                self.poll();
                let period = self.poll_period.as_micros().max(1);
                let missed = now.saturating_since(next_poll).as_micros() / period + 1;
                *self.next_poll.lock() = next_poll + SimDuration::from_micros(missed * period);
                continue;
            }
            let mut target = t.min(next_poll);
            if let Some(ev) = self.grid.next_event_time() {
                target = target.min(ev);
            }
            self.grid.advance_to(target);
            if target >= next_poll {
                self.poll();
                *self.next_poll.lock() = next_poll + self.poll_period;
            }
        }
        // Final poll at the horizon so callers observe fresh state.
        self.poll();
        // Every run_until horizon is a durable commit point.
        self.checkpoint().expect("durable checkpoint failed");
    }

    /// Rebuilds a crashed stack from `config.dir`: recovers the
    /// newest intact snapshot plus the longest committed WAL prefix
    /// (falling back one generation if the newest snapshot is
    /// corrupt), replays every committed record, re-arms exactly-once
    /// resubmission of the tasks that were in flight, and resumes
    /// logging into a fresh generation.
    ///
    /// The rebuilt state is exactly the state at the reported
    /// [`RecoveryReport::commit_index`] — uncommitted work (anything
    /// after the last [`ServiceStack::checkpoint`]) is lost, never
    /// half-applied. The virtual clock restarts at zero; resubmitted
    /// tasks restart from scratch (their checkpoints died with the
    /// process in this model).
    pub fn recover_from_disk(
        grid: Arc<Grid>,
        policy: SteeringPolicy,
        poll_period: SimDuration,
        config: &PersistenceConfig,
    ) -> GaeResult<(Arc<ServiceStack>, RecoveryReport)> {
        use gae_repl::StateMachine;

        let recovered = DurableStore::recover(&config.dir)?;
        let stack = Self::assemble(grid, policy, poll_period);
        let mut report = RecoveryReport::from_recovered(&recovered);

        // 1–2. Snapshot restore plus committed-WAL replay, in log
        //    order — both through the [`gae_repl::StateMachine`]
        //    contract, the same path a replication follower applies
        //    mutations through.
        stack.restore(&recovered.snapshot)?;
        for record in &recovered.records {
            stack.apply_mutation(&gae_repl::frame::decode_envelope(record)?)?;
        }

        // 3. Resume the store in a new generation anchored at a fresh
        //    snapshot of the rebuilt state, and re-attach logging.
        let snapshot = persist::encode_snapshot(&stack.snapshot_state());
        let persistence = Persistence::resume(config, &recovered, &snapshot, stack.grid.now())?;
        stack.attach_persistence(persistence);

        // 4. Re-arm, exactly once. First the explicit replications the
        //    log says were requested but never landed or failed — they
        //    restart from zero bytes. Then the in-flight tasks, whose
        //    resubmission rebuilds their input-staging chains through
        //    `Grid::submit` (staged inputs re-arm with the task, never
        //    through the transfer journal, so nothing runs twice).
        stack.grid.with_xfer(|x| x.rearm_pending());
        report.resubmitted = stack.steering.rearm_submitted()?;
        stack.checkpoint()?;
        Ok((stack, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::{JobId, TaskId, TaskStatus, UserId};

    fn two_site_grid() -> Arc<Grid> {
        GridBuilder::new()
            .site_with_load(SiteDescription::new(SiteId::new(1), "busy", 2, 1), 3.0)
            .site(SiteDescription::new(SiteId::new(2), "free", 2, 1))
            .build()
    }

    #[test]
    fn builder_registers_sites() {
        let grid = two_site_grid();
        assert_eq!(grid.site_ids(), vec![SiteId::new(1), SiteId::new(2)]);
        assert!(grid.is_alive(SiteId::new(1)));
        assert!(!grid.is_alive(SiteId::new(9)));
        assert!(grid.description(SiteId::new(2)).is_ok());
        assert!(grid.description(SiteId::new(9)).is_err());
        assert!(grid.exec(SiteId::new(9)).is_err());
    }

    #[test]
    fn metrics_published_at_build_and_advance() {
        let grid = two_site_grid();
        assert_eq!(grid.monitor().site_load(SiteId::new(1)), Some(3.0));
        assert_eq!(grid.monitor().site_load(SiteId::new(2)), Some(0.0));
        grid.advance_to(SimTime::from_secs(10));
        assert_eq!(grid.now(), SimTime::from_secs(10));
        assert_eq!(grid.monitor().queue_length(SiteId::new(2)), Some(0.0));
    }

    #[test]
    fn grid_submit_and_events() {
        let grid = two_site_grid();
        let spec =
            TaskSpec::new(TaskId::new(1), "t", "x").with_cpu_demand(SimDuration::from_secs(10));
        grid.submit(SiteId::new(2), spec, None).unwrap();
        assert_eq!(grid.next_event_time(), Some(SimTime::from_secs(10)));
        grid.advance_to(SimTime::from_secs(10));
        let events = grid.drain_events();
        assert_eq!(events.len(), 3, "queued, running, completed");
        assert!(events.iter().all(|(s, _)| *s == SiteId::new(2)));
    }

    #[test]
    fn stack_runs_simple_job_to_completion() {
        let stack = ServiceStack::over(two_site_grid());
        let mut job = JobSpec::new(JobId::new(1), "demo", UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(1), "t", "prime").with_cpu_demand(SimDuration::from_secs(60)),
        );
        let plan = stack.submit_job(job).unwrap();
        // The scheduler must have preferred the free site.
        assert_eq!(plan.site_of(TaskId::new(1)), Some(SiteId::new(2)));
        stack.run_until(SimTime::from_secs(120));
        let info = stack.jobmon.job_info(TaskId::new(1)).unwrap();
        assert_eq!(info.status, TaskStatus::Completed);
    }

    #[test]
    fn stack_executes_dag_in_order() {
        let stack = ServiceStack::over(two_site_grid());
        let mut job = JobSpec::new(JobId::new(1), "dag", UserId::new(1));
        for i in 1..=3 {
            job.add_task(
                TaskSpec::new(TaskId::new(i), format!("t{i}"), "step")
                    .with_cpu_demand(SimDuration::from_secs(20)),
            );
        }
        job.add_dependency(TaskId::new(1), TaskId::new(2));
        job.add_dependency(TaskId::new(2), TaskId::new(3));
        stack.submit_job(job).unwrap();
        stack.run_until(SimTime::from_secs(30));
        // Task 2 must not have finished before task 1.
        let t1 = stack.jobmon.job_info(TaskId::new(1)).unwrap();
        assert_eq!(t1.status, TaskStatus::Completed);
        // Task 3 is blocked on task 2: either not yet submitted
        // anywhere (unknown to monitoring) or not completed.
        match stack.jobmon.job_info(TaskId::new(3)) {
            Ok(info) => assert_ne!(info.status, TaskStatus::Completed),
            Err(e) => assert!(e.to_string().contains("not found"), "{e}"),
        }
        stack.run_until(SimTime::from_secs(200));
        let t3 = stack.jobmon.job_info(TaskId::new(3)).unwrap();
        assert_eq!(t3.status, TaskStatus::Completed);
    }

    #[test]
    fn run_until_is_idempotent_at_horizon() {
        let stack = ServiceStack::over(two_site_grid());
        stack.run_until(SimTime::from_secs(50));
        stack.run_until(SimTime::from_secs(50));
        assert_eq!(stack.grid.now(), SimTime::from_secs(50));
    }

    /// Builds an 8-site grid (mixed loads) with tasks on every site,
    /// using the given driver.
    fn loaded_grid(driver: DriverMode) -> Arc<Grid> {
        let mut builder = GridBuilder::new().driver(driver);
        for i in 1..=8u64 {
            let desc = SiteDescription::new(SiteId::new(i), format!("s{i}"), 2, 2);
            builder = if i % 2 == 0 {
                builder.site_with_load(desc, 0.25 * i as f64)
            } else {
                builder.site(desc)
            };
        }
        let grid = builder.build();
        for i in 1..=8u64 {
            for j in 0..3u64 {
                let spec = TaskSpec::new(TaskId::new(i * 10 + j), format!("t{i}-{j}"), "app")
                    .with_cpu_demand(SimDuration::from_secs(7 * (j + 1)));
                grid.submit(SiteId::new(i), spec, None).unwrap();
            }
        }
        grid
    }

    #[test]
    fn sharded_driver_is_bit_identical_to_sequential() {
        let sequential = loaded_grid(DriverMode::Sequential);
        let sharded = loaded_grid(DriverMode::sharded(3));
        assert_eq!(sharded.driver_mode(), DriverMode::Sharded { threads: 3 });
        for step in 1..=6u64 {
            let t = SimTime::from_secs(step * 5);
            sequential.advance_to(t);
            sharded.advance_to(t);
            assert_eq!(sequential.drain_events(), sharded.drain_events(), "at {t}");
            for site in sequential.site_ids() {
                assert_eq!(
                    sequential.monitor().site_load(site),
                    sharded.monitor().site_load(site)
                );
                assert_eq!(
                    sequential.monitor().queue_length(site),
                    sharded.monitor().queue_length(site)
                );
            }
        }
    }

    #[test]
    fn drain_order_is_site_then_seq() {
        let grid = loaded_grid(DriverMode::sharded(4));
        grid.advance_to(SimTime::from_secs(60));
        let events = grid.drain_events();
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            let a = (pair[0].0, pair[0].1.seq);
            let b = (pair[1].0, pair[1].1.seq);
            assert!(a < b, "events out of (site, seq) order: {a:?} !< {b:?}");
        }
    }

    #[test]
    fn stack_over_sharded_grid_completes_jobs() {
        let grid = GridBuilder::new()
            .driver(DriverMode::sharded(2))
            .site_with_load(SiteDescription::new(SiteId::new(1), "busy", 2, 1), 3.0)
            .site(SiteDescription::new(SiteId::new(2), "free", 2, 1))
            .build();
        let stack = ServiceStack::over(grid);
        let mut job = JobSpec::new(JobId::new(1), "demo", UserId::new(1));
        job.add_task(
            TaskSpec::new(TaskId::new(1), "t", "prime").with_cpu_demand(SimDuration::from_secs(60)),
        );
        stack.submit_job(job).unwrap();
        stack.run_until(SimTime::from_secs(120));
        let info = stack.jobmon.job_info(TaskId::new(1)).unwrap();
        assert_eq!(info.status, TaskStatus::Completed);
    }

    /// Three-site grid where site 3 has a deliberately fast link to
    /// site 1 (so the buggy raw-minimum would prefer it) and site 2 a
    /// slow one.
    fn staging_grid() -> Arc<Grid> {
        let mut network = gae_sim::NetworkModel::new(gae_sim::Link::new(1e6, SimDuration::ZERO));
        network.set_link(
            SiteId::new(3),
            SiteId::new(1),
            gae_sim::Link::new(1e8, SimDuration::ZERO),
        );
        GridBuilder::new()
            .network(network)
            .site(SiteDescription::new(SiteId::new(1), "dest", 2, 1))
            .site(SiteDescription::new(SiteId::new(2), "slow-src", 2, 1))
            .site(SiteDescription::new(SiteId::new(3), "fast-src", 2, 1))
            .build()
    }

    fn staged_spec() -> TaskSpec {
        TaskSpec::new(TaskId::new(1), "t", "x").with_inputs(vec![gae_types::FileRef::new(
            "data.root",
            100_000_000,
        )
        .with_replicas(vec![SiteId::new(2), SiteId::new(3)])])
    }

    #[test]
    fn staging_time_skips_dead_links() {
        let grid = staging_grid();
        let spec = staged_spec();
        // Both sources live: the fast 3→1 link (1 s) wins.
        assert_eq!(
            grid.staging_time(SiteId::new(1), &spec).unwrap(),
            SimDuration::from_secs(1)
        );
        // Kill the fast link: the oracle must fall back to the live
        // slow source (100 s), not keep quoting the dead fast one.
        grid.with_xfer(|x| x.fail_link(SiteId::new(3), SiteId::new(1)));
        assert_eq!(
            grid.staging_time(SiteId::new(1), &spec).unwrap(),
            SimDuration::from_secs(100)
        );
    }

    #[test]
    fn staging_time_with_no_reachable_replica_is_typed_error() {
        let grid = staging_grid();
        let spec = staged_spec();
        grid.with_xfer(|x| {
            x.fail_link(SiteId::new(2), SiteId::new(1));
            x.fail_link(SiteId::new(3), SiteId::new(1));
        });
        let err = grid.staging_time(SiteId::new(1), &spec).unwrap_err();
        assert!(
            matches!(err, GaeError::Estimator(_)),
            "want the estimator's typed unreachable convention, got {err}"
        );
        // A file already resident at the destination costs nothing
        // even when every link is down.
        let local =
            TaskSpec::new(TaskId::new(2), "t2", "x").with_inputs(vec![gae_types::FileRef::new(
                "local.root",
                1,
            )
            .with_replicas(vec![SiteId::new(1)])]);
        assert_eq!(
            grid.staging_time(SiteId::new(1), &local).unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn staging_time_skips_zero_bandwidth_links() {
        // The fast source sits behind a hand-built zero-bandwidth
        // link: reachable per the replica catalogue, useless per the
        // fabric. The oracle must quote the slow-but-live source.
        let mut network = gae_sim::NetworkModel::new(gae_sim::Link::new(1e6, SimDuration::ZERO));
        network.set_link(
            SiteId::new(3),
            SiteId::new(1),
            gae_sim::Link {
                bandwidth_bps: 0.0,
                latency: SimDuration::ZERO,
            },
        );
        let grid = GridBuilder::new()
            .network(network)
            .site(SiteDescription::new(SiteId::new(1), "dest", 2, 1))
            .site(SiteDescription::new(SiteId::new(2), "slow-src", 2, 1))
            .site(SiteDescription::new(SiteId::new(3), "zero-src", 2, 1))
            .build();
        assert_eq!(
            grid.staging_time(SiteId::new(1), &staged_spec()).unwrap(),
            SimDuration::from_secs(100)
        );
    }

    #[test]
    fn cached_next_event_matches_uncached_scan() {
        let grid = loaded_grid(DriverMode::Sequential);
        assert_eq!(grid.next_event_time(), grid.next_event_time_uncached());
        for step in 1..=8u64 {
            grid.advance_to(SimTime::from_secs(step * 3));
            assert_eq!(
                grid.next_event_time(),
                grid.next_event_time_uncached(),
                "at step {step}"
            );
        }
        // Settled: both agree there is nothing left.
        grid.advance_to(SimTime::from_secs(300));
        assert_eq!(grid.next_event_time(), None);
        assert_eq!(grid.next_event_time_uncached(), None);
    }

    #[test]
    fn estimator_memo_caches_until_invalidated() {
        let stack = ServiceStack::over(two_site_grid());
        let site = SiteId::new(2);
        let spec =
            TaskSpec::new(TaskId::new(1), "t", "app").with_cpu_demand(SimDuration::from_secs(30));
        let meta = gae_trace::TaskMeta::from_spec(&spec);
        // Seed enough history for estimation to succeed. Stack-level
        // estimates read the columnar store, so the seed rows go
        // through the funnel; observe_completion still drives the
        // ring and the memo invalidation.
        let row = |m: &gae_trace::TaskMeta, secs: u64| gae_hist::HistRecord {
            task: 0,
            site: site.raw(),
            nodes: m.nodes as u64,
            submit_us: 0,
            start_us: 0,
            finish_us: 0,
            runtime_us: secs * 1_000_000,
            success: true,
            account: m.account.clone(),
            login: m.login.clone(),
            executable: m.executable.clone(),
            queue: m.queue.clone(),
            partition: m.partition.clone(),
            job_type: m.job_type.to_string(),
        };
        for secs in [20u64, 25, 30, 35] {
            stack
                .estimators
                .observe_completion(site, meta.clone(), SimDuration::from_secs(secs));
            stack.hist.ingest(row(&meta, secs));
        }
        let first = stack.estimators.estimate_runtime(site, &spec).unwrap();
        let (h0, m0) = stack.estimators.memo_stats();
        let second = stack.estimators.estimate_runtime(site, &spec).unwrap();
        let (h1, m1) = stack.estimators.memo_stats();
        assert_eq!(first, second);
        assert_eq!(h1, h0 + 1, "second identical estimate must hit the memo");
        assert_eq!(m1, m0);
        // A completion observation at the site invalidates its entries.
        stack.hist.ingest(row(&meta, 90));
        stack
            .estimators
            .observe_completion(site, meta, SimDuration::from_secs(90));
        let third = stack.estimators.estimate_runtime(site, &spec).unwrap();
        let (_, m2) = stack.estimators.memo_stats();
        assert_eq!(m2, m1 + 1, "post-invalidation estimate must recompute");
        // The recomputed estimate now reflects the observed history.
        assert_ne!(first, third);
    }
}
