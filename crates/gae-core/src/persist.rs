//! Service-level persistence over [`gae_durable`]: what gets logged,
//! how snapshots are encoded, and how a crashed stack is rebuilt.
//!
//! The paper's Steering Service keeps a Backup & Recovery module that
//! must "recollect" job state after a service failure (§4), and the
//! Job Monitoring Service "stores the job information in a repository"
//! (§5). This module is that repository's durable form. See DESIGN.md
//! §8 for the full durability contract.
//!
//! Record payloads and snapshots are XML-RPC `Value` documents — the
//! same wire codecs (`submit.rs`, `jobmon/info.rs`) the RPC layer
//! uses, so everything that crosses the wire can also cross a crash.
//! Rust's shortest-roundtrip `f64` formatting makes the encoding
//! bit-exact, which the crash-equivalence tests rely on.
//!
//! Seven record kinds exist:
//!
//! | kind       | payload                            | written by            |
//! |------------|------------------------------------|-----------------------|
//! | `jobmon`   | full [`JobMonitoringInfo`]         | DBManager store       |
//! | `plan`     | full plan (job spec + assignments) | subscribe/reschedule  |
//! | `task`     | one [`TrackedTask`]                | every phase change    |
//! | `notified` | job id                             | completion notice     |
//! | `charge`   | one [`ChargeRecord`]               | accounting on settle  |
//! | `xfer`     | one [`gae_xfer::JournalOp`]        | transfer scheduler    |
//! | `hist`     | one [`gae_hist::HistOp`]           | history funnel        |

use crate::jobmon::info::JobMonitoringInfo;
use crate::quota::ChargeRecord;
use crate::steering::state::{TaskPhase, TrackedJob, TrackedTask};
use crate::submit::{job_from_value, job_to_value};
use gae_durable::{DurableStore, Recovered, TailState};
use gae_hist::{HistOp, HistRecord};
use gae_monitor::{JobEvent, MetricKey, Sample};
use gae_repl::frame;
use gae_repl::ReplicationSink;
use gae_types::{
    ConcretePlan, CondorId, GaeError, GaeResult, JobId, PlanId, SimDuration, SimTime, SiteId,
    TaskAssignment, TaskId, TaskStatus, UserId,
};
use gae_wire::{parse_value_document, write_value_document, Value};
use gae_xfer::{JournalOp, XferCounters, XferExport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Arc;

/// Where and how a grid persists itself.
#[derive(Clone, Debug)]
pub struct PersistenceConfig {
    /// Directory holding the WAL segments and snapshots.
    pub dir: PathBuf,
    /// Virtual-time cadence between compacting snapshots (rotation
    /// happens at the first checkpoint at or past the cadence).
    pub snapshot_every: SimDuration,
    /// Whether commits fsync (group commit always batches the write;
    /// this controls only the durability barrier).
    pub fsync: bool,
}

impl PersistenceConfig {
    /// Defaults: snapshot every 10 virtual minutes, fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig {
            dir: dir.into(),
            snapshot_every: SimDuration::from_secs(600),
            fsync: true,
        }
    }

    /// Sets the snapshot cadence.
    pub fn snapshot_every(mut self, every: SimDuration) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Enables or disables fsync on commit.
    pub fn fsync(mut self, on: bool) -> Self {
        self.fsync = on;
        self
    }
}

/// Shared handle the services log through. One per grid.
pub struct Persistence {
    store: Mutex<DurableStore>,
    snapshot_every: SimDuration,
    last_snapshot: Mutex<SimTime>,
    /// Optional replication tee: every append/commit/rotate this
    /// handle performs is mirrored to the sink, making this store the
    /// leader of a replicated log without the services knowing.
    repl: Mutex<Option<Arc<dyn ReplicationSink>>>,
}

impl Persistence {
    /// Opens a fresh store (fails if `config.dir` already holds one —
    /// recover it instead of overwriting history).
    pub fn create(config: &PersistenceConfig) -> GaeResult<Arc<Self>> {
        let store = DurableStore::create(&config.dir, config.fsync)?;
        Ok(Arc::new(Persistence {
            store: Mutex::new(store),
            snapshot_every: config.snapshot_every,
            last_snapshot: Mutex::new(SimTime::ZERO),
            repl: Mutex::new(None),
        }))
    }

    /// Continues a recovered store in a new generation anchored at a
    /// fresh snapshot of the rebuilt state.
    pub(crate) fn resume(
        config: &PersistenceConfig,
        recovered: &Recovered,
        snapshot: &[u8],
        now: SimTime,
    ) -> GaeResult<Arc<Self>> {
        let store = DurableStore::resume(&config.dir, recovered, snapshot, config.fsync)?;
        Ok(Arc::new(Persistence {
            store: Mutex::new(store),
            snapshot_every: config.snapshot_every,
            last_snapshot: Mutex::new(now),
            repl: Mutex::new(None),
        }))
    }

    /// Arms the replication tee. The sink must be attached before any
    /// records it is expected to mirror.
    pub(crate) fn set_replication_sink(&self, sink: Arc<dyn ReplicationSink>) {
        *self.repl.lock() = Some(sink);
    }

    fn replication_sink(&self) -> Option<Arc<dyn ReplicationSink>> {
        self.repl.lock().clone()
    }

    /// Appends one typed record to the group-commit buffer.
    pub(crate) fn append(&self, kind: &str, body: Value) {
        if let Some(sink) = self.replication_sink() {
            sink.on_append(kind, &body);
        }
        let doc = frame::encode_envelope(kind, &body);
        self.store.lock().append(doc.into_bytes());
    }

    /// Commits the buffered records (one batched write + marker).
    pub(crate) fn commit(&self) -> GaeResult<u64> {
        let index = self.store.lock().commit()?;
        // The sink streams outside the store lock: follower replay
        // must never extend the leader's commit critical section.
        if let Some(sink) = self.replication_sink() {
            sink.on_commit(index);
        }
        Ok(index)
    }

    /// True when the snapshot cadence has elapsed since the last
    /// rotation.
    pub(crate) fn snapshot_due(&self, now: SimTime) -> bool {
        now.saturating_since(*self.last_snapshot.lock()) >= self.snapshot_every
    }

    /// Rotates to a new generation anchored at `snapshot`. Callers
    /// commit before rotating (checkpoint does), so the tee never
    /// observes an implicit rotation-time commit.
    pub(crate) fn rotate(&self, now: SimTime, snapshot: &[u8]) -> GaeResult<()> {
        let (commit_index, record_seq) = {
            let mut store = self.store.lock();
            store.rotate(snapshot)?;
            (store.commit_index(), store.record_seq())
        };
        if let Some(sink) = self.replication_sink() {
            sink.on_rotate(commit_index, record_seq, snapshot);
        }
        *self.last_snapshot.lock() = now;
        Ok(())
    }

    /// The current commit index.
    pub fn commit_index(&self) -> u64 {
        self.store.lock().commit_index()
    }

    /// The on-disk generation currently being written.
    pub fn generation(&self) -> u64 {
        self.store.lock().generation()
    }

    /// Cumulative I/O statistics (benches).
    pub fn stats(&self) -> gae_durable::StoreStats {
        self.store.lock().stats()
    }
}

/// What [`crate::grid::ServiceStack::recover_from_disk`] found and did.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Generation whose snapshot anchored the recovery.
    pub generation: u64,
    /// Commit point the rebuilt state corresponds to.
    pub commit_index: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: usize,
    /// Whether the newest WAL segment had a torn tail.
    pub tail_was_torn: bool,
    /// Whether the newest snapshot was unusable and recovery fell back
    /// to the previous generation.
    pub used_fallback: bool,
    /// Tasks that were in-flight at the crash and were resubmitted to
    /// their planned sites (exactly-once re-arm).
    pub resubmitted: Vec<TaskId>,
}

impl RecoveryReport {
    pub(crate) fn from_recovered(rec: &Recovered) -> Self {
        RecoveryReport {
            generation: rec.generation,
            commit_index: rec.commit_index,
            replayed_records: rec.records.len(),
            tail_was_torn: !matches!(rec.tail, TailState::Clean),
            used_fallback: rec.used_fallback,
            resubmitted: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------- records

/// Full plan record: unlike the RPC `plan_to_value`, this embeds the
/// job spec and owner so a plan is reconstructible from the log alone.
pub(crate) fn plan_to_record(plan: &ConcretePlan) -> Value {
    Value::struct_of([
        ("id", Value::from(plan.id.raw())),
        ("revision", Value::from(u64::from(plan.revision))),
        ("owner", Value::from(plan.job.owner.raw())),
        ("job", job_to_value(&plan.job)),
        (
            "assignments",
            Value::Array(
                plan.assignments
                    .iter()
                    .map(|a| {
                        Value::struct_of([
                            ("task", Value::from(a.task.raw())),
                            ("site", Value::from(a.site.raw())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn plan_from_record(v: &Value) -> GaeResult<ConcretePlan> {
    let owner = UserId::new(v.member("owner")?.as_u64()?);
    let job = job_from_value(v.member("job")?, owner)?;
    let assignments = v
        .member("assignments")?
        .as_array()?
        .iter()
        .map(|a| {
            Ok(TaskAssignment {
                task: TaskId::new(a.member("task")?.as_u64()?),
                site: SiteId::new(a.member("site")?.as_u64()?),
            })
        })
        .collect::<GaeResult<Vec<_>>>()?;
    let mut plan = ConcretePlan::new(PlanId::new(v.member("id")?.as_u64()?), job, assignments)?;
    plan.revision = u32::try_from(v.member("revision")?.as_u64()?)
        .map_err(|_| GaeError::Parse("plan revision out of range".into()))?;
    Ok(plan)
}

fn phase_to_value(phase: TaskPhase) -> Value {
    match phase {
        TaskPhase::WaitingPrereqs => Value::struct_of([("kind", Value::from("waiting"))]),
        TaskPhase::Submitted { site, condor } => Value::struct_of([
            ("kind", Value::from("submitted")),
            ("site", Value::from(site.raw())),
            ("condor", Value::from(condor.raw())),
        ]),
        TaskPhase::Done { site } => Value::struct_of([
            ("kind", Value::from("done")),
            ("site", Value::from(site.raw())),
        ]),
        TaskPhase::Failed => Value::struct_of([("kind", Value::from("failed"))]),
        TaskPhase::Killed => Value::struct_of([("kind", Value::from("killed"))]),
    }
}

fn phase_from_value(v: &Value) -> GaeResult<TaskPhase> {
    Ok(match v.member("kind")?.as_str()? {
        "waiting" => TaskPhase::WaitingPrereqs,
        "submitted" => TaskPhase::Submitted {
            site: SiteId::new(v.member("site")?.as_u64()?),
            condor: CondorId::new(v.member("condor")?.as_u64()?),
        },
        "done" => TaskPhase::Done {
            site: SiteId::new(v.member("site")?.as_u64()?),
        },
        "failed" => TaskPhase::Failed,
        "killed" => TaskPhase::Killed,
        other => return Err(GaeError::Parse(format!("unknown task phase {other:?}"))),
    })
}

pub(crate) fn task_to_record(job: JobId, t: &TrackedTask) -> Value {
    Value::struct_of([
        ("job", Value::from(job.raw())),
        ("task", Value::from(t.task.raw())),
        ("phase", phase_to_value(t.phase)),
        (
            "recovery_attempts",
            Value::from(u64::from(t.recovery_attempts)),
        ),
        ("moves", Value::from(u64::from(t.moves))),
    ])
}

pub(crate) fn task_from_record(v: &Value) -> GaeResult<(JobId, TrackedTask)> {
    let job = JobId::new(v.member("job")?.as_u64()?);
    let task = TaskId::new(v.member("task")?.as_u64()?);
    Ok((
        job,
        TrackedTask {
            task,
            phase: phase_from_value(v.member("phase")?)?,
            recovery_attempts: v.member("recovery_attempts")?.as_u64()? as u32,
            moves: v.member("moves")?.as_u64()? as u32,
        },
    ))
}

pub(crate) fn charge_to_record(c: &ChargeRecord) -> Value {
    Value::struct_of([
        ("user", Value::from(c.user.raw())),
        ("site", Value::from(c.site.raw())),
        ("cpu_us", Value::from(c.cpu_time.as_micros())),
        ("amount", Value::Double(c.amount)),
    ])
}

pub(crate) fn charge_from_record(v: &Value) -> GaeResult<ChargeRecord> {
    Ok(ChargeRecord {
        user: UserId::new(v.member("user")?.as_u64()?),
        site: SiteId::new(v.member("site")?.as_u64()?),
        cpu_time: SimDuration::from_micros(v.member("cpu_us")?.as_u64()?),
        amount: v.member("amount")?.as_f64()?,
    })
}

fn replicas_to_value(replicas: &[SiteId]) -> Value {
    Value::Array(replicas.iter().map(|s| Value::from(s.raw())).collect())
}

fn replicas_from_value(v: &Value) -> GaeResult<Vec<SiteId>> {
    v.as_array()?
        .iter()
        .map(|s| Ok(SiteId::new(s.as_u64()?)))
        .collect()
}

pub(crate) fn xfer_to_record(op: &JournalOp) -> Value {
    let simple = |kind: &str, lfn: &str, site: SiteId| {
        Value::struct_of([
            ("op", Value::from(kind)),
            ("lfn", Value::from(lfn)),
            ("site", Value::from(site.raw())),
        ])
    };
    match op {
        JournalOp::Register {
            lfn,
            size,
            replicas,
        } => Value::struct_of([
            ("op", Value::from(op.kind())),
            ("lfn", Value::from(lfn.as_str())),
            ("size", Value::from(*size)),
            ("replicas", replicas_to_value(replicas)),
        ]),
        JournalOp::Requested { lfn, to } => simple(op.kind(), lfn, *to),
        JournalOp::Landed { lfn, to } => simple(op.kind(), lfn, *to),
        JournalOp::Failed { lfn, to } => simple(op.kind(), lfn, *to),
        JournalOp::Deleted { lfn, site } => simple(op.kind(), lfn, *site),
        JournalOp::Evicted { lfn, site } => simple(op.kind(), lfn, *site),
    }
}

pub(crate) fn xfer_from_record(v: &Value) -> GaeResult<JournalOp> {
    let lfn = v.member("lfn")?.as_str()?.to_string();
    Ok(match v.member("op")?.as_str()? {
        "register" => JournalOp::Register {
            lfn,
            size: v.member("size")?.as_u64()?,
            replicas: replicas_from_value(v.member("replicas")?)?,
        },
        kind => {
            let site = SiteId::new(v.member("site")?.as_u64()?);
            match kind {
                "requested" => JournalOp::Requested { lfn, to: site },
                "landed" => JournalOp::Landed { lfn, to: site },
                "failed" => JournalOp::Failed { lfn, to: site },
                "deleted" => JournalOp::Deleted { lfn, site },
                "evicted" => JournalOp::Evicted { lfn, site },
                other => {
                    return Err(GaeError::Parse(format!("unknown xfer op {other:?}")));
                }
            }
        }
    })
}

fn xfer_export_to_value(x: &XferExport) -> Value {
    Value::struct_of([
        (
            "files",
            Value::Array(
                x.files
                    .iter()
                    .map(|(lfn, size, replicas)| {
                        Value::struct_of([
                            ("lfn", Value::from(lfn.as_str())),
                            ("size", Value::from(*size)),
                            ("replicas", replicas_to_value(replicas)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "pending",
            Value::Array(
                x.pending
                    .iter()
                    .map(|(lfn, to)| {
                        Value::struct_of([
                            ("lfn", Value::from(lfn.as_str())),
                            ("to", Value::from(to.raw())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "counters",
            Value::struct_of([
                ("completed", Value::from(x.counters.completed)),
                ("failed", Value::from(x.counters.failed)),
                ("retried", Value::from(x.counters.retried)),
                ("evicted", Value::from(x.counters.evicted)),
                ("history_dropped", Value::from(x.counters.history_dropped)),
            ]),
        ),
    ])
}

fn xfer_export_from_value(v: &Value) -> GaeResult<XferExport> {
    let counters = v.member("counters")?;
    Ok(XferExport {
        files: v
            .member("files")?
            .as_array()?
            .iter()
            .map(|f| {
                Ok((
                    f.member("lfn")?.as_str()?.to_string(),
                    f.member("size")?.as_u64()?,
                    replicas_from_value(f.member("replicas")?)?,
                ))
            })
            .collect::<GaeResult<Vec<_>>>()?,
        pending: v
            .member("pending")?
            .as_array()?
            .iter()
            .map(|p| {
                Ok((
                    p.member("lfn")?.as_str()?.to_string(),
                    SiteId::new(p.member("to")?.as_u64()?),
                ))
            })
            .collect::<GaeResult<Vec<_>>>()?,
        counters: XferCounters {
            completed: counters.member("completed")?.as_u64()?,
            failed: counters.member("failed")?.as_u64()?,
            retried: counters.member("retried")?.as_u64()?,
            evicted: counters.member("evicted")?.as_u64()?,
            history_dropped: counters.member("history_dropped")?.as_u64()?,
        },
    })
}

/// One history-store op as a WAL record. `append` carries the full
/// row; `seal` and `compact` are bare markers — the store derives the
/// resulting layout deterministically, so the marker alone replays to
/// identical segments.
pub(crate) fn hist_to_record(op: &HistOp) -> Value {
    match op {
        HistOp::Append(r) => Value::struct_of([
            ("op", Value::from("append")),
            ("task", Value::from(r.task)),
            ("site", Value::from(r.site)),
            ("nodes", Value::from(r.nodes)),
            ("submit_us", Value::from(r.submit_us)),
            ("start_us", Value::from(r.start_us)),
            ("finish_us", Value::from(r.finish_us)),
            ("runtime_us", Value::from(r.runtime_us)),
            ("success", Value::Bool(r.success)),
            ("account", Value::from(r.account.as_str())),
            ("login", Value::from(r.login.as_str())),
            ("executable", Value::from(r.executable.as_str())),
            ("queue", Value::from(r.queue.as_str())),
            ("partition", Value::from(r.partition.as_str())),
            ("job_type", Value::from(r.job_type.as_str())),
        ]),
        HistOp::Seal => Value::struct_of([("op", Value::from("seal"))]),
        HistOp::Compact => Value::struct_of([("op", Value::from("compact"))]),
    }
}

pub(crate) fn hist_from_record(v: &Value) -> GaeResult<HistOp> {
    Ok(match v.member("op")?.as_str()? {
        "append" => HistOp::Append(HistRecord {
            task: v.member("task")?.as_u64()?,
            site: v.member("site")?.as_u64()?,
            nodes: v.member("nodes")?.as_u64()?,
            submit_us: v.member("submit_us")?.as_u64()?,
            start_us: v.member("start_us")?.as_u64()?,
            finish_us: v.member("finish_us")?.as_u64()?,
            runtime_us: v.member("runtime_us")?.as_u64()?,
            success: v.member("success")?.as_bool()?,
            account: v.member("account")?.as_str()?.to_string(),
            login: v.member("login")?.as_str()?.to_string(),
            executable: v.member("executable")?.as_str()?.to_string(),
            queue: v.member("queue")?.as_str()?.to_string(),
            partition: v.member("partition")?.as_str()?.to_string(),
            job_type: v.member("job_type")?.as_str()?.to_string(),
        }),
        "seal" => HistOp::Seal,
        "compact" => HistOp::Compact,
        other => return Err(GaeError::Parse(format!("unknown hist op {other:?}"))),
    })
}

fn event_to_value(e: &JobEvent) -> Value {
    Value::struct_of([
        ("at_us", Value::from(e.at.as_micros())),
        ("job", Value::from(e.job.raw())),
        ("task", Value::from(e.task.raw())),
        ("site", Value::from(e.site.raw())),
        ("status", Value::from(e.status.to_string())),
    ])
}

fn event_from_value(v: &Value) -> GaeResult<JobEvent> {
    Ok(JobEvent {
        at: SimTime::from_micros(v.member("at_us")?.as_u64()?),
        job: JobId::new(v.member("job")?.as_u64()?),
        task: TaskId::new(v.member("task")?.as_u64()?),
        site: SiteId::new(v.member("site")?.as_u64()?),
        status: TaskStatus::from_str(v.member("status")?.as_str()?)?,
    })
}

fn series_to_value(series: &[(MetricKey, Vec<Sample>)]) -> Value {
    Value::Array(
        series
            .iter()
            .map(|(k, samples)| {
                Value::struct_of([
                    ("site", Value::from(k.site.raw())),
                    ("entity", Value::from(&*k.entity)),
                    ("param", Value::from(&*k.param)),
                    (
                        "samples",
                        Value::Array(
                            samples
                                .iter()
                                .map(|s| {
                                    Value::struct_of([
                                        ("at_us", Value::from(s.at.as_micros())),
                                        ("value", Value::Double(s.value)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn series_from_value(v: &Value) -> GaeResult<Vec<(MetricKey, Vec<Sample>)>> {
    v.as_array()?
        .iter()
        .map(|entry| {
            let key = MetricKey::new(
                SiteId::new(entry.member("site")?.as_u64()?),
                entry.member("entity")?.as_str()?.to_string(),
                entry.member("param")?.as_str()?.to_string(),
            );
            let samples = entry
                .member("samples")?
                .as_array()?
                .iter()
                .map(|s| {
                    Ok(Sample {
                        at: SimTime::from_micros(s.member("at_us")?.as_u64()?),
                        value: s.member("value")?.as_f64()?,
                    })
                })
                .collect::<GaeResult<Vec<_>>>()?;
            Ok((key, samples))
        })
        .collect()
}

// ---------------------------------------------------------------- snapshot

/// Decoded snapshot payload: full state of every persisted service.
#[derive(Debug, Default)]
pub(crate) struct SnapshotState {
    pub events: Vec<JobEvent>,
    pub evicted: u64,
    pub metrics: Vec<(MetricKey, Vec<Sample>)>,
    pub metrics_published: u64,
    pub jobmon: Vec<JobMonitoringInfo>,
    pub steering: Vec<TrackedJob>,
    pub balances: Vec<(UserId, f64)>,
    pub ledger: Vec<ChargeRecord>,
    pub xfer: XferExport,
    /// The history store's own binary encoding (it has a canonical
    /// columnar codec; re-encoding it as XML would lose the layout).
    pub hist: Vec<u8>,
}

fn tracked_job_to_value(j: &TrackedJob) -> Value {
    let mut task_ids: Vec<&TaskId> = j.tasks.keys().collect();
    task_ids.sort();
    Value::struct_of([
        ("plan", plan_to_record(&j.plan)),
        ("notified", Value::Bool(j.completion_notified)),
        (
            "tasks",
            Value::Array(
                task_ids
                    .into_iter()
                    .map(|t| task_to_record(j.plan.job_id(), &j.tasks[t]))
                    .collect(),
            ),
        ),
    ])
}

fn tracked_job_from_value(v: &Value) -> GaeResult<TrackedJob> {
    let plan = plan_from_record(v.member("plan")?)?;
    let mut tasks = HashMap::new();
    for t in v.member("tasks")?.as_array()? {
        let (_, tracked) = task_from_record(t)?;
        tasks.insert(tracked.task, tracked);
    }
    Ok(TrackedJob {
        plan,
        tasks,
        completion_notified: v.member("notified")?.as_bool()?,
    })
}

pub(crate) fn encode_snapshot(state: &SnapshotState) -> Vec<u8> {
    let doc = Value::struct_of([
        (
            "events",
            Value::Array(state.events.iter().map(event_to_value).collect()),
        ),
        ("evicted", Value::from(state.evicted)),
        ("metrics", series_to_value(&state.metrics)),
        ("metrics_published", Value::from(state.metrics_published)),
        (
            "jobmon",
            Value::Array(state.jobmon.iter().map(|i| i.to_value()).collect()),
        ),
        (
            "steering",
            Value::Array(state.steering.iter().map(tracked_job_to_value).collect()),
        ),
        (
            "balances",
            Value::Array(
                state
                    .balances
                    .iter()
                    .map(|(u, b)| {
                        Value::struct_of([
                            ("user", Value::from(u.raw())),
                            ("amount", Value::Double(*b)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "ledger",
            Value::Array(state.ledger.iter().map(charge_to_record).collect()),
        ),
        ("xfer", xfer_export_to_value(&state.xfer)),
        ("hist", Value::Base64(state.hist.clone())),
    ]);
    write_value_document(&doc).into_bytes()
}

pub(crate) fn decode_snapshot(bytes: &[u8]) -> GaeResult<SnapshotState> {
    if bytes.is_empty() {
        // Generation-0 snapshots are the empty state.
        return Ok(SnapshotState::default());
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|e| GaeError::Parse(format!("snapshot is not UTF-8: {e}")))?;
    let v = parse_value_document(text)?;
    Ok(SnapshotState {
        events: v
            .member("events")?
            .as_array()?
            .iter()
            .map(event_from_value)
            .collect::<GaeResult<Vec<_>>>()?,
        evicted: v.member("evicted")?.as_u64()?,
        metrics: series_from_value(v.member("metrics")?)?,
        metrics_published: v.member("metrics_published")?.as_u64()?,
        jobmon: v
            .member("jobmon")?
            .as_array()?
            .iter()
            .map(JobMonitoringInfo::from_value)
            .collect::<GaeResult<Vec<_>>>()?,
        steering: v
            .member("steering")?
            .as_array()?
            .iter()
            .map(tracked_job_from_value)
            .collect::<GaeResult<Vec<_>>>()?,
        balances: v
            .member("balances")?
            .as_array()?
            .iter()
            .map(|b| {
                Ok((
                    UserId::new(b.member("user")?.as_u64()?),
                    b.member("amount")?.as_f64()?,
                ))
            })
            .collect::<GaeResult<Vec<_>>>()?,
        ledger: v
            .member("ledger")?
            .as_array()?
            .iter()
            .map(charge_from_record)
            .collect::<GaeResult<Vec<_>>>()?,
        // Snapshots from before the data plane existed carry no
        // transfer state; start it empty.
        xfer: match v.member("xfer") {
            Ok(x) => xfer_export_from_value(x)?,
            Err(_) => XferExport::default(),
        },
        // Likewise for snapshots predating the columnar history.
        hist: match v.member("hist") {
            Ok(h) => h.as_bytes()?.to_vec(),
            Err(_) => Vec::new(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::{JobSpec, TaskSpec};

    fn sample_plan() -> ConcretePlan {
        let mut job = JobSpec::new(JobId::new(7), "j7", UserId::new(3));
        job.add_task(
            TaskSpec::new(TaskId::new(70), "t0", "app").with_cpu_demand(SimDuration::from_secs(30)),
        );
        job.add_task(TaskSpec::new(TaskId::new(71), "t1", "app"));
        job.add_dependency(TaskId::new(70), TaskId::new(71));
        let mut plan = ConcretePlan::new(
            PlanId::new(1),
            job,
            vec![
                TaskAssignment {
                    task: TaskId::new(70),
                    site: SiteId::new(1),
                },
                TaskAssignment {
                    task: TaskId::new(71),
                    site: SiteId::new(2),
                },
            ],
        )
        .unwrap();
        plan.revision = 4;
        plan
    }

    #[test]
    fn plan_record_roundtrip() {
        let plan = sample_plan();
        let decoded = plan_from_record(&plan_to_record(&plan)).unwrap();
        assert_eq!(decoded.id, plan.id);
        assert_eq!(decoded.revision, 4);
        assert_eq!(decoded.job.owner, UserId::new(3));
        assert_eq!(decoded.job.task_ids(), plan.job.task_ids());
        assert_eq!(decoded.assignments, plan.assignments);
    }

    #[test]
    fn task_record_roundtrip_all_phases() {
        for phase in [
            TaskPhase::WaitingPrereqs,
            TaskPhase::Submitted {
                site: SiteId::new(2),
                condor: CondorId::new(19),
            },
            TaskPhase::Done {
                site: SiteId::new(5),
            },
            TaskPhase::Failed,
            TaskPhase::Killed,
        ] {
            let t = TrackedTask {
                task: TaskId::new(9),
                phase,
                recovery_attempts: 2,
                moves: 1,
            };
            let (job, decoded) = task_from_record(&task_to_record(JobId::new(4), &t)).unwrap();
            assert_eq!(job, JobId::new(4));
            assert_eq!(decoded.task, t.task);
            assert_eq!(decoded.phase, t.phase);
            assert_eq!(decoded.recovery_attempts, 2);
            assert_eq!(decoded.moves, 1);
        }
    }

    #[test]
    fn charge_record_roundtrip_is_bit_exact() {
        let c = ChargeRecord {
            user: UserId::new(1),
            site: SiteId::new(2),
            cpu_time: SimDuration::from_secs(12345),
            // Deliberately awkward float: must survive bit-for-bit.
            amount: 0.1 + 0.2,
        };
        let decoded = charge_from_record(&charge_to_record(&c)).unwrap();
        assert_eq!(decoded, c);
        assert_eq!(decoded.amount.to_bits(), c.amount.to_bits());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut tracked = TrackedJob::subscribe(sample_plan()).unwrap();
        tracked.tasks.get_mut(&TaskId::new(70)).unwrap().phase = TaskPhase::Submitted {
            site: SiteId::new(1),
            condor: CondorId::new(40),
        };
        tracked.completion_notified = false;
        let state = SnapshotState {
            events: vec![JobEvent {
                at: SimTime::from_secs(9),
                job: JobId::new(7),
                task: TaskId::new(70),
                site: SiteId::new(1),
                status: TaskStatus::Completed,
            }],
            evicted: 3,
            metrics: vec![(
                MetricKey::site_wide(SiteId::new(1), "cpu_load"),
                vec![Sample {
                    at: SimTime::from_secs(5),
                    value: 0.75,
                }],
            )],
            metrics_published: 11,
            jobmon: Vec::new(),
            steering: vec![tracked],
            balances: vec![(UserId::new(3), 41.5)],
            ledger: vec![ChargeRecord {
                user: UserId::new(3),
                site: SiteId::new(1),
                cpu_time: SimDuration::from_secs(30),
                amount: 0.25,
            }],
            xfer: XferExport {
                files: vec![(
                    "hits.root".to_string(),
                    5_000_000,
                    vec![SiteId::new(1), SiteId::new(2)],
                )],
                pending: vec![("hits.root".to_string(), SiteId::new(3))],
                counters: XferCounters {
                    completed: 4,
                    failed: 1,
                    retried: 2,
                    evicted: 0,
                    history_dropped: 7,
                },
            },
            hist: gae_hist::HistStore::new(gae_hist::HistConfig::default()).encode(),
        };
        let decoded = decode_snapshot(&encode_snapshot(&state)).unwrap();
        assert_eq!(decoded.events, state.events);
        assert_eq!(decoded.evicted, 3);
        assert_eq!(decoded.metrics, state.metrics);
        assert_eq!(decoded.metrics_published, 11);
        assert_eq!(decoded.balances, state.balances);
        assert_eq!(decoded.ledger, state.ledger);
        assert_eq!(decoded.steering.len(), 1);
        let j = &decoded.steering[0];
        assert_eq!(j.plan.revision, 4);
        assert_eq!(
            j.tasks[&TaskId::new(70)].phase,
            TaskPhase::Submitted {
                site: SiteId::new(1),
                condor: CondorId::new(40),
            }
        );
        assert!(!j.completion_notified);
        assert_eq!(decoded.xfer, state.xfer);
        assert_eq!(decoded.hist, state.hist);
    }

    #[test]
    fn empty_snapshot_decodes_to_default() {
        let s = decode_snapshot(&[]).unwrap();
        assert!(s.events.is_empty());
        assert!(s.steering.is_empty());
        assert_eq!(s.evicted, 0);
        assert_eq!(s.xfer, XferExport::default());
    }

    #[test]
    fn xfer_record_roundtrip_all_ops() {
        for op in [
            JournalOp::Register {
                lfn: "a".into(),
                size: 42,
                replicas: vec![SiteId::new(1), SiteId::new(9)],
            },
            JournalOp::Requested {
                lfn: "a".into(),
                to: SiteId::new(2),
            },
            JournalOp::Landed {
                lfn: "a".into(),
                to: SiteId::new(2),
            },
            JournalOp::Failed {
                lfn: "a".into(),
                to: SiteId::new(2),
            },
            JournalOp::Deleted {
                lfn: "a".into(),
                site: SiteId::new(1),
            },
            JournalOp::Evicted {
                lfn: "a".into(),
                site: SiteId::new(1),
            },
        ] {
            let decoded = xfer_from_record(&xfer_to_record(&op)).unwrap();
            assert_eq!(decoded, op);
        }
        // Unknown ops decode to typed parse errors, never panics.
        let bogus = Value::struct_of([
            ("op", Value::from("compress")),
            ("lfn", Value::from("a")),
            ("site", Value::from(1u64)),
        ]);
        assert!(xfer_from_record(&bogus).is_err());
    }

    #[test]
    fn hist_record_roundtrip_all_ops() {
        let append = HistOp::Append(HistRecord {
            task: 9,
            site: 2,
            nodes: 4,
            submit_us: 1_000_000,
            start_us: 2_000_000,
            finish_us: 5_000_000,
            runtime_us: 3_000_000,
            success: true,
            account: "cms".into(),
            login: "alice".into(),
            executable: "reco".into(),
            queue: "prod".into(),
            partition: "batch".into(),
            job_type: "analysis".into(),
        });
        for op in [append, HistOp::Seal, HistOp::Compact] {
            let decoded = hist_from_record(&hist_to_record(&op)).unwrap();
            assert_eq!(decoded, op);
        }
        let bogus = Value::struct_of([("op", Value::from("truncate"))]);
        assert!(hist_from_record(&bogus).is_err());
    }

    #[test]
    fn record_envelope_roundtrip_and_faults() {
        let plan = sample_plan();
        let doc = frame::encode_envelope("plan", &plan_to_record(&plan));
        let m = frame::decode_envelope(doc.as_bytes()).unwrap();
        assert_eq!(m.kind, "plan");
        assert!(plan_from_record(&m.body).is_ok());
        // The envelope codec now lives in gae-repl (leader and
        // followers must agree on bytes); this pins the on-disk format
        // to what [`Persistence::append`] actually writes.
        let legacy = write_value_document(&Value::struct_of([
            ("kind", Value::from("plan")),
            ("body", plan_to_record(&plan)),
        ]));
        assert_eq!(doc, legacy);
        // Corrupted records yield typed parse errors, never panics.
        assert!(frame::decode_envelope(&[0xff, 0xfe, 0x00]).is_err());
        assert!(frame::decode_envelope(b"<value><int>3</int></value>").is_err());
        assert!(frame::decode_envelope(&doc.as_bytes()[..doc.len() / 2]).is_err());
    }
}
