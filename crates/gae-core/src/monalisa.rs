//! XML-RPC facade over the MonALISA-substitute repository, registered
//! as the `monalisa` service.
//!
//! The paper's services publish into MonALISA (§5.4) and read site
//! load from it (§6.1d); this facade also lets external dashboards —
//! the "Grid weather" view the introduction motivates — query the
//! same repository over the wire.

use gae_monitor::{MetricKey, MonAlisaRepository};
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{GaeError, GaeResult, JobId, SimTime, SiteId};
use gae_wire::Value;
use std::sync::Arc;

/// The `monalisa` RPC service.
pub struct MonAlisaRpc {
    repo: Arc<MonAlisaRepository>,
}

impl MonAlisaRpc {
    /// Wraps a repository for RPC registration.
    pub fn new(repo: Arc<MonAlisaRepository>) -> Self {
        MonAlisaRpc { repo }
    }

    fn key_from(params: &[Value]) -> GaeResult<MetricKey> {
        if params.len() < 3 {
            return Err(GaeError::Parse(
                "expected (site, entity, param, ...)".into(),
            ));
        }
        Ok(MetricKey::new(
            SiteId::new(params[0].as_u64()?),
            params[1].as_str()?.to_string(),
            params[2].as_str()?.to_string(),
        ))
    }
}

impl Service for MonAlisaRpc {
    fn name(&self) -> &'static str {
        "monalisa"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            "site_load" => {
                let site = SiteId::new(
                    params
                        .first()
                        .ok_or_else(|| GaeError::Parse("site_load(site)".into()))?
                        .as_u64()?,
                );
                Ok(self.repo.site_load(site).into())
            }
            "queue_length" => {
                let site = SiteId::new(
                    params
                        .first()
                        .ok_or_else(|| GaeError::Parse("queue_length(site)".into()))?
                        .as_u64()?,
                );
                Ok(self.repo.queue_length(site).into())
            }
            "publish" => {
                // publish(site, entity, param, at_us, value)
                if params.len() != 5 {
                    return Err(GaeError::Parse(
                        "publish(site, entity, param, at_us, value)".into(),
                    ));
                }
                let key = Self::key_from(params)?;
                let at = SimTime::from_micros(params[3].as_u64()?);
                self.repo.publish_metric(key, at, params[4].as_f64()?);
                Ok(Value::Bool(true))
            }
            "publish_batch" => {
                // publish_batch([{site, entity, param, at_us, value}, ...])
                let batch = params
                    .first()
                    .ok_or_else(|| GaeError::Parse("publish_batch(samples)".into()))?
                    .as_array()?;
                let mut samples = Vec::with_capacity(batch.len());
                for entry in batch {
                    let key = MetricKey::new(
                        SiteId::new(entry.member("site")?.as_u64()?),
                        entry.member("entity")?.as_str()?.to_string(),
                        entry.member("param")?.as_str()?.to_string(),
                    );
                    let sample = gae_monitor::Sample {
                        at: SimTime::from_micros(entry.member("at_us")?.as_u64()?),
                        value: entry.member("value")?.as_f64()?,
                    };
                    samples.push((key, sample));
                }
                let in_order = self.repo.publish_batch(samples);
                Ok(Value::from(in_order as u64))
            }
            "latest" => {
                let key = Self::key_from(params)?;
                Ok(match self.repo.latest(&key) {
                    Some(s) => Value::struct_of([
                        ("at_us", Value::from(s.at.as_micros())),
                        ("value", Value::from(s.value)),
                    ]),
                    None => Value::Nil,
                })
            }
            "range" => {
                // range(site, entity, param, from_us, to_us)
                if params.len() != 5 {
                    return Err(GaeError::Parse(
                        "range(site, entity, param, from_us, to_us)".into(),
                    ));
                }
                let key = Self::key_from(params)?;
                let from = SimTime::from_micros(params[3].as_u64()?);
                let to = SimTime::from_micros(params[4].as_u64()?);
                Ok(Value::Array(
                    self.repo
                        .range(&key, from, to)
                        .into_iter()
                        .map(|s| {
                            Value::struct_of([
                                ("at_us", Value::from(s.at.as_micros())),
                                ("value", Value::from(s.value)),
                            ])
                        })
                        .collect(),
                ))
            }
            "job_history" => {
                let job = JobId::new(
                    params
                        .first()
                        .ok_or_else(|| GaeError::Parse("job_history(job)".into()))?
                        .as_u64()?,
                );
                Ok(Value::Array(
                    self.repo
                        .job_history(job)
                        .into_iter()
                        .map(|e| {
                            Value::struct_of([
                                ("at_us", Value::from(e.at.as_micros())),
                                ("task", Value::from(e.task.raw())),
                                ("site", Value::from(e.site.raw())),
                                ("status", Value::from(e.status.to_string())),
                            ])
                        })
                        .collect(),
                ))
            }
            other => Err(gae_rpc::service::unknown_method("monalisa", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "site_load",
                help: "latest farm-wide cpu load of a site",
            },
            MethodInfo {
                name: "queue_length",
                help: "latest queue length of a site",
            },
            MethodInfo {
                name: "publish",
                help: "publish one metric sample",
            },
            MethodInfo {
                name: "publish_batch",
                help: "publish many metric samples in one call",
            },
            MethodInfo {
                name: "latest",
                help: "latest sample of (site, entity, param)",
            },
            MethodInfo {
                name: "range",
                help: "samples of a metric within a time window",
            },
            MethodInfo {
                name: "job_history",
                help: "state-change events of a job",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CallContext {
        CallContext::anonymous("test")
    }

    #[test]
    fn publish_then_query() {
        let repo = MonAlisaRepository::with_defaults();
        let svc = MonAlisaRpc::new(repo.clone());
        svc.call(
            &ctx(),
            "publish",
            &[
                Value::from(1u64),
                Value::from("farm"),
                Value::from("cpu_load"),
                Value::from(5_000_000u64),
                Value::Double(2.5),
            ],
        )
        .unwrap();
        let load = svc.call(&ctx(), "site_load", &[Value::from(1u64)]).unwrap();
        assert_eq!(load.as_f64().unwrap(), 2.5);
        let latest = svc
            .call(
                &ctx(),
                "latest",
                &[
                    Value::from(1u64),
                    Value::from("farm"),
                    Value::from("cpu_load"),
                ],
            )
            .unwrap();
        assert_eq!(latest.member("value").unwrap().as_f64().unwrap(), 2.5);
    }

    #[test]
    fn missing_metrics_are_nil() {
        let svc = MonAlisaRpc::new(MonAlisaRepository::with_defaults());
        assert!(svc
            .call(&ctx(), "site_load", &[Value::from(9u64)])
            .unwrap()
            .is_nil());
        assert!(svc
            .call(
                &ctx(),
                "latest",
                &[Value::from(9u64), Value::from("x"), Value::from("y")]
            )
            .unwrap()
            .is_nil());
    }

    #[test]
    fn range_query_over_rpc() {
        let repo = MonAlisaRepository::with_defaults();
        let svc = MonAlisaRpc::new(repo.clone());
        for t in 1..=5u64 {
            repo.publish_site_load(SiteId::new(1), SimTime::from_secs(t), t as f64);
        }
        let r = svc
            .call(
                &ctx(),
                "range",
                &[
                    Value::from(1u64),
                    Value::from("farm"),
                    Value::from("cpu_load"),
                    Value::from(2_000_000u64),
                    Value::from(4_000_000u64),
                ],
            )
            .unwrap();
        assert_eq!(r.as_array().unwrap().len(), 3);
    }

    #[test]
    fn job_history_over_rpc() {
        use gae_monitor::JobEvent;
        use gae_types::{TaskId, TaskStatus};
        let repo = MonAlisaRepository::with_defaults();
        let svc = MonAlisaRpc::new(repo.clone());
        repo.publish_job_event(JobEvent {
            at: SimTime::from_secs(1),
            job: JobId::new(3),
            task: TaskId::new(1),
            site: SiteId::new(1),
            status: TaskStatus::Completed,
        });
        let h = svc
            .call(&ctx(), "job_history", &[Value::from(3u64)])
            .unwrap();
        let h = h.as_array().unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(
            h[0].member("status").unwrap().as_str().unwrap(),
            "completed"
        );
    }

    #[test]
    fn malformed_calls_fault() {
        let svc = MonAlisaRpc::new(MonAlisaRepository::with_defaults());
        assert!(svc.call(&ctx(), "publish", &[Value::from(1u64)]).is_err());
        assert!(svc.call(&ctx(), "range", &[Value::from(1u64)]).is_err());
        assert!(svc.call(&ctx(), "nope", &[]).is_err());
        assert!(svc.call(&ctx(), "site_load", &[]).is_err());
        assert!(svc.call(&ctx(), "publish_batch", &[]).is_err());
        // A sample missing a field faults the whole batch.
        let incomplete = Value::Array(vec![Value::struct_of([
            ("site", Value::from(1u64)),
            ("entity", Value::from("farm")),
        ])]);
        assert!(svc.call(&ctx(), "publish_batch", &[incomplete]).is_err());
    }

    #[test]
    fn batch_publish_over_rpc() {
        let repo = MonAlisaRepository::with_defaults();
        let svc = MonAlisaRpc::new(repo.clone());
        let sample = |site: u64, param: &str, at_us: u64, value: f64| {
            Value::struct_of([
                ("site", Value::from(site)),
                ("entity", Value::from("farm")),
                ("param", Value::from(param)),
                ("at_us", Value::from(at_us)),
                ("value", Value::Double(value)),
            ])
        };
        let batch = Value::Array(vec![
            sample(1, "cpu_load", 1_000_000, 0.25),
            sample(1, "queue_length", 1_000_000, 4.0),
            sample(2, "cpu_load", 1_000_000, 0.75),
        ]);
        let in_order = svc.call(&ctx(), "publish_batch", &[batch]).unwrap();
        assert_eq!(in_order.as_u64().unwrap(), 3);
        assert_eq!(repo.site_load(SiteId::new(1)), Some(0.25));
        assert_eq!(repo.queue_length(SiteId::new(1)), Some(4.0));
        assert_eq!(repo.site_load(SiteId::new(2)), Some(0.75));
    }
}
