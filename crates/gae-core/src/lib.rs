//! # GAE resource-management services
//!
//! The primary contribution of *"Resource Management Services for a
//! Grid Analysis Environment"* (ICPPW'05): an ensemble of cooperating
//! web services giving users information about, and control over,
//! their jobs on a computational grid.
//!
//! * [`estimator`] — the **Estimator Service** (§6): history-based
//!   runtime prediction, queue-time estimation, and file-transfer-time
//!   estimation;
//! * [`jobmon`] — the **Job Monitoring Service** (§5): Job
//!   Information Collector, JMManager, DBManager and the JMExecutable
//!   RPC facade, publishing state changes to MonALISA;
//! * [`steering`] — the **Steering Service** (§4): Subscriber,
//!   Command Processor, Optimizer, Backup & Recovery and Session
//!   Manager;
//! * [`quota`] — the **Quota and Accounting Service** the Optimizer
//!   consults for *cheap* scheduling (§4.2.2; "currently, just a
//!   trivial prototype" in the paper, implemented fully here);
//! * [`grid`] — the fabric binding execution sites, the monitoring
//!   repository and the network model into one steerable grid, plus
//!   the simulation driver;
//! * [`provider`] — the estimator-backed
//!   [`SiteInfoProvider`](gae_sched::SiteInfoProvider) the scheduler
//!   decides over.
//!
//! ## Quick start
//!
//! ```
//! use gae_core::grid::{Grid, GridBuilder};
//! use gae_types::prelude::*;
//!
//! // Two sites: A is busy, B is free.
//! let grid = GridBuilder::new()
//!     .site_with_load(SiteDescription::new(SiteId::new(1), "site-a", 4, 1), 3.0)
//!     .site(SiteDescription::new(SiteId::new(2), "site-b", 4, 1))
//!     .build();
//! let stack = gae_core::grid::ServiceStack::over(grid);
//!
//! // Submit a 60-second job and run the grid forward.
//! let mut job = JobSpec::new(JobId::new(1), "demo", UserId::new(1));
//! job.add_task(
//!     TaskSpec::new(TaskId::new(1), "t", "prime")
//!         .with_cpu_demand(SimDuration::from_secs(60)),
//! );
//! let plan = stack.submit_job(job).unwrap();
//! stack.run_until(SimTime::from_secs(120));
//! let info = stack.jobmon.job_info(TaskId::new(1)).unwrap();
//! assert_eq!(info.status, TaskStatus::Completed);
//! # let _ = plan;
//! ```

#![warn(missing_docs)]

pub mod analysis_session;
pub mod estimator;
pub mod grid;
pub mod hist;
pub mod jobmon;
pub mod monalisa;
pub mod obs_rpc;
pub mod persist;
pub mod provider;
pub mod quota;
pub mod replica;
pub mod replication;
pub mod steering;
pub mod submit;

pub use analysis_session::{AnalysisSessionRpc, AnalysisSessionStore};
pub use estimator::EstimatorService;
pub use grid::{DriverMode, Grid, GridBuilder, ServiceStack};
pub use hist::{HistFunnel, HistoryRpc};
pub use jobmon::JobMonitoringService;
pub use monalisa::MonAlisaRpc;
pub use obs_rpc::{StatsRpc, TraceRpc};
pub use provider::GridSiteInfo;
pub use quota::QuotaService;
pub use replica::{ReplicaCatalog, ReplicaRpc};
pub use steering::SteeringService;
pub use submit::SchedulerRpc;
