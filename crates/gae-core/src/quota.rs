//! The Quota and Accounting Service.
//!
//! The steering Optimizer "contacts the Quota and Accounting Service
//! (currently, just a trivial prototype) to find the cheapest site
//! for job execution" (§4.2.2). We implement the full service: per-
//! site charge rates, per-user balances, cost quotes, and charging on
//! completion.

use gae_types::{GaeError, GaeResult, SimDuration, SiteDescription, SiteId, UserId};
use parking_lot::RwLock;
use std::collections::HashMap;

/// One accounting ledger entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ChargeRecord {
    /// Who was charged.
    pub user: UserId,
    /// Where the work ran.
    pub site: SiteId,
    /// CPU time charged for.
    pub cpu_time: SimDuration,
    /// Amount deducted.
    pub amount: f64,
}

/// Per-site rates, per-user balances, and the ledger.
pub struct QuotaService {
    rates: RwLock<HashMap<SiteId, (f64, f64)>>, // (cpu_hour, idle_hour)
    balances: RwLock<HashMap<UserId, f64>>,
    ledger: RwLock<Vec<ChargeRecord>>,
}

impl QuotaService {
    /// An empty service.
    pub fn new() -> Self {
        QuotaService {
            rates: RwLock::new(HashMap::new()),
            balances: RwLock::new(HashMap::new()),
            ledger: RwLock::new(Vec::new()),
        }
    }

    /// Registers a site's charge rates from its description.
    pub fn register_site(&self, site: &SiteDescription) {
        self.rates.write().insert(
            site.id,
            (site.charge_per_cpu_hour, site.charge_per_idle_hour),
        );
    }

    /// Grants a user an allocation (additive).
    pub fn grant(&self, user: UserId, amount: f64) {
        *self.balances.write().entry(user).or_insert(0.0) += amount;
    }

    /// A user's remaining balance (0 if never granted).
    pub fn balance(&self, user: UserId) -> f64 {
        self.balances.read().get(&user).copied().unwrap_or(0.0)
    }

    /// Quote: what would `cpu_time` at `site` cost? This is the
    /// number the Optimizer compares across sites for the *cheap*
    /// preference.
    pub fn quote(&self, site: SiteId, cpu_time: SimDuration) -> GaeResult<f64> {
        let rates = self.rates.read();
        let (cpu_rate, _) = rates
            .get(&site)
            .ok_or_else(|| GaeError::NotFound(format!("rates for {site}")))?;
        Ok(cpu_rate * cpu_time.as_secs_f64() / 3600.0)
    }

    /// Whether `user` can afford `cpu_time` at `site`.
    pub fn can_afford(&self, user: UserId, site: SiteId, cpu_time: SimDuration) -> GaeResult<bool> {
        Ok(self.balance(user) >= self.quote(site, cpu_time)?)
    }

    /// Charges a completed run against the owner's balance. Balances
    /// may go negative (grids bill after the fact); the record lands
    /// in the ledger either way.
    pub fn charge(&self, user: UserId, site: SiteId, cpu_time: SimDuration) -> GaeResult<f64> {
        let amount = self.quote(site, cpu_time)?;
        *self.balances.write().entry(user).or_insert(0.0) -= amount;
        self.ledger.write().push(ChargeRecord {
            user,
            site,
            cpu_time,
            amount,
        });
        Ok(amount)
    }

    /// The ledger so far.
    pub fn ledger(&self) -> Vec<ChargeRecord> {
        self.ledger.read().clone()
    }

    /// Re-applies a ledger entry verbatim — the WAL replay path.
    /// Unlike [`Self::charge`] this does not re-quote: the logged
    /// amount is deducted bit-for-bit, so recovery never depends on
    /// rate registration order or floating-point re-derivation.
    pub fn apply_charge(&self, record: ChargeRecord) {
        *self.balances.write().entry(record.user).or_insert(0.0) -= record.amount;
        self.ledger.write().push(record);
    }

    /// All balances, user-sorted (deterministic snapshot export).
    pub fn balances_snapshot(&self) -> Vec<(UserId, f64)> {
        let mut out: Vec<(UserId, f64)> =
            self.balances.read().iter().map(|(u, b)| (*u, *b)).collect();
        out.sort_by_key(|(u, _)| *u);
        out
    }

    /// Replaces balances and ledger, as when restoring a snapshot.
    /// Registered rates are untouched — they derive from the grid
    /// topology, not from accounting history.
    pub fn restore(&self, balances: Vec<(UserId, f64)>, ledger: Vec<ChargeRecord>) {
        *self.balances.write() = balances.into_iter().collect();
        *self.ledger.write() = ledger;
    }

    /// Total charged to one user.
    pub fn total_charged(&self, user: UserId) -> f64 {
        self.ledger
            .read()
            .iter()
            .filter(|c| c.user == user)
            .map(|c| c.amount)
            .sum()
    }
}

impl Default for QuotaService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(id: u64, rate: f64) -> SiteDescription {
        SiteDescription::new(SiteId::new(id), format!("s{id}"), 1, 1).with_charge(rate, 0.1)
    }

    #[test]
    fn quote_uses_site_rate() {
        let q = QuotaService::new();
        q.register_site(&site(1, 7.2));
        // Half an hour at 7.2/h.
        assert!(
            (q.quote(SiteId::new(1), SimDuration::from_secs(1800))
                .unwrap()
                - 3.6)
                .abs()
                < 1e-9
        );
        assert!(q.quote(SiteId::new(9), SimDuration::from_secs(1)).is_err());
    }

    #[test]
    fn grant_and_balance() {
        let q = QuotaService::new();
        assert_eq!(q.balance(UserId::new(1)), 0.0);
        q.grant(UserId::new(1), 100.0);
        q.grant(UserId::new(1), 50.0);
        assert_eq!(q.balance(UserId::new(1)), 150.0);
    }

    #[test]
    fn affordability() {
        let q = QuotaService::new();
        q.register_site(&site(1, 1.0));
        let u = UserId::new(1);
        q.grant(u, 1.0);
        assert!(q
            .can_afford(u, SiteId::new(1), SimDuration::from_secs(3600))
            .unwrap());
        assert!(!q
            .can_afford(u, SiteId::new(1), SimDuration::from_secs(7200))
            .unwrap());
    }

    #[test]
    fn charging_updates_balance_and_ledger() {
        let q = QuotaService::new();
        q.register_site(&site(1, 2.0));
        let u = UserId::new(1);
        q.grant(u, 10.0);
        let amount = q
            .charge(u, SiteId::new(1), SimDuration::from_secs(3600))
            .unwrap();
        assert_eq!(amount, 2.0);
        assert_eq!(q.balance(u), 8.0);
        assert_eq!(q.ledger().len(), 1);
        assert_eq!(q.total_charged(u), 2.0);
        // Charging an unknown user opens a (negative) account.
        q.charge(UserId::new(2), SiteId::new(1), SimDuration::from_secs(3600))
            .unwrap();
        assert_eq!(q.balance(UserId::new(2)), -2.0);
    }

    #[test]
    fn cheapest_site_comparison() {
        let q = QuotaService::new();
        q.register_site(&site(1, 5.0));
        q.register_site(&site(2, 1.0));
        let t = SimDuration::from_secs(3600);
        assert!(q.quote(SiteId::new(2), t).unwrap() < q.quote(SiteId::new(1), t).unwrap());
    }
}
