//! Analysis-session state (§3): the GAE web services cooperate to
//! "store the state of users' analysis sessions, and allow users to
//! make their own choices about job execution".
//!
//! An analysis session is a named, per-user workspace: the jobs it
//! spawned, free-form notes, and bookmarks (datasets, plots). A
//! physicist can close the laptop, reconnect from another Clarens
//! client, and pick up where they left off.

use crate::grid::Grid;
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{GaeError, GaeResult, JobId, SimTime, UserId};
use gae_wire::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One stored analysis session.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisSession {
    /// The owning user.
    pub owner: UserId,
    /// Session name, unique per user.
    pub name: String,
    /// Creation instant.
    pub created_at: SimTime,
    /// Last mutation instant.
    pub updated_at: SimTime,
    /// Jobs submitted from this session.
    pub jobs: Vec<JobId>,
    /// Timestamped free-form notes.
    pub notes: Vec<(SimTime, String)>,
    /// Named bookmarks (dataset LFNs, plot references, ...).
    pub bookmarks: Vec<(String, String)>,
}

/// Per-user named session storage.
pub struct AnalysisSessionStore {
    grid: Arc<Grid>,
    sessions: RwLock<HashMap<(UserId, String), AnalysisSession>>,
}

impl AnalysisSessionStore {
    /// An empty store timestamping against the grid clock.
    pub fn new(grid: Arc<Grid>) -> Arc<Self> {
        Arc::new(AnalysisSessionStore {
            grid,
            sessions: RwLock::new(HashMap::new()),
        })
    }

    /// Opens (or reopens) a session; reopening is idempotent.
    pub fn open(&self, owner: UserId, name: &str) -> AnalysisSession {
        let now = self.grid.now();
        self.sessions
            .write()
            .entry((owner, name.to_string()))
            .or_insert_with(|| AnalysisSession {
                owner,
                name: name.to_string(),
                created_at: now,
                updated_at: now,
                jobs: Vec::new(),
                notes: Vec::new(),
                bookmarks: Vec::new(),
            })
            .clone()
    }

    fn mutate<R>(
        &self,
        owner: UserId,
        name: &str,
        f: impl FnOnce(&mut AnalysisSession) -> R,
    ) -> GaeResult<R> {
        let now = self.grid.now();
        let mut sessions = self.sessions.write();
        let session = sessions
            .get_mut(&(owner, name.to_string()))
            .ok_or_else(|| GaeError::NotFound(format!("analysis session {name:?}")))?;
        session.updated_at = now;
        Ok(f(session))
    }

    /// Fetches a session.
    pub fn get(&self, owner: UserId, name: &str) -> GaeResult<AnalysisSession> {
        self.sessions
            .read()
            .get(&(owner, name.to_string()))
            .cloned()
            .ok_or_else(|| GaeError::NotFound(format!("analysis session {name:?}")))
    }

    /// Session names of one user, sorted.
    pub fn list(&self, owner: UserId) -> Vec<String> {
        let mut names: Vec<String> = self
            .sessions
            .read()
            .keys()
            .filter(|(u, _)| *u == owner)
            .map(|(_, n)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Records a job as belonging to the session.
    pub fn attach_job(&self, owner: UserId, name: &str, job: JobId) -> GaeResult<()> {
        self.mutate(owner, name, |s| {
            if !s.jobs.contains(&job) {
                s.jobs.push(job);
            }
        })
    }

    /// Appends a timestamped note.
    pub fn note(&self, owner: UserId, name: &str, text: &str) -> GaeResult<()> {
        let now = self.grid.now();
        self.mutate(owner, name, |s| s.notes.push((now, text.to_string())))
    }

    /// Sets (or replaces) a named bookmark.
    pub fn bookmark(&self, owner: UserId, name: &str, label: &str, payload: &str) -> GaeResult<()> {
        self.mutate(owner, name, |s| {
            if let Some(slot) = s.bookmarks.iter_mut().find(|(l, _)| l == label) {
                slot.1 = payload.to_string();
            } else {
                s.bookmarks.push((label.to_string(), payload.to_string()));
            }
        })
    }

    /// Deletes a session.
    pub fn delete(&self, owner: UserId, name: &str) -> bool {
        self.sessions
            .write()
            .remove(&(owner, name.to_string()))
            .is_some()
    }
}

fn session_to_value(s: &AnalysisSession) -> Value {
    Value::struct_of([
        ("name", Value::from(s.name.as_str())),
        ("owner", Value::from(s.owner.raw())),
        ("created_us", Value::from(s.created_at.as_micros())),
        ("updated_us", Value::from(s.updated_at.as_micros())),
        (
            "jobs",
            Value::Array(s.jobs.iter().map(|j| Value::from(j.raw())).collect()),
        ),
        (
            "notes",
            Value::Array(
                s.notes
                    .iter()
                    .map(|(at, text)| {
                        Value::struct_of([
                            ("at_us", Value::from(at.as_micros())),
                            ("text", Value::from(text.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "bookmarks",
            Value::Array(
                s.bookmarks
                    .iter()
                    .map(|(l, p)| {
                        Value::struct_of([
                            ("label", Value::from(l.as_str())),
                            ("payload", Value::from(p.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// XML-RPC facade, registered as the `sessionstore` service. All
/// methods act on the calling user's own sessions.
pub struct AnalysisSessionRpc {
    store: Arc<AnalysisSessionStore>,
}

impl AnalysisSessionRpc {
    /// Wraps the store for RPC registration.
    pub fn new(store: Arc<AnalysisSessionStore>) -> Self {
        AnalysisSessionRpc { store }
    }
}

impl Service for AnalysisSessionRpc {
    fn name(&self) -> &'static str {
        "sessionstore"
    }

    fn call(&self, ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        let user = ctx.require_user()?;
        let str_param = |i: usize| -> GaeResult<&str> {
            params
                .get(i)
                .ok_or_else(|| GaeError::Parse(format!("missing parameter {i}")))?
                .as_str()
        };
        match method {
            "open" => Ok(session_to_value(&self.store.open(user, str_param(0)?))),
            "get" => Ok(session_to_value(&self.store.get(user, str_param(0)?)?)),
            "list" => Ok(Value::Array(
                self.store.list(user).into_iter().map(Value::from).collect(),
            )),
            "attach_job" => {
                let job = JobId::new(
                    params
                        .get(1)
                        .ok_or_else(|| GaeError::Parse("attach_job(name, job)".into()))?
                        .as_u64()?,
                );
                self.store.attach_job(user, str_param(0)?, job)?;
                Ok(Value::Bool(true))
            }
            "note" => {
                self.store.note(user, str_param(0)?, str_param(1)?)?;
                Ok(Value::Bool(true))
            }
            "bookmark" => {
                self.store
                    .bookmark(user, str_param(0)?, str_param(1)?, str_param(2)?)?;
                Ok(Value::Bool(true))
            }
            "delete" => Ok(Value::Bool(self.store.delete(user, str_param(0)?))),
            other => Err(gae_rpc::service::unknown_method("sessionstore", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "open",
                help: "open (or reopen) a named analysis session",
            },
            MethodInfo {
                name: "get",
                help: "fetch one of the caller's sessions",
            },
            MethodInfo {
                name: "list",
                help: "the caller's session names",
            },
            MethodInfo {
                name: "attach_job",
                help: "record a job as part of a session",
            },
            MethodInfo {
                name: "note",
                help: "append a timestamped note",
            },
            MethodInfo {
                name: "bookmark",
                help: "set a named bookmark (dataset, plot, ...)",
            },
            MethodInfo {
                name: "delete",
                help: "delete a session",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridBuilder;
    use gae_types::{SimTime, SiteDescription, SiteId};

    fn store() -> (Arc<Grid>, Arc<AnalysisSessionStore>) {
        let grid = GridBuilder::new()
            .site(SiteDescription::new(SiteId::new(1), "s", 1, 1))
            .build();
        let store = AnalysisSessionStore::new(grid.clone());
        (grid, store)
    }

    #[test]
    fn open_is_idempotent() {
        let (grid, store) = store();
        let u = UserId::new(1);
        let a = store.open(u, "higgs-search");
        grid.advance_to(SimTime::from_secs(100));
        let b = store.open(u, "higgs-search");
        assert_eq!(a, b, "reopening returns the stored session");
        assert_eq!(a.created_at, SimTime::ZERO);
    }

    #[test]
    fn state_accumulates_with_timestamps() {
        let (grid, store) = store();
        let u = UserId::new(1);
        store.open(u, "s1");
        store.attach_job(u, "s1", JobId::new(7)).unwrap();
        grid.advance_to(SimTime::from_secs(60));
        store
            .note(u, "s1", "peak looks wider than expected")
            .unwrap();
        store.bookmark(u, "s1", "dataset", "lfn:/cms/run7").unwrap();
        store.bookmark(u, "s1", "dataset", "lfn:/cms/run8").unwrap(); // replace
        let s = store.get(u, "s1").unwrap();
        assert_eq!(s.jobs, vec![JobId::new(7)]);
        assert_eq!(s.notes.len(), 1);
        assert_eq!(s.notes[0].0, SimTime::from_secs(60));
        assert_eq!(
            s.bookmarks,
            vec![("dataset".to_string(), "lfn:/cms/run8".to_string())]
        );
        assert_eq!(s.updated_at, SimTime::from_secs(60));
        // Duplicate job attach ignored.
        store.attach_job(u, "s1", JobId::new(7)).unwrap();
        assert_eq!(store.get(u, "s1").unwrap().jobs.len(), 1);
    }

    #[test]
    fn sessions_are_per_user() {
        let (_grid, store) = store();
        store.open(UserId::new(1), "shared-name");
        store.open(UserId::new(2), "shared-name");
        store.note(UserId::new(1), "shared-name", "mine").unwrap();
        assert!(store
            .get(UserId::new(2), "shared-name")
            .unwrap()
            .notes
            .is_empty());
        assert_eq!(store.list(UserId::new(1)), vec!["shared-name"]);
        assert!(store.list(UserId::new(3)).is_empty());
    }

    #[test]
    fn missing_sessions_error() {
        let (_grid, store) = store();
        let u = UserId::new(1);
        assert!(store.get(u, "nope").is_err());
        assert!(store.note(u, "nope", "x").is_err());
        assert!(store.attach_job(u, "nope", JobId::new(1)).is_err());
        assert!(!store.delete(u, "nope"));
    }

    #[test]
    fn delete_removes() {
        let (_grid, store) = store();
        let u = UserId::new(1);
        store.open(u, "temp");
        assert!(store.delete(u, "temp"));
        assert!(store.get(u, "temp").is_err());
    }

    #[test]
    fn rpc_requires_session_and_scopes_to_caller() {
        use gae_types::SessionId;
        let (_grid, store) = store();
        let svc = AnalysisSessionRpc::new(store.clone());
        let anon = CallContext::anonymous("t");
        assert!(matches!(
            svc.call(&anon, "open", &[Value::from("s")]),
            Err(GaeError::Unauthorized(_))
        ));
        let alice = CallContext::authenticated(UserId::new(1), SessionId::new(1));
        let bob = CallContext::authenticated(UserId::new(2), SessionId::new(2));
        svc.call(&alice, "open", &[Value::from("mywork")]).unwrap();
        svc.call(
            &alice,
            "note",
            &[Value::from("mywork"), Value::from("hello")],
        )
        .unwrap();
        svc.call(
            &alice,
            "bookmark",
            &[
                Value::from("mywork"),
                Value::from("plot"),
                Value::from("mass-peak.png"),
            ],
        )
        .unwrap();
        svc.call(
            &alice,
            "attach_job",
            &[Value::from("mywork"), Value::from(5u64)],
        )
        .unwrap();
        // Bob cannot see alice's session.
        assert!(svc.call(&bob, "get", &[Value::from("mywork")]).is_err());
        let mine = svc.call(&alice, "get", &[Value::from("mywork")]).unwrap();
        assert_eq!(mine.member("notes").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(mine.member("jobs").unwrap().as_array().unwrap().len(), 1);
        let names = svc.call(&alice, "list", &[]).unwrap();
        assert_eq!(names.as_array().unwrap().len(), 1);
        assert_eq!(
            svc.call(&alice, "delete", &[Value::from("mywork")])
                .unwrap(),
            Value::Bool(true)
        );
    }
}
