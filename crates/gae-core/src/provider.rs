//! The estimator-backed site-information provider the scheduler
//! decides over — the glue of §6.1 steps a–d: ask each site's runtime
//! estimator, read MonALISA's load table, quote the cost.

use crate::estimator::EstimatorService;
use crate::grid::Grid;
use crate::quota::QuotaService;
use gae_sched::{SiteEstimate, SiteInfoProvider};
use gae_types::{FileRef, GaeResult, SimDuration, SiteId, TaskSpec};
use std::sync::Arc;

/// [`SiteInfoProvider`] over the live grid.
pub struct GridSiteInfo {
    grid: Arc<Grid>,
    estimators: Arc<EstimatorService>,
    quota: Arc<QuotaService>,
}

impl GridSiteInfo {
    /// Wires the provider.
    pub fn new(
        grid: Arc<Grid>,
        estimators: Arc<EstimatorService>,
        quota: Arc<QuotaService>,
    ) -> Self {
        GridSiteInfo {
            grid,
            estimators,
            quota,
        }
    }

    /// Runtime estimate with the deployment fallback: if the site's
    /// history cannot produce an estimate (empty history — the §6.1a
    /// "availability of the runtime estimator" caveat), fall back to
    /// the user's requested CPU hours scaled by the site's speed.
    fn runtime_estimate(&self, site: SiteId, task: &TaskSpec) -> SimDuration {
        let base = match self.estimators.estimate_runtime(site, task) {
            Ok(est) => est.runtime,
            Err(_) => SimDuration::from_secs_f64(task.requested_cpu_hours * 3600.0),
        };
        // Express as wall time on this site's CPUs.
        match self.grid.description(site) {
            Ok(desc) => base.div_f64(desc.speed_factor),
            Err(_) => base,
        }
    }
}

impl SiteInfoProvider for GridSiteInfo {
    fn sites(&self) -> Vec<SiteId> {
        self.grid.site_ids()
    }

    fn is_alive(&self, site: SiteId) -> bool {
        self.grid.is_alive(site)
    }

    fn estimate(&self, site: SiteId, task: &TaskSpec) -> GaeResult<SiteEstimate> {
        let runtime = self.runtime_estimate(site, task);
        let queue_time = self.estimators.estimate_queue_time_for_spec(site, task)?;
        // Files with no replica anywhere are produced by the job
        // itself; they cost nothing to stage.
        let stageable: Vec<FileRef> = task
            .input_files
            .iter()
            .filter(|f| !f.replicas.is_empty())
            .cloned()
            .collect();
        let transfer_time = self.estimators.estimate_transfer(&stageable, site)?;
        let load = self.grid.monitor().site_load(site).unwrap_or_else(|| {
            self.grid
                .exec(site)
                .map(|e| e.lock().current_load())
                .unwrap_or(0.0)
        });
        let cost = self.quota.quote(site, runtime).unwrap_or(f64::MAX / 4.0);
        Ok(SiteEstimate {
            runtime,
            queue_time,
            transfer_time,
            load,
            cost,
        })
    }
}
