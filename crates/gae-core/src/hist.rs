//! The columnar job-history subsystem's service-side wiring: the
//! [`HistFunnel`] that journals every store mutation through the WAL,
//! and the [`HistoryRpc`] facade exposing `history.query` /
//! `history.export` / `history.stats`.
//!
//! The funnel is the *only* writer of the [`gae_hist::HistStore`].
//! Every op it applies is first appended as a `"hist"` WAL record
//! (when persistence is attached), so the store's contents — segment
//! boundaries included — are a pure function of the journal. Crash
//! recovery and replication followers replay the same ops through
//! [`HistFunnel::replay`] and rebuild byte-identical segments; see
//! DESIGN.md §14.

use crate::persist::{self, Persistence};
use gae_hist::{CmpOp, ColumnPredicate, HistConfig, HistOp, HistRecord, HistStore, PredValue};
use gae_obs::ObsHub;
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{GaeError, GaeResult, SimDuration, SimTime};
use gae_wire::Value;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default cadence between maintenance sweeps (early tail seals and
/// compaction), on the grid's virtual clock.
const MAINTAIN_EVERY: SimDuration = SimDuration::from_secs(120);

/// Default row cap for `history.query` replies without an explicit
/// `limit` (scans still report the full match cardinality).
const DEFAULT_QUERY_LIMIT: usize = 1000;

/// Journal-fronted writer of the columnar history store.
pub struct HistFunnel {
    store: Arc<HistStore>,
    persist: RwLock<Option<Arc<Persistence>>>,
    maintain_every: SimDuration,
    last_maintain: Mutex<SimTime>,
}

impl HistFunnel {
    /// A funnel over a fresh, empty store.
    pub fn new(config: HistConfig) -> Arc<Self> {
        Arc::new(HistFunnel {
            store: Arc::new(HistStore::new(config)),
            persist: RwLock::new(None),
            maintain_every: MAINTAIN_EVERY,
            last_maintain: Mutex::new(SimTime::ZERO),
        })
    }

    /// The store (read-only access: scans, stats, digests).
    pub fn store(&self) -> &Arc<HistStore> {
        &self.store
    }

    /// Routes every future op through the WAL as `"hist"` records.
    pub(crate) fn attach_persistence(&self, persistence: Arc<Persistence>) {
        *self.persist.write() = Some(persistence);
    }

    /// Journals `op` (when persistence is attached) and applies it.
    fn log_apply(&self, op: HistOp) {
        if let Some(p) = self.persist.read().as_ref() {
            p.append("hist", persist::hist_to_record(&op));
        }
        self.store.apply(&op);
    }

    /// Appends one terminal task outcome (the jobmon funnel's feed).
    pub fn ingest(&self, record: HistRecord) {
        self.log_apply(HistOp::Append(record));
    }

    /// Applies a journaled op without re-logging — the WAL-replay and
    /// follower path.
    pub(crate) fn replay(&self, op: HistOp) {
        self.store.apply(&op);
    }

    /// The grid-clock maintenance sweep, called from the service
    /// stack's poll: every `maintain_every` of virtual time, seal a
    /// non-empty tail early and compact undersized sealed segments.
    /// Both decisions become explicit journaled ops *before* they are
    /// applied, so replay reproduces the exact segment layout without
    /// re-deriving any clock state.
    pub(crate) fn maintain(&self, now: SimTime) {
        {
            let mut last = self.last_maintain.lock();
            if now.saturating_since(*last) < self.maintain_every {
                return;
            }
            *last = now;
        }
        if self.store.tail_rows() > 0 {
            self.log_apply(HistOp::Seal);
        }
        if self.store.compactable() {
            self.log_apply(HistOp::Compact);
        }
    }

    /// Replaces the store's contents from snapshot bytes (restore
    /// path; no logging).
    pub(crate) fn restore(&self, bytes: &[u8]) -> GaeResult<()> {
        self.store.restore(bytes)
    }
}

/// XML-RPC facade over the history store, registered as the `history`
/// service. Queries are read-only; mutation stays with the funnel.
pub struct HistoryRpc {
    funnel: Arc<HistFunnel>,
    hub: Arc<ObsHub>,
    /// Sequential query counter: the deterministic `hist.*` trace ids.
    next_query: AtomicU64,
}

impl HistoryRpc {
    /// Wraps the funnel for RPC registration.
    pub fn new(funnel: Arc<HistFunnel>, hub: Arc<ObsHub>) -> Self {
        HistoryRpc {
            funnel,
            hub,
            next_query: AtomicU64::new(1),
        }
    }

    fn query(&self, params: &[Value]) -> GaeResult<Value> {
        let spec = params
            .first()
            .ok_or_else(|| GaeError::Parse("query({predicates, limit?})".into()))?;
        let preds = parse_predicates(spec.member("predicates")?)?;
        let limit = match spec.member("limit") {
            Ok(v) => usize::try_from(v.as_u64()?)
                .map_err(|_| GaeError::Parse("limit out of range".into()))?,
            Err(_) => DEFAULT_QUERY_LIMIT,
        };
        let qid = self.next_query.fetch_add(1, Ordering::Relaxed);
        let now = self.hub.now();
        let (rows, stats) = self.funnel.store().query(&preds, limit)?;
        // Span the scan's shape under a deterministic hist.* trace:
        // how many segments the zone maps pruned, how many rows the
        // scan actually visited, how many matched.
        let ctx = self.hub.hist_trace(qid, "hist.query", now);
        self.hub
            .span_at(ctx, &format!("hist.prune#{}", stats.segments_pruned), now);
        self.hub
            .span_at(ctx, &format!("hist.scan#{}", stats.rows_scanned), now);
        self.hub
            .span_at(ctx, &format!("hist.match#{}", stats.rows_matched), now);
        Ok(Value::struct_of([
            (
                "rows",
                Value::Array(rows.iter().map(record_to_value).collect()),
            ),
            ("matched", Value::from(stats.rows_matched)),
            ("segments", Value::from(stats.segments)),
            ("segments_pruned", Value::from(stats.segments_pruned)),
            ("rows_scanned", Value::from(stats.rows_scanned)),
        ]))
    }

    fn export(&self) -> Value {
        let store = self.funnel.store();
        Value::struct_of([
            ("bytes", Value::Base64(store.encode())),
            ("digest", Value::from(store.digest())),
            (
                "segments",
                Value::Array(
                    store
                        .segment_digests()
                        .into_iter()
                        .map(Value::from)
                        .collect(),
                ),
            ),
            ("tail_digest", Value::from(store.tail_digest())),
        ])
    }

    fn stats(&self) -> Value {
        let store = self.funnel.store();
        let s = store.stats();
        Value::struct_of([
            ("rows", Value::from(s.rows)),
            ("sealed_segments", Value::from(s.sealed_segments)),
            ("tail_rows", Value::from(s.tail_rows)),
            ("appends", Value::from(s.appends)),
            ("seals", Value::from(s.seals)),
            ("compactions", Value::from(s.compactions)),
            ("scans", Value::from(s.scans)),
            ("segments_pruned", Value::from(s.segments_pruned)),
            ("rows_scanned", Value::from(s.rows_scanned)),
            ("dict_words", Value::from(s.dict_words)),
            ("digest", Value::from(store.digest())),
        ])
    }
}

impl Service for HistoryRpc {
    fn name(&self) -> &'static str {
        "history"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        // Latencies are wall-clock: the point of the hist:* histograms
        // is real scan cost, which the virtual clock cannot see. The
        // determinism-equivalence suites never call this facade, so
        // the nondeterministic numbers never enter compared state.
        let started = std::time::Instant::now();
        let out = match method {
            "query" => self.query(params),
            "export" => {
                if !params.is_empty() {
                    return Err(GaeError::Parse("export()".into()));
                }
                Ok(self.export())
            }
            "stats" => {
                if !params.is_empty() {
                    return Err(GaeError::Parse("stats()".into()));
                }
                Ok(self.stats())
            }
            other => return Err(gae_rpc::service::unknown_method("history", other)),
        };
        self.hub.record_hist(
            method,
            SimDuration::from_micros(started.elapsed().as_micros() as u64),
        );
        out
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "query",
                help: "predicate-pushdown scan over the columnar job history",
            },
            MethodInfo {
                name: "export",
                help: "canonical binary encoding of the store, with segment digests",
            },
            MethodInfo {
                name: "stats",
                help: "row/segment/scan counters and the store digest",
            },
        ]
    }
}

/// Parses the wire shape of a predicate list: an array of
/// `{column, op, value}` structs, string values for dictionary
/// columns and integers for numeric ones.
fn parse_predicates(v: &Value) -> GaeResult<Vec<ColumnPredicate>> {
    v.as_array()?
        .iter()
        .map(|p| {
            let column = p.member("column")?.as_str()?.to_string();
            let op = CmpOp::parse(p.member("op")?.as_str()?)?;
            let raw = p.member("value")?;
            let value = match raw.as_str() {
                Ok(s) => PredValue::Str(s.to_string()),
                Err(_) => PredValue::Num(raw.as_u64()?),
            };
            Ok(ColumnPredicate { column, op, value })
        })
        .collect()
}

fn record_to_value(r: &HistRecord) -> Value {
    Value::struct_of([
        ("task", Value::from(r.task)),
        ("site", Value::from(r.site)),
        ("nodes", Value::from(r.nodes)),
        ("submit_us", Value::from(r.submit_us)),
        ("start_us", Value::from(r.start_us)),
        ("finish_us", Value::from(r.finish_us)),
        ("runtime_us", Value::from(r.runtime_us)),
        ("success", Value::Bool(r.success)),
        ("account", Value::from(r.account.as_str())),
        ("login", Value::from(r.login.as_str())),
        ("executable", Value::from(r.executable.as_str())),
        ("queue", Value::from(r.queue.as_str())),
        ("partition", Value::from(r.partition.as_str())),
        ("job_type", Value::from(r.job_type.as_str())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: u64, site: u64) -> HistRecord {
        HistRecord {
            task,
            site,
            nodes: 1,
            submit_us: 0,
            start_us: 0,
            finish_us: 0,
            runtime_us: 1_000_000,
            success: true,
            account: "a".into(),
            login: "u".into(),
            executable: "x".into(),
            queue: "q".into(),
            partition: "p".into(),
            job_type: "batch".into(),
        }
    }

    #[test]
    fn maintain_is_cadence_gated_and_journal_free_ops_apply() {
        let funnel = HistFunnel::new(HistConfig { segment_rows: 4 });
        funnel.ingest(rec(1, 1));
        funnel.ingest(rec(2, 1));
        // Before the cadence elapses nothing seals.
        funnel.maintain(SimTime::from_secs(1));
        assert_eq!(funnel.store().stats().sealed_segments, 0);
        funnel.maintain(SimTime::from_secs(300));
        assert_eq!(funnel.store().stats().sealed_segments, 1);
        assert_eq!(funnel.store().tail_rows(), 0);
        // Within the same cadence window a second sweep is a no-op.
        funnel.ingest(rec(3, 1));
        funnel.maintain(SimTime::from_secs(310));
        assert_eq!(funnel.store().stats().sealed_segments, 1);
    }

    #[test]
    fn predicate_wire_parse_rejects_malformed_shapes() {
        let ok = Value::Array(vec![Value::struct_of([
            ("column", Value::from("site")),
            ("op", Value::from("eq")),
            ("value", Value::from(3u64)),
        ])]);
        assert_eq!(parse_predicates(&ok).unwrap().len(), 1);
        let bad_op = Value::Array(vec![Value::struct_of([
            ("column", Value::from("site")),
            ("op", Value::from("gt")),
            ("value", Value::from(3u64)),
        ])]);
        assert!(matches!(parse_predicates(&bad_op), Err(GaeError::Parse(_))));
        let missing = Value::Array(vec![Value::struct_of([("column", Value::from("site"))])]);
        assert!(parse_predicates(&missing).is_err());
    }
}
