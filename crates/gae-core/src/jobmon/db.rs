//! The DBManager: the Job Monitoring Service's repository.
//!
//! "Each Job Monitoring Service instance has a database repository.
//! The access to this repository is controlled by the DBManager. The
//! DBManager publishes the job monitoring information to MonALISA."
//! (§5.4)

use crate::hist::HistFunnel;
use crate::jobmon::info::JobMonitoringInfo;
use crate::persist::Persistence;
use gae_hist::HistRecord;
use gae_monitor::{JobEvent, MonAlisaRepository};
use gae_types::{JobId, TaskId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Snapshot store plus MonALISA publication.
pub struct DbManager {
    snapshots: RwLock<HashMap<TaskId, JobMonitoringInfo>>,
    by_job: RwLock<HashMap<JobId, Vec<TaskId>>>,
    monitor: Arc<MonAlisaRepository>,
    persist: RwLock<Option<Arc<Persistence>>>,
    obs: RwLock<Option<Arc<gae_obs::ObsHub>>>,
    hist: RwLock<Option<Arc<HistFunnel>>>,
}

impl DbManager {
    /// Creates a repository publishing to `monitor`.
    pub fn new(monitor: Arc<MonAlisaRepository>) -> Self {
        DbManager {
            snapshots: RwLock::new(HashMap::new()),
            by_job: RwLock::new(HashMap::new()),
            monitor,
            persist: RwLock::new(None),
            obs: RwLock::new(None),
            hist: RwLock::new(None),
        }
    }

    /// Routes every future [`Self::store`] through the WAL.
    pub(crate) fn attach_persistence(&self, persistence: Arc<Persistence>) {
        *self.persist.write() = Some(persistence);
    }

    /// Routes lifecycle timelines and execution spans into the hub.
    pub(crate) fn attach_obs(&self, obs: Arc<gae_obs::ObsHub>) {
        *self.obs.write() = Some(obs);
    }

    /// Routes terminal task outcomes into the columnar history store.
    pub(crate) fn attach_history(&self, hist: Arc<HistFunnel>) {
        *self.hist.write() = Some(hist);
    }

    /// Stores the monitoring snapshot, then appends its columnar
    /// history row — in that order, so the WAL records land as
    /// `jobmon` then `hist` and replay applies them identically.
    pub fn store_with_history(&self, info: JobMonitoringInfo, row: HistRecord) {
        self.store(info);
        if let Some(hist) = self.hist.read().clone() {
            hist.ingest(row);
        }
    }

    /// Stores (or refreshes) a snapshot, logs it to the WAL when
    /// persistence is attached, and publishes the state change to
    /// MonALISA.
    pub fn store(&self, info: JobMonitoringInfo) {
        if let Some(p) = self.persist.read().as_ref() {
            p.append("jobmon", info.to_value());
        }
        self.replay(info);
    }

    /// Applies a logged store: publishes the MonALISA event and
    /// upserts, without re-logging. This is the WAL replay path —
    /// idempotent, since replayed upserts overwrite in place.
    pub(crate) fn replay(&self, info: JobMonitoringInfo) {
        self.monitor.publish_job_event(JobEvent {
            at: info.completed_at.unwrap_or(info.submitted_at),
            job: info.job,
            task: info.task,
            site: info.site,
            status: info.status,
        });
        self.observe(&info);
        self.restore(info);
    }

    /// Assembles the task's lifecycle timeline and execution span
    /// from the snapshot's own instants. Marks are first-write-wins
    /// and the instants ride in the logged info, so WAL replay
    /// rebuilds the identical timeline.
    fn observe(&self, info: &JobMonitoringInfo) {
        let Some(hub) = self.obs.read().clone() else {
            return;
        };
        let condor = info.condor.raw();
        hub.mark_at(condor, gae_obs::TimelineEvent::Submit, info.submitted_at);
        if let Some(started) = info.started_at {
            hub.mark_at(condor, gae_obs::TimelineEvent::Start, started);
            let root = hub.condor_trace(
                condor,
                &format!("task {}/{}", info.job, info.task),
                info.submitted_at,
            );
            hub.span(
                root,
                "exec.run",
                started,
                info.completed_at.unwrap_or(started),
            );
        }
        if let Some(completed) = info.completed_at {
            hub.mark_at(condor, gae_obs::TimelineEvent::Complete, completed);
        }
    }

    /// Upserts without publishing or logging — the snapshot-restore
    /// path, where the matching events are restored wholesale.
    pub(crate) fn restore(&self, info: JobMonitoringInfo) {
        let mut by_job = self.by_job.write();
        let tasks = by_job.entry(info.job).or_default();
        if !tasks.contains(&info.task) {
            tasks.push(info.task);
        }
        self.snapshots.write().insert(info.task, info);
    }

    /// Every stored snapshot, task-id-sorted. The sort key is total
    /// and independent of insertion order, so Sequential and Sharded
    /// driver runs — whose stores interleave differently — export
    /// byte-identical documents, and so does a store rebuilt from a
    /// snapshot. It doubles as the snapshot export and the crash-test
    /// digest.
    pub fn export(&self) -> Vec<JobMonitoringInfo> {
        let mut out: Vec<JobMonitoringInfo> = self.snapshots.read().values().cloned().collect();
        out.sort_by_key(|i| i.task);
        out
    }

    /// The stored snapshot for a task, if any.
    pub fn get(&self, task: TaskId) -> Option<JobMonitoringInfo> {
        self.snapshots.read().get(&task).cloned()
    }

    /// Stored snapshots of all tasks of a job, in insertion order.
    pub fn job_tasks(&self, job: JobId) -> Vec<JobMonitoringInfo> {
        let by_job = self.by_job.read();
        let snapshots = self.snapshots.read();
        by_job
            .get(&job)
            .into_iter()
            .flatten()
            .filter_map(|t| snapshots.get(t).cloned())
            .collect()
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.read().len()
    }

    /// True when the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gae_types::{CondorId, Priority, SimDuration, SimTime, SiteId, TaskStatus, UserId};

    fn info(job: u64, task: u64, status: TaskStatus) -> JobMonitoringInfo {
        JobMonitoringInfo {
            job: JobId::new(job),
            task: TaskId::new(task),
            condor: CondorId::new(task),
            site: SiteId::new(1),
            status,
            estimated_runtime: None,
            remaining_time: None,
            elapsed: SimDuration::ZERO,
            queue_position: None,
            priority: Priority::NORMAL,
            submitted_at: SimTime::from_secs(1),
            started_at: None,
            completed_at: None,
            cpu_time: SimDuration::ZERO,
            input_io: 0,
            output_io: 0,
            owner: UserId::new(1),
            env: Vec::new(),
            progress: 0.0,
        }
    }

    #[test]
    fn store_and_get() {
        let db = DbManager::new(MonAlisaRepository::with_defaults());
        assert!(db.is_empty());
        db.store(info(1, 1, TaskStatus::Completed));
        assert_eq!(
            db.get(TaskId::new(1)).unwrap().status,
            TaskStatus::Completed
        );
        assert!(db.get(TaskId::new(2)).is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn refresh_replaces() {
        let db = DbManager::new(MonAlisaRepository::with_defaults());
        db.store(info(1, 1, TaskStatus::Running));
        db.store(info(1, 1, TaskStatus::Completed));
        assert_eq!(db.len(), 1);
        assert_eq!(
            db.get(TaskId::new(1)).unwrap().status,
            TaskStatus::Completed
        );
    }

    #[test]
    fn job_index() {
        let db = DbManager::new(MonAlisaRepository::with_defaults());
        db.store(info(1, 1, TaskStatus::Completed));
        db.store(info(1, 2, TaskStatus::Failed));
        db.store(info(2, 3, TaskStatus::Completed));
        assert_eq!(db.job_tasks(JobId::new(1)).len(), 2);
        assert_eq!(db.job_tasks(JobId::new(2)).len(), 1);
        assert!(db.job_tasks(JobId::new(3)).is_empty());
    }

    #[test]
    fn publishes_to_monalisa() {
        let monitor = MonAlisaRepository::with_defaults();
        let db = DbManager::new(monitor.clone());
        db.store(info(1, 1, TaskStatus::Completed));
        let history = monitor.job_history(JobId::new(1));
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].status, TaskStatus::Completed);
    }
}
