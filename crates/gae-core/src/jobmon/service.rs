//! The Job Monitoring Service and its JMExecutable RPC facade.

use crate::estimator::EstimatorService;
use crate::grid::Grid;
use crate::jobmon::collector::JobInformationCollector;
use crate::jobmon::db::DbManager;
use crate::jobmon::info::JobMonitoringInfo;
use crate::jobmon::manager::JmManager;
use gae_rpc::{CallContext, MethodInfo, Service};
use gae_types::{GaeResult, JobId, JobStatus, TaskId, TaskStatus};
use gae_wire::Value;
use std::sync::Arc;

/// The deployable Job Monitoring Service (Figure 3 assembled).
pub struct JobMonitoringService {
    manager: JmManager,
}

impl JobMonitoringService {
    /// Wires collector + DBManager + JMManager over the grid.
    pub fn new(grid: Arc<Grid>, estimators: Arc<EstimatorService>) -> Self {
        let db = DbManager::new(grid.monitor().clone());
        let collector = JobInformationCollector::new(grid, estimators);
        JobMonitoringService {
            manager: JmManager::new(db, collector),
        }
    }

    /// One polling round (drains execution events into the DB and
    /// MonALISA).
    pub fn poll(&self) {
        self.manager.poll();
    }

    /// Full monitoring info for one task.
    pub fn job_info(&self, task: TaskId) -> GaeResult<JobMonitoringInfo> {
        self.manager.info(task)
    }

    /// Just the status of one task.
    pub fn task_status(&self, task: TaskId) -> GaeResult<TaskStatus> {
        self.manager.info(task).map(|i| i.status)
    }

    /// Info for every known task of a job.
    pub fn job_tasks(&self, job: JobId) -> Vec<JobMonitoringInfo> {
        self.manager.job_info(job)
    }

    /// Aggregate status of a job derived from its tasks' statuses.
    pub fn job_status(&self, job: JobId) -> JobStatus {
        JobStatus::derive(self.manager.job_info(job).iter().map(|i| i.status))
    }

    /// All tasks currently live on any execution service, in task-id
    /// order — the "what is my grid doing right now" view.
    pub fn list_active(&self) -> Vec<JobMonitoringInfo> {
        let collector = self.manager.collector();
        let mut out = Vec::new();
        for site in collector.grid().site_ids() {
            let Ok(exec) = collector.grid().exec(site) else {
                continue;
            };
            let tasks: Vec<TaskId> = {
                let guard = exec.lock();
                guard
                    .records()
                    .filter(|r| {
                        matches!(
                            r.status,
                            TaskStatus::Queued | TaskStatus::Running | TaskStatus::Suspended
                        )
                    })
                    .map(|r| r.spec.id)
                    .collect()
            };
            for t in tasks {
                if let Ok(info) = self.manager.info(t) {
                    if !out.iter().any(|i: &JobMonitoringInfo| i.task == info.task) {
                        out.push(info);
                    }
                }
            }
        }
        out.sort_by_key(|i| i.task);
        out
    }

    /// Access to the internals (integration tests).
    pub fn manager(&self) -> &JmManager {
        &self.manager
    }

    // ---- durability hooks ----

    /// Routes every future DBManager store through the WAL.
    pub(crate) fn attach_persistence(&self, persistence: Arc<crate::persist::Persistence>) {
        self.manager.db().attach_persistence(persistence);
    }

    /// Routes lifecycle timelines and execution spans into the hub.
    pub(crate) fn attach_obs(&self, obs: Arc<gae_obs::ObsHub>) {
        self.manager.db().attach_obs(obs);
    }

    /// Routes terminal task outcomes into the columnar history store.
    pub(crate) fn attach_history(&self, hist: Arc<crate::hist::HistFunnel>) {
        self.manager.db().attach_history(hist);
    }

    /// Deterministic export of the whole repository: jobs id-sorted,
    /// tasks in insertion order (snapshot encoding + crash digests).
    pub fn db_snapshot(&self) -> Vec<JobMonitoringInfo> {
        self.manager.db().export()
    }

    /// Upserts a snapshot without publishing or logging (restore).
    pub(crate) fn restore_info(&self, info: JobMonitoringInfo) {
        self.manager.db().restore(info);
    }

    /// Re-applies a logged store: publish + upsert, no re-log (replay).
    pub(crate) fn replay_info(&self, info: JobMonitoringInfo) {
        self.manager.db().replay(info);
    }
}

/// The JMExecutable: "serves to forward requests by the Steering
/// Service to the JMManager" (§5.3) — our XML-RPC facade, registered
/// as the `jobmon` service. This is the service Figure 6 benchmarks.
pub struct JobMonitoringRpc {
    service: Arc<JobMonitoringService>,
}

impl JobMonitoringRpc {
    /// Wraps the service for RPC registration.
    pub fn new(service: Arc<JobMonitoringService>) -> Self {
        JobMonitoringRpc { service }
    }
}

impl Service for JobMonitoringRpc {
    fn name(&self) -> &'static str {
        "jobmon"
    }

    fn call(&self, _ctx: &CallContext, method: &str, params: &[Value]) -> GaeResult<Value> {
        match method {
            "job_status" => {
                let task = TaskId::new(params_id(params, 0)?);
                Ok(Value::from(self.service.task_status(task)?.to_string()))
            }
            "job_info" => {
                let task = TaskId::new(params_id(params, 0)?);
                Ok(self.service.job_info(task)?.to_value())
            }
            "remaining_time" => {
                let task = TaskId::new(params_id(params, 0)?);
                Ok(self
                    .service
                    .job_info(task)?
                    .remaining_time
                    .map(|d| d.as_secs_f64())
                    .into())
            }
            "job_tasks" => {
                let job = JobId::new(params_id(params, 0)?);
                Ok(Value::Array(
                    self.service
                        .job_tasks(job)
                        .iter()
                        .map(|i| i.to_value())
                        .collect(),
                ))
            }
            "list_active" => Ok(Value::Array(
                self.service
                    .list_active()
                    .iter()
                    .map(|i| i.to_value())
                    .collect(),
            )),
            "job_aggregate_status" => {
                let job = JobId::new(params_id(params, 0)?);
                Ok(Value::from(self.service.job_status(job).to_string()))
            }
            other => Err(gae_rpc::service::unknown_method("jobmon", other)),
        }
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo {
                name: "job_status",
                help: "status string of one task",
            },
            MethodInfo {
                name: "job_info",
                help: "full monitoring struct of one task",
            },
            MethodInfo {
                name: "remaining_time",
                help: "estimated remaining seconds, or nil",
            },
            MethodInfo {
                name: "job_tasks",
                help: "monitoring structs of all tasks of a job",
            },
            MethodInfo {
                name: "job_aggregate_status",
                help: "aggregate job status derived from its tasks",
            },
            MethodInfo {
                name: "list_active",
                help: "monitoring structs of every live task on the grid",
            },
        ]
    }
}

fn params_id(params: &[Value], i: usize) -> GaeResult<u64> {
    params
        .get(i)
        .ok_or_else(|| gae_types::GaeError::Parse(format!("missing parameter {i}")))?
        .as_u64()
}
