//! The Job Information Collector (§5.2).
//!
//! "The Job Information Collector interacts with the Execution
//! Service to provide real-time job monitoring information. \[It\]
//! functions in two ways: it monitors the job execution and whenever
//! the job is completed or terminated due to an error, it sends an
//! update request to the DBManager ... \[and\] it provides the
//! monitoring information of the running jobs to the JMManager when
//! requested."

use crate::estimator::EstimatorService;
use crate::grid::Grid;
use crate::jobmon::db::DbManager;
use crate::jobmon::info::JobMonitoringInfo;
use gae_exec::TaskRecord;
use gae_trace::TaskMeta;
use gae_types::{CondorId, GaeError, GaeResult, SiteId, TaskId, TaskStatus};
use std::sync::Arc;

/// Polls execution services and answers live queries.
pub struct JobInformationCollector {
    grid: Arc<Grid>,
    estimators: Arc<EstimatorService>,
}

impl JobInformationCollector {
    /// Creates a collector over the grid.
    pub fn new(grid: Arc<Grid>, estimators: Arc<EstimatorService>) -> Self {
        JobInformationCollector { grid, estimators }
    }

    /// The grid this collector watches.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Drains execution events; terminal transitions go to the
    /// DBManager, and completions feed the site's runtime history
    /// (that is how the decentralised histories of §6.1 grow).
    pub fn poll(&self, db: &DbManager) {
        for (site, event) in self.grid.drain_events() {
            if !event.is_terminal() {
                continue;
            }
            let Ok(exec) = self.grid.exec(site) else {
                continue;
            };
            let exec = exec.lock();
            let Ok(record) = exec.record(event.condor) else {
                continue;
            };
            let info = self.info_from_record(site, record, &exec);
            let meta = TaskMeta::from_spec(&record.spec);
            if event.status == TaskStatus::Completed {
                self.estimators
                    .observe_completion(site, meta.clone(), record.total_accrued());
            }
            // Every terminal outcome — success or failure — becomes
            // one columnar history row (scans filter on the success
            // column when they want clean runtimes).
            let row = gae_hist::HistRecord {
                task: record.spec.id.raw(),
                site: site.raw(),
                nodes: meta.nodes as u64,
                submit_us: record.submitted_at.as_micros(),
                start_us: record.started_at.map(|t| t.as_micros()).unwrap_or(0),
                finish_us: record.finished_at.map(|t| t.as_micros()).unwrap_or(0),
                runtime_us: record.total_accrued().as_micros(),
                success: event.status == TaskStatus::Completed,
                account: meta.account,
                login: meta.login,
                executable: meta.executable,
                queue: meta.queue,
                partition: meta.partition,
                job_type: meta.job_type.to_string(),
            };
            drop(exec);
            db.store_with_history(info, row);
            // The task left the queue: its submission-time estimate is
            // dead weight in the §6.2 database from here on. Evicting
            // on the terminal-event replay keeps a long-running stack
            // bounded to live CondorIds.
            self.estimators.evict_submission(site, event.condor);
        }
    }

    /// Builds a monitoring snapshot from an execution record.
    fn info_from_record(
        &self,
        site: SiteId,
        record: &TaskRecord,
        exec: &gae_exec::ExecutionService,
    ) -> JobMonitoringInfo {
        let estimated = self.estimators.submission_estimate(site, record.condor);
        let remaining = estimated.map(|e| e.saturating_sub(record.total_accrued()));
        JobMonitoringInfo {
            job: record.spec.job,
            task: record.spec.id,
            condor: record.condor,
            site,
            status: record.status,
            estimated_runtime: estimated,
            remaining_time: remaining,
            elapsed: record.elapsed(exec.now()),
            queue_position: exec.queue_position(record.condor),
            priority: record.priority,
            submitted_at: record.submitted_at,
            started_at: record.started_at,
            completed_at: record.finished_at,
            cpu_time: record.total_accrued(),
            input_io: record.input_io,
            output_io: record.output_io,
            owner: record.spec.owner,
            env: record.spec.env.clone(),
            progress: record.progress(),
        }
    }

    /// Locates a task across sites. When a task has records at
    /// several sites (it migrated), the actively-hosted one wins —
    /// a `Migrating` husk left at the old site is *not* active —
    /// otherwise the most recently submitted record.
    pub fn locate(&self, task: TaskId) -> GaeResult<(SiteId, CondorId)> {
        let mut best: Option<(SiteId, CondorId, bool, gae_types::SimTime)> = None;
        for site in self.grid.site_ids() {
            let exec = self.grid.exec(site)?;
            let exec = exec.lock();
            if let Some(condor) = exec.condor_of(task) {
                if let Ok(rec) = exec.record(condor) {
                    let live = matches!(
                        rec.status,
                        TaskStatus::Pending
                            | TaskStatus::Queued
                            | TaskStatus::Running
                            | TaskStatus::Suspended
                    );
                    let key = (live, rec.submitted_at);
                    let better = match &best {
                        Some((_, _, bl, bt)) => key > (*bl, *bt),
                        None => true,
                    };
                    if better {
                        best = Some((site, condor, live, rec.submitted_at));
                    }
                }
            }
        }
        best.map(|(s, c, _, _)| (s, c))
            .ok_or_else(|| GaeError::NotFound(format!("{task} on any site")))
    }

    /// Task ids of a job found live on any site (running, queued, or
    /// settled but still in an execution service's records).
    pub fn live_job_tasks(&self, job: gae_types::JobId) -> Vec<TaskId> {
        let mut out = Vec::new();
        for site in self.grid.site_ids() {
            let Ok(exec) = self.grid.exec(site) else {
                continue;
            };
            let exec = exec.lock();
            for rec in exec.records() {
                if rec.spec.job == job && !out.contains(&rec.spec.id) {
                    out.push(rec.spec.id);
                }
            }
        }
        out.sort();
        out
    }

    /// Live monitoring info for a task, straight from its execution
    /// service.
    pub fn live_info(&self, task: TaskId) -> GaeResult<JobMonitoringInfo> {
        let (site, condor) = self.locate(task)?;
        self.live_info_at(site, condor)
    }

    /// Live monitoring info by explicit site + Condor id.
    pub fn live_info_at(&self, site: SiteId, condor: CondorId) -> GaeResult<JobMonitoringInfo> {
        let exec = self.grid.exec(site)?;
        let exec = exec.lock();
        let record = exec.record(condor)?;
        Ok(self.info_from_record(site, record, &exec))
    }
}
