//! The Job Monitoring Service (§5).
//!
//! "Provides the facility of monitoring jobs that have been submitted
//! for execution, and provides the job monitoring information to the
//! Steering Service", with "an easy-to-use API for retrieval of job
//! monitoring information such as job status, remaining time, elapsed
//! time, estimated run time, queue position, priority, submission
//! time, execution time, completion time, CPU time used, amount of
//! input IO and output IO, owner name and environment variables."
//!
//! Component mapping (Figure 3):
//!
//! * [`collector`] — the **Job Information Collector**: interacts
//!   with the execution services, drains their event streams, and
//!   answers live queries for running jobs;
//! * [`db`] — the **DBManager**: the per-instance repository of
//!   monitoring snapshots, which "publishes the job monitoring
//!   information to MonALISA";
//! * [`manager`] — the **JMManager**: routes queries DB-first, then
//!   to the collector;
//! * [`service`] — the **JMExecutable**: the XML-RPC facade the
//!   Steering Service (and Figure 6's clients) call;
//! * [`info`] — the monitoring record itself.

pub mod collector;
pub mod db;
pub mod info;
pub mod manager;
pub mod service;

pub use info::JobMonitoringInfo;
pub use service::{JobMonitoringRpc, JobMonitoringService};
