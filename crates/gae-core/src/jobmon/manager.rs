//! The JMManager (§5.3): query routing.
//!
//! "The JMManager gets the monitoring information either from the
//! DBManager or from the Job Information Collector. It first queries
//! the DBManager and if the information is not found in its
//! repository, the request is forwarded to the Job Information
//! Collector."

use crate::jobmon::collector::JobInformationCollector;
use crate::jobmon::db::DbManager;
use crate::jobmon::info::JobMonitoringInfo;
use gae_types::{GaeResult, JobId, TaskId};

/// Routes monitoring queries DB-first, collector-second.
pub struct JmManager {
    db: DbManager,
    collector: JobInformationCollector,
}

impl JmManager {
    /// Wires the manager over its two sources.
    pub fn new(db: DbManager, collector: JobInformationCollector) -> Self {
        JmManager { db, collector }
    }

    /// The repository (for the collector's poll loop and tests).
    pub fn db(&self) -> &DbManager {
        &self.db
    }

    /// The collector.
    pub fn collector(&self) -> &JobInformationCollector {
        &self.collector
    }

    /// One polling round: collector drains execution events into the
    /// repository.
    pub fn poll(&self) {
        self.collector.poll(&self.db);
    }

    /// Monitoring info for a task.
    ///
    /// The DB snapshot answers for settled tasks, but a task that was
    /// resubmitted by Backup & Recovery is *live again* — a stored
    /// terminal snapshot from its previous incarnation must not shadow
    /// it. So: a live execution-service record always wins; among
    /// terminal sources, the newer incarnation wins.
    pub fn info(&self, task: TaskId) -> GaeResult<JobMonitoringInfo> {
        let snapshot = self.db.get(task);
        match self.collector.live_info(task) {
            Ok(live) if live.status.is_live() => Ok(live),
            Ok(live) => Ok(match snapshot {
                Some(snap) if snap.submitted_at > live.submitted_at => snap,
                _ => live,
            }),
            // Task unknown to every site but we had *some* snapshot:
            // best effort, return it.
            Err(e) => snapshot.ok_or(e),
        }
    }

    /// Info for every known task of a job: tasks with stored
    /// snapshots plus tasks found live on the execution services,
    /// each resolved through [`JmManager::info`].
    pub fn job_info(&self, job: JobId) -> Vec<JobMonitoringInfo> {
        let mut task_ids: Vec<_> = self.db.job_tasks(job).into_iter().map(|i| i.task).collect();
        for live in self.collector.live_job_tasks(job) {
            if !task_ids.contains(&live) {
                task_ids.push(live);
            }
        }
        task_ids.sort();
        task_ids
            .into_iter()
            .filter_map(|t| self.info(t).ok())
            .collect()
    }
}
