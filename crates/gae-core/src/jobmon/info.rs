//! The monitoring record: every field §5 promises, plus its XML-RPC
//! encoding.

use gae_types::{
    CondorId, GaeResult, JobId, Priority, SimDuration, SimTime, SiteId, TaskId, TaskStatus, UserId,
};
use gae_wire::Value;

/// A snapshot of one task's monitoring state.
#[derive(Clone, Debug, PartialEq)]
pub struct JobMonitoringInfo {
    /// Owning job.
    pub job: JobId,
    /// The task.
    pub task: TaskId,
    /// Site-local (Condor) id.
    pub condor: CondorId,
    /// Site executing the task.
    pub site: SiteId,
    /// Lifecycle state.
    pub status: TaskStatus,
    /// Runtime estimated at submission (if an estimator bid).
    pub estimated_runtime: Option<SimDuration>,
    /// Estimated remaining runtime (estimate minus CPU time used).
    pub remaining_time: Option<SimDuration>,
    /// Wall time since first start (includes waits).
    pub elapsed: SimDuration,
    /// Queue position, when queued (0 = next).
    pub queue_position: Option<usize>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// First execution instant.
    pub started_at: Option<SimTime>,
    /// Completion instant.
    pub completed_at: Option<SimTime>,
    /// Accumulated CPU (wall-clock) time.
    pub cpu_time: SimDuration,
    /// Input bytes staged.
    pub input_io: u64,
    /// Output bytes written.
    pub output_io: u64,
    /// Owner.
    pub owner: UserId,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Fraction of the task's demand completed (0–1).
    pub progress: f64,
}

impl JobMonitoringInfo {
    /// Encodes as an XML-RPC struct (the JMExecutable's wire format).
    pub fn to_value(&self) -> Value {
        let env = Value::Array(
            self.env
                .iter()
                .map(|(k, v)| {
                    Value::struct_of([
                        ("name", Value::from(k.as_str())),
                        ("value", Value::from(v.as_str())),
                    ])
                })
                .collect(),
        );
        Value::struct_of([
            ("job", Value::from(self.job.raw())),
            ("task", Value::from(self.task.raw())),
            ("condor", Value::from(self.condor.raw())),
            ("site", Value::from(self.site.raw())),
            ("status", Value::from(self.status.to_string())),
            (
                "estimated_runtime_s",
                self.estimated_runtime.map(|d| d.as_secs_f64()).into(),
            ),
            (
                "remaining_time_s",
                self.remaining_time.map(|d| d.as_secs_f64()).into(),
            ),
            ("elapsed_s", Value::from(self.elapsed.as_secs_f64())),
            (
                "queue_position",
                self.queue_position.map(|p| p as i64).into(),
            ),
            ("priority", Value::Int(self.priority.level())),
            ("submitted_us", Value::from(self.submitted_at.as_micros())),
            ("started_us", self.started_at.map(|t| t.as_micros()).into()),
            (
                "completed_us",
                self.completed_at.map(|t| t.as_micros()).into(),
            ),
            ("cpu_time_s", Value::from(self.cpu_time.as_secs_f64())),
            ("input_io", Value::from(self.input_io)),
            ("output_io", Value::from(self.output_io)),
            ("owner", Value::from(self.owner.raw())),
            ("env", env),
            ("progress", Value::from(self.progress)),
        ])
    }

    /// Decodes from the wire struct.
    pub fn from_value(v: &Value) -> GaeResult<JobMonitoringInfo> {
        let env = v
            .member("env")?
            .as_array()?
            .iter()
            .map(|e| {
                Ok((
                    e.member("name")?.as_str()?.to_string(),
                    e.member("value")?.as_str()?.to_string(),
                ))
            })
            .collect::<GaeResult<Vec<_>>>()?;
        let opt_f64 = |key: &str| -> GaeResult<Option<f64>> {
            Ok(match v.member_opt(key)? {
                Some(x) => Some(x.as_f64()?),
                None => None,
            })
        };
        let opt_u64 = |key: &str| -> GaeResult<Option<u64>> {
            Ok(match v.member_opt(key)? {
                Some(x) => Some(x.as_u64()?),
                None => None,
            })
        };
        Ok(JobMonitoringInfo {
            job: JobId::new(v.member("job")?.as_u64()?),
            task: TaskId::new(v.member("task")?.as_u64()?),
            condor: CondorId::new(v.member("condor")?.as_u64()?),
            site: SiteId::new(v.member("site")?.as_u64()?),
            status: v.member("status")?.as_str()?.parse()?,
            estimated_runtime: opt_f64("estimated_runtime_s")?.map(SimDuration::from_secs_f64),
            remaining_time: opt_f64("remaining_time_s")?.map(SimDuration::from_secs_f64),
            elapsed: SimDuration::from_secs_f64(v.member("elapsed_s")?.as_f64()?),
            queue_position: opt_u64("queue_position")?.map(|p| p as usize),
            priority: Priority::new(v.member("priority")?.as_i32()?),
            submitted_at: SimTime::from_micros(v.member("submitted_us")?.as_u64()?),
            started_at: opt_u64("started_us")?.map(SimTime::from_micros),
            completed_at: opt_u64("completed_us")?.map(SimTime::from_micros),
            cpu_time: SimDuration::from_secs_f64(v.member("cpu_time_s")?.as_f64()?),
            input_io: v.member("input_io")?.as_u64()?,
            output_io: v.member("output_io")?.as_u64()?,
            owner: UserId::new(v.member("owner")?.as_u64()?),
            env,
            progress: v.member("progress")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobMonitoringInfo {
        JobMonitoringInfo {
            job: JobId::new(1),
            task: TaskId::new(2),
            condor: CondorId::new(3),
            site: SiteId::new(4),
            status: TaskStatus::Running,
            estimated_runtime: Some(SimDuration::from_secs(283)),
            remaining_time: Some(SimDuration::from_secs(100)),
            elapsed: SimDuration::from_secs(200),
            queue_position: None,
            priority: Priority::new(2),
            submitted_at: SimTime::from_secs(10),
            started_at: Some(SimTime::from_secs(15)),
            completed_at: None,
            cpu_time: SimDuration::from_secs(183),
            input_io: 1024,
            output_io: 512,
            owner: UserId::new(7),
            env: vec![("CMS_CONFIG".into(), "/etc/cms".into())],
            progress: 0.65,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let info = sample();
        let back = JobMonitoringInfo::from_value(&info.to_value()).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn wire_roundtrip_with_nones() {
        let mut info = sample();
        info.estimated_runtime = None;
        info.remaining_time = None;
        info.started_at = None;
        info.completed_at = None;
        info.queue_position = Some(3);
        info.status = TaskStatus::Queued;
        info.env.clear();
        let back = JobMonitoringInfo::from_value(&info.to_value()).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(JobMonitoringInfo::from_value(&Value::Int(1)).is_err());
        assert!(JobMonitoringInfo::from_value(&Value::empty_struct()).is_err());
        let mut v = sample().to_value();
        if let Value::Struct(m) = &mut v {
            m.insert("status".into(), Value::from("zombie"));
        }
        assert!(JobMonitoringInfo::from_value(&v).is_err());
    }
}
