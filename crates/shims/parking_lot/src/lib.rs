//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning guards — implemented
//! over `std::sync`. Poisoning is deliberately ignored (parking_lot
//! has no poisoning): a panic while holding a lock does not wedge
//! every later access.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard of a read-locked [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// RAII guard of a write-locked [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
