//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] seeding,
//! and a deterministic [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality and fully
//! reproducible from a `u64` seed, which is all the simulation needs.
//! Stream values differ from the real `rand` crate's `StdRng`
//! (ChaCha12); nothing in this workspace pins exact stream contents.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_wide = lo as i128;
                let hi_wide = hi as i128;
                let width = (hi_wide - lo_wide + i128::from(inclusive)) as u128;
                assert!(width > 0, "cannot sample from empty range");
                let draw = u128::from(rng.next_u64()) % width;
                (lo_wide + draw as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`] exactly as in the real crate.
pub trait Rng: RngCore {
    /// A random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let inc = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!(v < 100);
    }
}
